#!/usr/bin/env python
"""CI smoke check for the profiler artifact chain.

Profiles the Example 1.2 query through the public CLI, then validates
every artifact the observability pipeline promises:

1. the chrome-trace JSON parses and its B/E events are balanced;
2. the JSONL event log replays into a tracer whose exporter output is
   byte-identical to the live trace's;
3. the deterministic (``--no-timings``) text report is stable across
   two runs;
4. a ``--parallel 2`` profile of the branch-fan-out example stitches
   worker trace fragments into one Chrome trace with a lane per worker
   pid, replays byte-identically, and its reconciled counter totals
   are byte-identical to the serial profile's.

``http-smoke`` mode instead drives a live ``repro-datalog serve
--http-port`` process and curls ``/metrics``, ``/healthz`` and
``/slowlog`` off its ephemeral port, validating the slow-query records
against the ``repro-slowlog/1`` schema.

Exit status 0 on success; any failure raises.

Usage: python scripts/validate_profile_artifacts.py [program.dl] [query]
       python scripts/validate_profile_artifacts.py http-smoke
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DEFAULT_PROGRAM = REPO / "examples" / "example_1_2.dl"
PARALLEL_PROGRAM = REPO / "examples" / "parallel_lanes.dl"


def run_cli(*args: str) -> str:
    result = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        cwd=REPO,
    )
    if result.returncode != 0:
        raise SystemExit(
            f"repro {' '.join(args)} failed ({result.returncode}):\n"
            f"{result.stderr}"
        )
    return result.stdout


def check_balanced(events: list[dict]) -> None:
    stack: list[str] = []
    for event in events:
        if event["ph"] == "B":
            stack.append(event["name"])
        elif event["ph"] == "E":
            assert stack, f"E event for {event['name']} with no open B"
            opened = stack.pop()
            assert opened == event["name"], (
                f"mismatched close: B {opened} vs E {event['name']}"
            )
    assert not stack, f"unclosed B events: {stack}"


def main(argv: list[str]) -> int:
    program = argv[1] if len(argv) > 1 else str(DEFAULT_PROGRAM)
    query = argv[2] if len(argv) > 2 else None
    base = [program] + ([query] if query else [])
    workdir = Path(tempfile.mkdtemp(prefix="repro-profile-smoke-"))

    # 1. chrome trace parses and is balanced.
    trace_path = workdir / "smoke.trace.json"
    events_path = workdir / "smoke.jsonl"
    run_cli(
        "profile", *base, "--format", "chrome-trace",
        "--out", str(trace_path), "--events", str(events_path),
    )
    chrome = json.loads(trace_path.read_text())
    assert chrome["traceEvents"], "empty traceEvents"
    check_balanced(chrome["traceEvents"])
    print(f"chrome trace ok: {len(chrome['traceEvents'])} events, "
          f"B/E balanced")

    # 2. the JSONL log replays byte-identically.
    sys.path.insert(0, str(REPO / "src"))
    from repro.observability import (  # noqa: E402
        read_events,
        replay_file,
        to_chrome_trace,
        to_metrics_text,
    )

    events = read_events(events_path)
    assert events[0]["type"] == "trace_start"
    replayed = replay_file(events_path)
    replayed_chrome = json.dumps(to_chrome_trace(replayed),
                                 sort_keys=True)
    live_chrome = json.dumps(chrome, sort_keys=True)
    assert replayed_chrome == live_chrome, (
        "replayed chrome trace differs from the live export"
    )
    assert to_metrics_text(replayed)
    print(f"event log ok: {len(events)} events replay byte-identically")

    # 3. the untimed text report is deterministic.
    first = run_cli("profile", *base, "--no-timings")
    second = run_cli("profile", *base, "--no-timings")
    assert first == second, "untimed profile report is not deterministic"
    assert first.startswith("EXPLAIN ANALYZE"), first[:80]
    print("text report ok: deterministic EXPLAIN ANALYZE output")

    # 4. a parallel=2 profile stitches worker fragments into one trace.
    check_stitched_profile(workdir, replay_file, to_chrome_trace)
    return 0


def check_stitched_profile(workdir: Path, replay_file,
                           to_chrome_trace) -> None:
    """A --parallel 2 profile of the fan-out example: worker lanes,
    replay identity, and serial-identical reconciled counters."""
    from repro.observability import reconciled_counter_totals

    serial_events = workdir / "serial.jsonl"
    run_cli(
        "profile", str(PARALLEL_PROGRAM), "--no-timings",
        "--events", str(serial_events),
    )
    par_events = workdir / "parallel.jsonl"
    par_trace = workdir / "parallel.trace.json"
    run_cli(
        "profile", str(PARALLEL_PROGRAM), "--parallel", "2",
        "--format", "chrome-trace",
        "--out", str(par_trace), "--events", str(par_events),
    )
    chrome = json.loads(par_trace.read_text())
    events = chrome["traceEvents"]
    check_balanced(events)

    # One lane per worker pid, each named by an M metadata event and
    # individually balanced; counter-total C curves stay on the parent.
    worker_pids = {e["pid"] for e in events if e["ph"] in "BE"} - {1}
    assert worker_pids, "no worker lanes in the stitched trace"
    lane_names = {
        e["pid"]: e["args"]["name"] for e in events if e["ph"] == "M"
    }
    assert lane_names.get(1) == "parent"
    for pid in worker_pids:
        assert lane_names.get(pid) == f"worker {pid}", lane_names
        depth = 0
        for e in events:
            if e["pid"] == pid and e["ph"] in "BE":
                depth += 1 if e["ph"] == "B" else -1
                assert depth >= 0, f"lane {pid} unbalanced"
        assert depth == 0, f"lane {pid} left open"
    assert all(
        e["pid"] == 1
        for e in events if e["ph"] == "C" and "." not in e["name"]
    ), "counter totals left the parent lane"

    # The stitched event log replays byte-identically too.
    replayed = replay_file(par_events)
    assert json.dumps(to_chrome_trace(replayed), sort_keys=True) == \
        json.dumps(chrome, sort_keys=True), (
            "stitched trace does not replay byte-identically"
        )

    # Branch fan-out ships whole branches: every portable counter
    # total must be byte-identical to the serial profile's.
    serial_totals = reconciled_counter_totals(replay_file(serial_events))
    stitched_totals = reconciled_counter_totals(replayed)
    assert stitched_totals == serial_totals, (
        f"stitched totals drifted from serial:\n"
        f"  serial   {json.dumps(serial_totals, sort_keys=True)}\n"
        f"  stitched {json.dumps(stitched_totals, sort_keys=True)}"
    )
    print(
        f"stitched profile ok: {len(worker_pids)} worker lane(s), "
        f"replay byte-identical, totals == serial"
    )


def http_smoke() -> int:
    """Drive ``serve --http-port 0`` and curl every telemetry endpoint."""
    import urllib.request

    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            str(DEFAULT_PROGRAM),
            "--workers", "2", "--repeat", "4",
            "--trace-sample", "0.5", "--slow-threshold", "0",
            "--http-port", "0", "--linger", "30",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        cwd=REPO,
    )
    try:
        url = None
        assert proc.stdout is not None
        for line in proc.stdout:
            if line.startswith("telemetry listening on "):
                url = line.split()[-1]
                break
        assert url, "serve never announced its telemetry port"

        def get(path: str):
            with urllib.request.urlopen(url + path, timeout=10) as resp:
                return resp.status, resp.read().decode("utf-8")

        status, body = get("/healthz")
        health = json.loads(body)
        assert status == 200 and health["status"] == "ok", health
        print(f"healthz ok: {body.strip()}")

        status, body = get("/metrics")
        assert status == 200
        for pinned in (
            "repro_service_requests_total",
            "repro_service_latency_seconds_count",
            "repro_service_memo_hit_ratio",
            "repro_service_snapshot_cache_entries",
            "repro_service_plan_cache_entries",
        ):
            assert pinned in body, f"{pinned} missing from /metrics"
        print(f"metrics ok: {len(body.splitlines())} exposition lines")

        status, body = get("/slowlog?n=8")
        records = json.loads(body)
        assert status == 200 and records, "no slow-query records"
        sys.path.insert(0, str(REPO / "src"))
        from repro.service import validate_slowlog_record  # noqa: E402

        for record in records:
            problems = validate_slowlog_record(record)
            assert not problems, f"{record.get('trace_id')}: {problems}"
        print(f"slowlog ok: {len(records)} records validate against "
              f"repro-slowlog/1")
    finally:
        proc.terminate()
        proc.wait(timeout=30)
    return 0


if __name__ == "__main__":
    if len(sys.argv) > 1 and sys.argv[1] == "http-smoke":
        raise SystemExit(http_smoke())
    raise SystemExit(main(sys.argv))
