#!/usr/bin/env python
"""CI smoke check for the profiler artifact chain.

Profiles the Example 1.2 query through the public CLI, then validates
every artifact the observability pipeline promises:

1. the chrome-trace JSON parses and its B/E events are balanced;
2. the JSONL event log replays into a tracer whose exporter output is
   byte-identical to the live trace's;
3. the deterministic (``--no-timings``) text report is stable across
   two runs.

Exit status 0 on success; any failure raises.

Usage: python scripts/validate_profile_artifacts.py [program.dl] [query]
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DEFAULT_PROGRAM = REPO / "examples" / "example_1_2.dl"


def run_cli(*args: str) -> str:
    result = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        cwd=REPO,
    )
    if result.returncode != 0:
        raise SystemExit(
            f"repro {' '.join(args)} failed ({result.returncode}):\n"
            f"{result.stderr}"
        )
    return result.stdout


def check_balanced(events: list[dict]) -> None:
    stack: list[str] = []
    for event in events:
        if event["ph"] == "B":
            stack.append(event["name"])
        elif event["ph"] == "E":
            assert stack, f"E event for {event['name']} with no open B"
            opened = stack.pop()
            assert opened == event["name"], (
                f"mismatched close: B {opened} vs E {event['name']}"
            )
    assert not stack, f"unclosed B events: {stack}"


def main(argv: list[str]) -> int:
    program = argv[1] if len(argv) > 1 else str(DEFAULT_PROGRAM)
    query = argv[2] if len(argv) > 2 else None
    base = [program] + ([query] if query else [])
    workdir = Path(tempfile.mkdtemp(prefix="repro-profile-smoke-"))

    # 1. chrome trace parses and is balanced.
    trace_path = workdir / "smoke.trace.json"
    events_path = workdir / "smoke.jsonl"
    run_cli(
        "profile", *base, "--format", "chrome-trace",
        "--out", str(trace_path), "--events", str(events_path),
    )
    chrome = json.loads(trace_path.read_text())
    assert chrome["traceEvents"], "empty traceEvents"
    check_balanced(chrome["traceEvents"])
    print(f"chrome trace ok: {len(chrome['traceEvents'])} events, "
          f"B/E balanced")

    # 2. the JSONL log replays byte-identically.
    sys.path.insert(0, str(REPO / "src"))
    from repro.observability import (  # noqa: E402
        read_events,
        replay_file,
        to_chrome_trace,
        to_metrics_text,
    )

    events = read_events(events_path)
    assert events[0]["type"] == "trace_start"
    replayed = replay_file(events_path)
    replayed_chrome = json.dumps(to_chrome_trace(replayed),
                                 sort_keys=True)
    live_chrome = json.dumps(chrome, sort_keys=True)
    assert replayed_chrome == live_chrome, (
        "replayed chrome trace differs from the live export"
    )
    assert to_metrics_text(replayed)
    print(f"event log ok: {len(events)} events replay byte-identically")

    # 3. the untimed text report is deterministic.
    first = run_cli("profile", *base, "--no-timings")
    second = run_cli("profile", *base, "--no-timings")
    assert first == second, "untimed profile report is not deterministic"
    assert first.startswith("EXPLAIN ANALYZE"), first[:80]
    print("text report ok: deterministic EXPLAIN ANALYZE output")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
