"""Regression gating: diff a fresh bench run against a committed baseline.

Two classes of gate, matching what is and is not deterministic:

* **hard findings** -- outcome, answer count, ``max_relation_size``,
  and tracer counters.  These depend only on the code and the (seeded)
  workloads, never on the machine, so any drift is a real behavioural
  change; the default tolerance is exact equality.  A relative
  ``counter_tolerance`` can loosen this for callers who expect small
  churn (e.g. reviewing a join-heuristic change).
* **time findings** -- the *normalized* (calibrated) wall-clock ratio
  must stay under ``time_tolerance``.  Cells whose baseline median is
  below ``min_time_s`` are skipped: timer noise dominates there and a
  2x blowup of 40 microseconds is not a regression.

Any finding fails the check (exit code 1 from ``bench --check``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "Finding",
    "backend_findings",
    "compare_reports",
    "maintenance_findings",
    "parallel_findings",
    "plan_growth_findings",
    "skew_findings",
    "MAX_REPLANS_PER_FIXPOINT",
    "DEFAULT_TIME_TOLERANCE",
    "DEFAULT_MIN_TIME_S",
    "PARALLEL_MIN_SPEEDUP",
    "PARALLEL_SPEEDUP_WORKERS",
    "PARALLEL_REQUIRED_CPUS",
    "PARALLEL_SPEEDUP_MIN_S",
    "BACKEND_OVERHEAD_TOLERANCE",
    "BACKEND_OVERHEAD_MIN_S",
]

DEFAULT_TIME_TOLERANCE = 1.6
DEFAULT_MIN_TIME_S = 1e-3

#: The speedup the parallel-scaling family must show ...
PARALLEL_MIN_SPEEDUP = 1.5
#: ... at this worker count ...
PARALLEL_SPEEDUP_WORKERS = 4
#: ... but only on machines with at least this many CPUs (a process
#: pool cannot beat serial on a single core, and pretending otherwise
#: would make the gate a permanent lie on small CI runners).
PARALLEL_REQUIRED_CPUS = 4
#: Serial medians below this are too noisy to anchor a speedup claim.
PARALLEL_SPEEDUP_MIN_S = 0.05

#: Mounting the explicit memory backend may cost at most this factor
#: over the no-backend reference cell (``out-of-core`` family) -- the
#: "backend selection is free" contract, with enough slack that timer
#: noise on a loaded CI runner does not fail it.
BACKEND_OVERHEAD_TOLERANCE = 1.5
#: Reference medians below this are too noisy to anchor the overhead
#: claim (a few tenths of a millisecond of jitter would dominate).
BACKEND_OVERHEAD_MIN_S = 0.005

#: The adaptive order may re-plan at most this many times per fixpoint
#: (mirrors ``repro.datalog.planner.MAX_REPLANS``); the gate reads the
#: per-cell counter, which covers one query evaluation.
MAX_REPLANS_PER_FIXPOINT = 2


@dataclass(frozen=True)
class Finding:
    """One regression detected between a baseline and a current run."""

    family: str
    strategy: str
    n: Optional[int]
    # schema | missing | outcome | answers | size | counter | time |
    # plan | maintenance | parallel | backend
    kind: str
    message: str

    def __str__(self) -> str:
        where = (
            f"{self.family}/{self.strategy}"
            + (f" n={self.n}" if self.n is not None else "")
        )
        return f"[{self.kind}] {where}: {self.message}"


def _cells_by_key(report: dict) -> dict[tuple[str, int], dict]:
    return {
        (c["strategy"], c["n"]): c for c in report.get("results", [])
    }


def compare_reports(
    baseline: dict,
    current: dict,
    time_tolerance: float = DEFAULT_TIME_TOLERANCE,
    counter_tolerance: float = 0.0,
    min_time_s: float = DEFAULT_MIN_TIME_S,
) -> list[Finding]:
    """All regressions of ``current`` relative to ``baseline``.

    Only baseline (strategy, n) cells whose size the current run swept
    (``current["sizes"]``) are compared, so a reduced-n smoke check
    against a full baseline works; a cell the current run should have
    produced but did not is a finding.  Extra cells in the current run
    (a wider sweep) are ignored.  An empty list means the gate passes.
    """
    family = baseline.get("family", "?")
    findings: list[Finding] = []

    if baseline.get("schema") != current.get("schema"):
        findings.append(
            Finding(
                family, "-", None, "schema",
                f"baseline schema {baseline.get('schema')!r} != current "
                f"{current.get('schema')!r}; regenerate the baseline",
            )
        )
        return findings

    current_cells = _cells_by_key(current)
    swept = set(current.get("sizes", []))
    for key, base in _cells_by_key(baseline).items():
        strategy, n = key
        if n not in swept:
            continue
        cur = current_cells.get(key)
        if cur is None:
            findings.append(
                Finding(
                    family, strategy, n, "missing",
                    "cell present in baseline but not in current run "
                    "(sweep too narrow?)",
                )
            )
            continue
        if base["outcome"] != cur["outcome"]:
            findings.append(
                Finding(
                    family, strategy, n, "outcome",
                    f"outcome changed: {base['outcome']} -> "
                    f"{cur['outcome']}",
                )
            )
            continue  # downstream measures are incomparable
        if base.get("answers") != cur.get("answers"):
            findings.append(
                Finding(
                    family, strategy, n, "answers",
                    f"answer count changed: {base.get('answers')} -> "
                    f"{cur.get('answers')} (correctness!)",
                )
            )
        if base.get("max_relation_size") != cur.get("max_relation_size"):
            findings.append(
                Finding(
                    family, strategy, n, "size",
                    f"max_relation_size changed: "
                    f"{base.get('max_relation_size')} -> "
                    f"{cur.get('max_relation_size')}",
                )
            )
        findings.extend(
            _counter_findings(
                family, strategy, n, base, cur, counter_tolerance
            )
        )
        time_finding = _time_finding(
            family, strategy, n, base, cur, time_tolerance, min_time_s
        )
        if time_finding is not None:
            findings.append(time_finding)
    findings.extend(plan_growth_findings(current))
    findings.extend(maintenance_findings(current, min_time_s=min_time_s))
    findings.extend(parallel_findings(current))
    findings.extend(skew_findings(current, min_time_s=min_time_s))
    findings.extend(backend_findings(current))
    return findings


def backend_findings(
    report: dict,
    overhead_tolerance: float = BACKEND_OVERHEAD_TOLERANCE,
    min_reference_s: float = BACKEND_OVERHEAD_MIN_S,
) -> list[Finding]:
    """Gates for the ``out-of-core`` family's storage-backend sweep.

    **Correctness (always):** every ``backend-*`` cell must count the
    same answers as the same-size ``backend-none`` reference cell *and*
    match its ``answers_sha`` -- the byte-identical-answers contract of
    the storage protocol, checked for SQLite's SQL-driven lookups as
    much as for the memory dispatch.

    **Zero-overhead selection (time-floored):** the ``backend-memory``
    cell -- the same evaluation with every derived relation routed
    through the explicit backend dispatch -- must stay within
    ``overhead_tolerance`` of the reference median at sizes whose
    reference clears ``min_reference_s``.  Below the floor the
    wall-clock half is waived (timer noise), but the identity gates
    above still apply.  ``backend-sqlite`` has no time gate: paying
    per-probe SQL cost to keep facts out of process memory is the
    point, not a regression.

    Checked against the *current* run alone, like the parallel and
    skew gates: all backend cells are timed in the same process on the
    same machine.  Reports without ``backend-*`` cells produce no
    findings.
    """
    family = report.get("family", "?")
    cells = _cells_by_key(report)
    findings: list[Finding] = []
    for (strategy, n), cell in sorted(cells.items()):
        if (not strategy.startswith("backend-")
                or strategy == "backend-none"):
            continue
        ref = cells.get(("backend-none", n))
        if (ref is None or cell["outcome"] != "ok"
                or ref["outcome"] != "ok"):
            continue
        if cell.get("answers") != ref.get("answers"):
            findings.append(
                Finding(
                    family, strategy, n, "answers",
                    f"{strategy} counted {cell.get('answers')} answers, "
                    f"backend-none {ref.get('answers')} (correctness!)",
                )
            )
        sha_b = cell.get("answers_sha")
        sha_r = ref.get("answers_sha")
        if sha_b is not None and sha_r is not None and sha_b != sha_r:
            findings.append(
                Finding(
                    family, strategy, n, "answers",
                    f"answer digest diverged from backend-none "
                    f"({sha_r[:12]} -> {sha_b[:12]}): same count, "
                    f"different tuples (correctness!)",
                )
            )
        if strategy != "backend-memory":
            continue
        mem_s, ref_s = cell.get("median_s"), ref.get("median_s")
        if mem_s is None or ref_s is None or ref_s < min_reference_s:
            continue
        ratio = mem_s / ref_s
        if ratio > overhead_tolerance:
            findings.append(
                Finding(
                    family, strategy, n, "backend",
                    f"memory-backend dispatch costs {ratio:.2f}x the "
                    f"no-backend reference (ref "
                    f"{ref_s * 1e3:.2f}ms, backend "
                    f"{mem_s * 1e3:.2f}ms); selection must be free",
                )
            )
    return findings


def parallel_findings(
    report: dict,
    min_speedup: float = PARALLEL_MIN_SPEEDUP,
    speedup_workers: int = PARALLEL_SPEEDUP_WORKERS,
    required_cpus: int = PARALLEL_REQUIRED_CPUS,
    min_serial_s: float = PARALLEL_SPEEDUP_MIN_S,
) -> list[Finding]:
    """Gates for the ``parallel-scaling`` family's current run.

    **Correctness (always):** every ``parallel-N`` cell must count the
    same answers as the same-size ``serial`` cell *and* match its
    ``answers_sha`` -- a digest of the sorted answer set, so the
    byte-identical-answers contract is checked, not just cardinality.

    **Zero-overhead default (always):** the untraced timed repeats of a
    ``parallel-N`` cell must ship no trace fragments
    (``untraced_fragments == 0``).  A worker that builds and pickles a
    span tree nobody asked for silently taxes every parallel
    evaluation; the harness reads ``executor.fragments_received``
    around the repeats to catch exactly that.  Cells recorded before
    the key existed are skipped.

    **Speedup (hardware-gated):** on machines reporting at least
    ``required_cpus`` CPUs, the ``parallel-{speedup_workers}`` cell at
    the largest size whose serial median clears ``min_serial_s`` must
    run at least ``min_speedup`` times faster than serial.  On smaller
    machines (e.g. a 1-CPU container) the speedup gate is skipped:
    physics, not tolerance -- the correctness gates still apply, and
    the committed report records the ``cpu_count`` it was measured on.

    Checked against the *current* run alone, like the maintenance
    gate: serial and parallel cells are timed in the same process on
    the same machine, so no calibration is involved.
    """
    family = report.get("family", "?")
    cells = _cells_by_key(report)
    findings: list[Finding] = []
    for (strategy, n), cell in sorted(cells.items()):
        if not strategy.startswith("parallel-"):
            continue
        serial = cells.get(("serial", n))
        if (serial is None or cell["outcome"] != "ok"
                or serial["outcome"] != "ok"):
            continue
        if cell.get("answers") != serial.get("answers"):
            findings.append(
                Finding(
                    family, strategy, n, "answers",
                    f"parallel counted {cell.get('answers')} answers, "
                    f"serial {serial.get('answers')} (correctness!)",
                )
            )
        sha_p = cell.get("answers_sha")
        sha_s = serial.get("answers_sha")
        if sha_p is not None and sha_s is not None and sha_p != sha_s:
            findings.append(
                Finding(
                    family, strategy, n, "answers",
                    f"answer digest diverged from serial "
                    f"({sha_s[:12]} -> {sha_p[:12]}): same count, "
                    f"different tuples (correctness!)",
                )
            )
        leaked = cell.get("untraced_fragments")
        if leaked:
            findings.append(
                Finding(
                    family, strategy, n, "parallel",
                    f"untraced timed repeats shipped {leaked} trace "
                    f"fragment(s); tracer=None must ship none "
                    f"(zero-overhead default)",
                )
            )

    cpus = (report.get("machine") or {}).get("cpu_count") or 0
    if cpus < required_cpus:
        return findings
    eligible: list[tuple[int, float, float]] = []
    for (strategy, n), cell in cells.items():
        if strategy != f"parallel-{speedup_workers}":
            continue
        serial = cells.get(("serial", n))
        if (serial is None or cell["outcome"] != "ok"
                or serial["outcome"] != "ok"):
            continue
        serial_s = serial.get("median_s")
        par_s = cell.get("median_s")
        if serial_s is None or par_s is None or serial_s < min_serial_s:
            continue
        eligible.append((n, serial_s, par_s))
    if eligible:
        n, serial_s, par_s = max(eligible)
        speedup = serial_s / par_s if par_s > 0 else float("inf")
        if speedup < min_speedup:
            findings.append(
                Finding(
                    family, f"parallel-{speedup_workers}", n, "parallel",
                    f"speedup {speedup:.2f}x at {speedup_workers} workers "
                    f"is below the required {min_speedup:g}x (serial "
                    f"{serial_s * 1e3:.1f}ms, parallel "
                    f"{par_s * 1e3:.1f}ms, {cpus} CPUs)",
                )
            )
    return findings


def skew_findings(
    report: dict,
    min_time_s: float = DEFAULT_MIN_TIME_S,
    max_replans: int = MAX_REPLANS_PER_FIXPOINT,
) -> list[Finding]:
    """Gates for the ``skewed-join`` family's join-order sweep.

    **Correctness (always):** every ``order-*`` cell must count the
    same answers as the same-size ``order-greedy`` cell *and* match its
    ``answers_sha`` -- the four orders permute the same joins, so the
    answer sets must be byte-identical, not just equinumerous.

    **Replan bound (always):** an ``order-adaptive`` cell may record at
    most ``max_replans`` ``plan_replans`` -- the bounded-feedback
    contract that keeps re-planning from thrashing a fixpoint.

    **Cost must win (always on fanout, time-floored on wall clock):**
    at least one size where both cells are ``ok`` must have the
    ``order-cost`` cell strictly below ``order-greedy`` on
    ``bindings_out`` (the join-fanout counter: rows emitted by join
    kernels), and -- among sizes whose greedy median clears
    ``min_time_s`` -- at least one where cost's median wall time is
    also strictly lower.  Sizes below the floor waive only the
    wall-clock half, matching the maintenance gate's noise floor.

    Checked against the *current* run alone, like the parallel gate:
    all order cells are timed in the same process on the same machine.
    Reports without ``order-*`` cells (every other family) produce no
    findings.
    """
    family = report.get("family", "?")
    cells = _cells_by_key(report)
    findings: list[Finding] = []
    fanout_wins = 0
    time_wins = 0
    timed_pairs = 0
    compared = 0
    for (strategy, n), cell in sorted(cells.items()):
        if not strategy.startswith("order-"):
            continue
        if strategy == "order-adaptive" and cell["outcome"] == "ok":
            replans = (cell.get("counters") or {}).get("plan_replans", 0)
            if replans > max_replans:
                findings.append(
                    Finding(
                        family, strategy, n, "plan",
                        f"adaptive re-planned {replans} times in one "
                        f"fixpoint; bound is {max_replans}",
                    )
                )
        if strategy == "order-greedy":
            continue
        greedy = cells.get(("order-greedy", n))
        if (greedy is None or cell["outcome"] != "ok"
                or greedy["outcome"] != "ok"):
            continue
        if cell.get("answers") != greedy.get("answers"):
            findings.append(
                Finding(
                    family, strategy, n, "answers",
                    f"{strategy} counted {cell.get('answers')} answers, "
                    f"order-greedy {greedy.get('answers')} "
                    f"(correctness!)",
                )
            )
        sha_o = cell.get("answers_sha")
        sha_g = greedy.get("answers_sha")
        if sha_o is not None and sha_g is not None and sha_o != sha_g:
            findings.append(
                Finding(
                    family, strategy, n, "answers",
                    f"answer digest diverged from order-greedy "
                    f"({sha_g[:12]} -> {sha_o[:12]}): same count, "
                    f"different tuples (correctness!)",
                )
            )
        if strategy != "order-cost":
            continue
        compared += 1
        cost_fanout = (cell.get("counters") or {}).get("bindings_out")
        greedy_fanout = (greedy.get("counters") or {}).get("bindings_out")
        if (cost_fanout is not None and greedy_fanout is not None
                and cost_fanout < greedy_fanout):
            fanout_wins += 1
        cost_s, greedy_s = cell.get("median_s"), greedy.get("median_s")
        if cost_s is None or greedy_s is None or greedy_s < min_time_s:
            continue
        timed_pairs += 1
        if cost_s < greedy_s:
            time_wins += 1
    if compared and not fanout_wins:
        findings.append(
            Finding(
                family, "order-cost", None, "plan",
                f"cost order never beat greedy on bindings_out across "
                f"{compared} comparable size(s); the cost model is not "
                f"reducing join fanout",
            )
        )
    if timed_pairs and not time_wins:
        findings.append(
            Finding(
                family, "order-cost", None, "plan",
                f"cost order never beat greedy on median wall time "
                f"across {timed_pairs} size(s) above the "
                f"{min_time_s * 1e3:g}ms floor",
            )
        )
    return findings


def maintenance_findings(
    report: dict, min_time_s: float = DEFAULT_MIN_TIME_S
) -> list[Finding]:
    """Hard gate: incremental maintenance must beat recomputation.

    For every size where a report carries both maintenance
    pseudo-strategies (the ``incremental-write`` family), the
    ``incremental`` median must be strictly below the ``fromscratch``
    median, and both must count the same answers over the replayed
    mutation stream -- the correctness cross-check that makes the speed
    number meaningful.  Checked against the *current* run alone: both
    cells are timed in the same process on the same machine, so no
    calibration or baseline is involved.  Sizes whose from-scratch
    median sits under ``min_time_s`` are skipped as noise, matching the
    time gate's floor.
    """
    family = report.get("family", "?")
    cells = _cells_by_key(report)
    findings: list[Finding] = []
    for (strategy, n), inc in sorted(cells.items()):
        if strategy != "incremental":
            continue
        fs = cells.get(("fromscratch", n))
        if fs is None or inc["outcome"] != "ok" or fs["outcome"] != "ok":
            continue
        if inc.get("answers") != fs.get("answers"):
            findings.append(
                Finding(
                    family, strategy, n, "answers",
                    f"incremental counted {inc.get('answers')} answers "
                    f"over the mutation stream, from-scratch "
                    f"{fs.get('answers')} (correctness!)",
                )
            )
        inc_s, fs_s = inc.get("median_s"), fs.get("median_s")
        if inc_s is None or fs_s is None or fs_s < min_time_s:
            continue
        if inc_s >= fs_s:
            findings.append(
                Finding(
                    family, strategy, n, "maintenance",
                    f"incremental median {inc_s * 1e3:.2f}ms is not "
                    f"below from-scratch {fs_s * 1e3:.2f}ms; repairs "
                    f"must beat recomputation",
                )
            )
    return findings


def plan_growth_findings(report: dict) -> list[Finding]:
    """Hard gate: join-plan compiles must not grow with database size.

    Plans are compiled per (rule body, binding signature, size rank) --
    never per tuple -- so within one strategy the ``plan_compiles``
    counter must be identical at every ``ok`` size of the sweep.  A
    counter that rises with ``n`` means some hot path is compiling per
    datum (a plan-cache key leaking data into itself), which silently
    re-introduces the per-call planning cost the cache exists to
    remove.  Checked against the *current* run alone; cells recorded
    before the counter existed (no ``plan_compiles`` key) are skipped.
    """
    family = report.get("family", "?")
    findings: list[Finding] = []
    per_strategy: dict[str, list[tuple[int, int]]] = {}
    for cell in report.get("results", []):
        if cell.get("outcome") != "ok":
            continue
        counters = cell.get("counters") or {}
        if "plan_compiles" not in counters:
            continue
        per_strategy.setdefault(cell["strategy"], []).append(
            (cell["n"], counters["plan_compiles"])
        )
    for strategy, points in sorted(per_strategy.items()):
        points.sort()
        values = {compiles for _, compiles in points}
        if len(values) > 1:
            shown = " ".join(f"n={n}:{c}" for n, c in points)
            findings.append(
                Finding(
                    family, strategy, None, "plan",
                    f"plan_compiles grows with database size ({shown}); "
                    f"plans must be size-independent",
                )
            )
    return findings


def _counter_findings(
    family: str,
    strategy: str,
    n: int,
    base: dict,
    cur: dict,
    tolerance: float,
) -> list[Finding]:
    findings: list[Finding] = []
    base_counters = base.get("counters") or {}
    cur_counters = cur.get("counters") or {}
    for name, base_value in sorted(base_counters.items()):
        cur_value = cur_counters.get(name, 0)
        allowed = tolerance * max(abs(base_value), 1)
        if abs(cur_value - base_value) > allowed:
            findings.append(
                Finding(
                    family, strategy, n, "counter",
                    f"counter {name} changed: {base_value} -> "
                    f"{cur_value} (tolerance {tolerance:g})",
                )
            )
    return findings


def _time_finding(
    family: str,
    strategy: str,
    n: int,
    base: dict,
    cur: dict,
    tolerance: float,
    min_time_s: float,
) -> Optional[Finding]:
    base_norm = base.get("normalized")
    cur_norm = cur.get("normalized")
    base_median = base.get("median_s")
    if base_norm is None or cur_norm is None or base_median is None:
        return None
    if base_median < min_time_s or base_norm <= 0:
        return None  # below the noise floor; not gateable
    ratio = cur_norm / base_norm
    if ratio > tolerance:
        return Finding(
            family, strategy, n, "time",
            f"normalized time ratio {ratio:.2f} exceeds tolerance "
            f"{tolerance:g} (baseline {base_norm:.3f} units, current "
            f"{cur_norm:.3f})",
        )
    return None
