"""Calibrated wall-clock sweeps over the experiment families.

The harness turns one :class:`~repro.bench.families.Family` plus a size
sweep into a schema-versioned report (``BENCH_<family>.json``):

* every (strategy, n) cell runs once with a recording
  :class:`~repro.observability.Tracer` (the *warmup*, which also
  discovers non-``ok`` outcomes: a tripped budget, cyclic data, an
  inapplicable method) and then ``repeats`` times untraced for the
  median wall-clock time;
* times are *calibrated*: the report stores ``normalized`` =
  median seconds divided by the time of a fixed reference workload
  (semi-naive transitive closure over a 64-chain) measured on the same
  machine in the same process, so baselines compared across machines
  mostly cancel the hardware difference -- raw seconds are kept too;
* per-strategy growth exponents are fitted by least squares on
  ``log(value) ~ log(n)`` over the ``ok`` sizes, for the deterministic
  ``max_relation_size`` measure (Definition 4.2) and for the noisy
  median time, then bucketed into constant/linear/quadratic/cubic/
  superpolynomial -- the Section 4 separations as two numbers.

Counters and relation sizes are deterministic for a given codebase
(join orders depend only on relation sizes and bound counts, never on
set iteration order), which is what makes exact counter gating in
:mod:`repro.bench.gating` safe while wall-clock gates need tolerances.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import statistics
import subprocess
import sys
import time
from pathlib import Path
from typing import Callable, Optional

from ..budget import Budget
from ..core.detection import analyze_recursion
from ..datalog.errors import (
    BudgetExceeded,
    CyclicDataError,
    EvaluationError,
    NotFullSelectionError,
    NotSeparableError,
)
from ..datalog.parser import parse_program, parse_query
from ..engine import Engine
from ..observability import Tracer, to_chrome_trace, trace_violations
from ..stats import EvaluationStats
from ..workloads.generators import chain
from .families import Family, Workload

__all__ = [
    "SCHEMA",
    "BENCH_BUDGET",
    "calibrate",
    "run_family",
    "write_report",
    "report_path",
    "fit_exponent",
    "classify_exponent",
    "machine_info",
    "git_sha",
]

#: Version tag of the report layout; bump on incompatible changes.
SCHEMA = "repro-bench/1"

#: Default budget protecting the exponential baselines (mirrors
#: ``repro.reporting.REPORT_BUDGET``).
BENCH_BUDGET = Budget(max_relation_tuples=200_000)

#: Tracer counters copied into each report cell.
_COUNTER_NAMES = (
    "tuples_examined",
    "atom_lookups",
    "bindings_out",
    "index_builds",
    "index_tuples",
    "full_scans",
    "iterations",
    "plan_compiles",
    "plan_cache_hits",
    "plan_cache_misses",
    "plan_replans",
    "plan_misestimates",
)

#: Test hook: a factor > 1 stretches every *unit* timing (never the
#: calibration run) by sleeping the surplus, simulating a uniform
#: slowdown of the code under test.  The regression-gate tests
#: monkeypatch this to prove ``bench --check`` fails on a real 2x
#: slowdown; production runs never touch it.
_TEST_SLOWDOWN = 1.0

_CALIBRATION_TEXT = "tc(X, Y) :- e(X, W) & tc(W, Y).\ntc(X, Y) :- e(X, Y)."
_CALIBRATION_N = 64


def machine_info() -> dict:
    """Hardware/interpreter facts stored alongside every report."""
    return {
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count(),
    }


def git_sha() -> str:
    """The repository HEAD, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except OSError:
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def calibrate(repeats: int = 5) -> dict:
    """Time the fixed reference workload; returns the calibration block.

    Uses semi-naive transitive closure over ``chain(64)`` -- heavy
    enough to dominate timer noise, light enough to cost ~tens of
    milliseconds.  One discarded warmup run absorbs import and cache
    effects, and ``unit_s`` is the *minimum* of the repeats: timing
    noise (scheduler preemption, cache misses) is strictly additive, so
    the minimum estimates the machine's floor far more stably than a
    median -- and a jittery unit would rescale every normalized time in
    the report.  The slowdown shim deliberately does not apply here: a
    uniformly slower machine must cancel out of normalized times, while
    a slower *code path* must not.
    """
    from ..datalog.database import Database
    from ..datalog.seminaive import seminaive_evaluate

    program = parse_program(_CALIBRATION_TEXT).program
    db = Database.from_facts({"e": chain(_CALIBRATION_N)})
    seminaive_evaluate(program, db)  # warmup, discarded
    times = []
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        seminaive_evaluate(program, db)
        times.append(time.perf_counter() - start)
    return {
        "workload": f"seminaive tc over chain({_CALIBRATION_N})",
        "unit_s": min(times),
        "repeats": len(times),
    }


def _answer_matches(query, fact: tuple) -> bool:
    """Constants equal, repeated query variables consistent."""
    from ..datalog.terms import Variable

    seen: dict = {}
    for value, term in zip(fact, query.args):
        if isinstance(term, Variable):
            if seen.setdefault(term, value) != value:
                return False
        elif term.value != value:
            return False
    return True


def _make_runner(
    workload: Workload, strategy: str, budget: Budget,
    mutations: Optional[list] = None,
) -> Callable[[Optional[Tracer]], tuple[int, EvaluationStats]]:
    """A zero-setup closure running one (workload, strategy) cell.

    Program/data construction and, for engine strategies, plan and
    base-IDB caches live outside the timed region -- repeats measure
    steady-state evaluation, not parsing.

    The maintenance pseudo-strategies replay ``mutations`` -- a
    *balanced* op stream, so every run starts from the state the last
    one left -- answering the workload query after each write.
    ``"incremental"`` repairs a :class:`repro.maintenance.MaintainedView`
    built once outside the timed region; ``"fromscratch"`` re-derives
    the whole IDB with semi-naive evaluation per write.  Both count the
    same answers (the gate cross-checks them) and report empty stats:
    their counters are deterministically zero, so hard gating stays
    exact.
    """
    if strategy == "detect":
        predicate = parse_query(workload.query).predicate

        def run_detect(tracer: Optional[Tracer] = None):
            analyze_recursion(workload.program, predicate)
            return 0, EvaluationStats()

        return run_detect

    if strategy in ("incremental", "fromscratch"):
        from ..datalog.seminaive import seminaive_evaluate
        from ..maintenance import MaintainedView

        query = parse_query(workload.query)
        ops = list(mutations or [])

        if strategy == "incremental":
            view = MaintainedView(workload.program, workload.db)

            def run_incremental(tracer: Optional[Tracer] = None):
                total = 0
                for op, name, fact in ops:
                    delta = (
                        {name: ((fact,), ())} if op == "add"
                        else {name: ((), (fact,))}
                    )
                    view.apply(delta)
                    total += sum(
                        1 for f in view.db.tuples(query.predicate)
                        if _answer_matches(query, f)
                    )
                return total, EvaluationStats()

            return run_incremental

        def run_fromscratch(tracer: Optional[Tracer] = None):
            total = 0
            for op, name, fact in ops:
                if op == "add":
                    workload.db.add_fact(name, fact)
                else:
                    workload.db.remove_fact(name, fact)
                db = seminaive_evaluate(workload.program, workload.db)
                total += sum(
                    1 for f in db.tuples(query.predicate)
                    if _answer_matches(query, f)
                )
            return total, EvaluationStats()

        return run_fromscratch

    if strategy == "serial" or strategy.startswith("parallel-"):
        # The parallel-scaling pseudo-strategies: the Separable
        # evaluator serial vs on an N-worker process pool.  Each run
        # stashes a digest of the sorted answer set on the closure
        # (``run.answers_sha``) so the gate can assert byte-identical
        # answers across worker counts, not just equal counts.
        from ..parallel import ParallelConfig, get_executor

        executor = None
        if strategy.startswith("parallel-"):
            workers = int(strategy.split("-", 1)[1])
            executor = get_executor(ParallelConfig(
                workers=workers,
                partitions=workers,
                min_partition_tuples=16,
            ))

        engine = Engine(workload.program, workload.db, budget=budget)

        def run_separable(tracer: Optional[Tracer] = None):
            stats = EvaluationStats()
            result = engine.query(
                workload.query, strategy="separable", stats=stats,
                tracer=tracer, parallel=executor,
            )
            digest = hashlib.sha256()
            for fact in sorted(result.answers, key=repr):
                digest.update(repr(fact).encode())
            run_separable.answers_sha = digest.hexdigest()
            return len(result.answers), stats

        # Exposed so _run_cell can read fragments_received around the
        # traced warmup and the untraced repeats (the zero-overhead
        # gate in gating.parallel_findings).
        run_separable.executor = executor
        return run_separable

    if strategy.startswith("order-"):
        # The join-order pseudo-strategies: the same semi-naive
        # evaluation under each of the four join orders (greedy,
        # left_to_right, cost, adaptive).  Each run stashes a digest of
        # the sorted answer set on the closure (``run.answers_sha``) so
        # the gate can assert byte-identical answers across orders.
        order = strategy.split("-", 1)[1]
        engine = Engine(
            workload.program, workload.db, budget=budget, order=order,
        )

        def run_ordered(tracer: Optional[Tracer] = None):
            stats = EvaluationStats()
            result = engine.query(
                workload.query, strategy="seminaive", stats=stats,
                tracer=tracer,
            )
            digest = hashlib.sha256()
            for fact in sorted(result.answers, key=repr):
                digest.update(repr(fact).encode())
            run_ordered.answers_sha = digest.hexdigest()
            return len(result.answers), stats

        return run_ordered

    if strategy.startswith("backend-"):
        # The storage pseudo-strategies (``out-of-core`` family): the
        # same semi-naive evaluation with the workload database on each
        # storage backend.  ``backend-none`` is the reference cell --
        # an ordinary in-memory database, no backend machinery in the
        # path at all.  ``backend-memory`` mounts the explicit
        # MemoryBackend so every derived relation goes through the
        # ``_make_relation`` dispatch -- the cell the zero-overhead
        # gate compares against the reference.  ``backend-sqlite``
        # migrates the facts into out-of-core SQLite.  Migration
        # happens here, outside the timed region: the gate compares
        # evaluation cost, not load cost.  Each run stashes
        # ``run.answers_sha`` so the gate can assert byte-identical
        # answers across backends, not just equal counts.
        which = strategy.split("-", 1)[1]
        db = workload.db
        if which == "memory":
            from ..storage import MemoryBackend

            db = db.with_backend(MemoryBackend())
        elif which != "none":
            from ..storage import ensure_backend

            db = ensure_backend(db, which)
        engine = Engine(workload.program, db, budget=budget)

        def run_backend(tracer: Optional[Tracer] = None):
            stats = EvaluationStats()
            result = engine.query(
                workload.query, strategy="seminaive", stats=stats,
                tracer=tracer,
            )
            digest = hashlib.sha256()
            for fact in sorted(result.answers, key=repr):
                digest.update(repr(fact).encode())
            run_backend.answers_sha = digest.hexdigest()
            return len(result.answers), stats

        return run_backend

    engine = Engine(workload.program, workload.db, budget=budget)

    def run(tracer: Optional[Tracer] = None):
        stats = EvaluationStats()
        result = engine.query(
            workload.query, strategy=strategy, stats=stats, tracer=tracer
        )
        return len(result.answers), stats

    return run


def _timed(run: Callable) -> float:
    """One timed repetition, stretched by the test slowdown shim."""
    start = time.perf_counter()
    run(None)
    if _TEST_SLOWDOWN > 1.0:
        time.sleep((time.perf_counter() - start) * (_TEST_SLOWDOWN - 1.0))
    return time.perf_counter() - start


def _run_cell(
    family: Family,
    n: int,
    strategy: str,
    budget: Budget,
    repeats: int,
    unit_s: float,
    trace_dir: Optional[Path] = None,
    backend: Optional[str] = None,
) -> dict:
    """One (strategy, n) cell: traced warmup, then timed repeats.

    With a ``trace_dir``, the warmup run's trace is exported as a
    chrome-trace JSON next to the report and its path recorded under
    the cell's ``trace`` key (additive: gating ignores unknown keys,
    so existing baselines remain comparable).  ``backend`` (from
    ``bench --backend``) migrates the workload database onto a storage
    backend before the warmup, outside the timed region; the
    ``backend-*`` pseudo-strategies ignore it because they pick their
    own backend per cell.
    """
    workload = family.build(n)
    if backend is not None and not strategy.startswith("backend-"):
        from ..storage import ensure_backend

        workload = Workload(
            workload.program,
            ensure_backend(workload.db, backend),
            workload.query,
        )
    mutations = family.mutations(n) if family.mutations else None
    run = _make_runner(workload, strategy, budget, mutations=mutations)
    # A cold join-plan cache per cell: the traced warmup then reports
    # the full compile count for this (strategy, n), making the
    # plan_compiles counter comparable across cells and runs -- the
    # plan-growth gate in :mod:`repro.bench.gating` relies on this.
    from ..datalog.plan_cache import PLAN_CACHE

    PLAN_CACHE.clear()
    tracer = Tracer(context={
        "family": family.key, "strategy": strategy, "n": n,
    })
    executor = getattr(run, "executor", None)
    fragments_before = (
        executor.fragments_received if executor is not None else 0
    )
    outcome = "ok"
    answers: Optional[int] = None
    stats = EvaluationStats()
    try:
        answers, stats = run(tracer)
    except BudgetExceeded as exc:
        outcome, stats = "budget", exc.stats or stats
    except CyclicDataError as exc:
        outcome, stats = "cyclic", exc.stats or stats
    except (NotSeparableError, NotFullSelectionError) as exc:
        outcome = "n/a"
    except EvaluationError:
        # CountingNotApplicable, StablePushNotApplicable, ... -- every
        # "method does not apply here" verdict, by construction raised
        # before real work starts.
        outcome = "n/a"

    cell: dict = {
        "strategy": strategy,
        "n": n,
        "outcome": outcome,
        "answers": answers,
        "max_relation_size": stats.max_relation_size,
        "tuples_produced": stats.tuples_produced,
        "tuples_examined": stats.tuples_examined,
        "iterations": stats.iterations,
        "counters": {
            name: tracer.counter_total(name) for name in _COUNTER_NAMES
        },
        "trace_violations": trace_violations(tracer),
        "median_s": None,
        "normalized": None,
    }
    sha = getattr(run, "answers_sha", None)
    if sha is not None:
        cell["answers_sha"] = sha
    if executor is not None:
        # Fragments shipped during the traced warmup (informational:
        # the stitched trace below carries them) vs during the untraced
        # timed repeats (must stay 0 -- the zero-overhead default).
        # Both keys are additive, so older baselines stay comparable.
        cell["traced_fragments"] = (
            executor.fragments_received - fragments_before
        )
    if trace_dir is not None:
        trace_dir.mkdir(parents=True, exist_ok=True)
        trace_path = (
            trace_dir / f"{family.key}-{strategy}-n{n}.trace.json"
        )
        trace_path.write_text(
            json.dumps(to_chrome_trace(tracer), sort_keys=True) + "\n"
        )
        cell["trace"] = str(trace_path)
    if outcome != "ok":
        return cell
    untraced_before = (
        executor.fragments_received if executor is not None else 0
    )
    times = [_timed(run) for _ in range(max(repeats, 1))]
    if executor is not None:
        cell["untraced_fragments"] = (
            executor.fragments_received - untraced_before
        )
    median_s = statistics.median(times)
    cell["median_s"] = median_s
    cell["normalized"] = median_s / unit_s if unit_s > 0 else None
    return cell


def fit_exponent(points: list[tuple[float, float]]) -> Optional[float]:
    """Least-squares slope of ``log(value)`` against ``log(n)``.

    Returns ``None`` with fewer than two positive points (nothing to
    fit) or when all sizes coincide.
    """
    import math

    usable = [(n, v) for n, v in points if n > 0 and v > 0]
    if len(usable) < 2:
        return None
    xs = [math.log(n) for n, _ in usable]
    ys = [math.log(v) for _, v in usable]
    mean_x = sum(xs) / len(xs)
    mean_y = sum(ys) / len(ys)
    denom = sum((x - mean_x) ** 2 for x in xs)
    if denom == 0:
        return None
    slope = sum(
        (x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)
    ) / denom
    return slope


def classify_exponent(exponent: Optional[float]) -> str:
    """Bucket a fitted exponent into a growth class.

    A true exponential fitted on a log-log scale has no stable slope --
    it lands far above any polynomial of interest, so everything past
    cubic reports ``superpolynomial`` (Example 1.1's Counting run fits
    a "slope" of ~n/log n).
    """
    if exponent is None:
        return "unknown"
    if exponent < 0.5:
        return "constant"
    if exponent < 1.5:
        return "linear"
    if exponent < 2.5:
        return "quadratic"
    if exponent < 3.5:
        return "cubic"
    return "superpolynomial"


def _fits(results: list[dict], strategies: tuple[str, ...]) -> list[dict]:
    fits: list[dict] = []
    for strategy in strategies:
        cells = [
            c
            for c in results
            if c["strategy"] == strategy and c["outcome"] == "ok"
        ]
        for metric in ("max_relation_size", "median_s"):
            points = [
                (c["n"], c[metric]) for c in cells if c[metric]
            ]
            exponent = fit_exponent(points)
            fits.append(
                {
                    "strategy": strategy,
                    "metric": metric,
                    "exponent": exponent,
                    "classification": classify_exponent(exponent),
                    "points": points,
                }
            )
    return fits


def run_family(
    family: Family,
    sizes: list[int],
    repeats: int = 5,
    budget: Budget = BENCH_BUDGET,
    calibration: Optional[dict] = None,
    trace_dir: Optional[Path] = None,
    backend: Optional[str] = None,
) -> dict:
    """Sweep one family over ``sizes``; returns the full report dict.

    ``calibration`` may be shared across families (one measurement per
    process); when ``None`` it is measured here.  ``trace_dir``
    (optional) collects one chrome-trace JSON per cell.  ``backend``
    runs every cell with the workload database migrated onto that
    storage backend (``bench --backend``); note counters and times
    then describe that backend, so ``--check`` only makes sense
    against a baseline generated the same way.
    """
    if calibration is None:
        calibration = calibrate()
    results: list[dict] = []
    for strategy in family.strategies:
        for n in sizes:
            results.append(
                _run_cell(
                    family, n, strategy, budget, repeats,
                    calibration["unit_s"], trace_dir=trace_dir,
                    backend=backend,
                )
            )
    return {
        "schema": SCHEMA,
        "family": family.key,
        "title": family.title,
        "size_means": family.size_means,
        "expectation": family.expectation,
        "generated_at": time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
        ),
        "git_sha": git_sha(),
        "machine": machine_info(),
        "budget_max_relation_tuples": budget.max_relation_tuples,
        "backend": backend,
        "repeats": repeats,
        "sizes": list(sizes),
        "calibration": calibration,
        "results": results,
        "fits": _fits(results, family.strategies),
    }


def report_path(out_dir: Path, family_key: str) -> Path:
    return Path(out_dir) / f"BENCH_{family_key}.json"


def write_report(report: dict, out_dir: Path) -> Path:
    """Write ``BENCH_<family>.json``; returns the path written."""
    path = report_path(out_dir, report["family"])
    path.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")
    return path


def summarize(report: dict) -> str:
    """A short human-readable table of one family report."""
    lines = [
        f"{report['family']}: {report['title']}",
        f"  sizes={report['sizes']} repeats={report['repeats']} "
        f"unit_s={report['calibration']['unit_s']:.4f}",
    ]
    for cell in report["results"]:
        timing = (
            f"{cell['median_s'] * 1e3:9.2f}ms "
            f"(x{cell['normalized']:.2f})"
            if cell["median_s"] is not None
            else f"[{cell['outcome']}]"
        )
        lines.append(
            f"  {cell['strategy']:>10} n={cell['n']:<6} {timing:>22}  "
            f"max_rel={cell['max_relation_size']:<8} "
            f"examined={cell['tuples_examined']}"
        )
    for fit in report["fits"]:
        if fit["metric"] != "max_relation_size":
            continue
        exp = (
            f"{fit['exponent']:.2f}" if fit["exponent"] is not None
            else "n/a"
        )
        lines.append(
            f"  fit {fit['strategy']:>10} {fit['metric']}: "
            f"exponent {exp} ({fit['classification']})"
        )
    return "\n".join(lines)
