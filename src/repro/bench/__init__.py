"""Wall-clock ground truth for the reproduction's performance claims.

The package behind ``repro-datalog bench``:

* :mod:`repro.bench.families` -- the paper's experiment families
  (E1-E9) as a registry of buildable workloads;
* :mod:`repro.bench.harness` -- calibrated median-of-k timing with
  traced warmups, growth-exponent fits, and schema-versioned
  ``BENCH_<family>.json`` reports;
* :mod:`repro.bench.gating` -- the ``--check`` regression gate that
  diffs a fresh run against a committed baseline.

See ``docs/benchmarking.md`` for the report schema and how to read the
traces.
"""

from .families import FAMILIES, Family, Workload, resolve_families
from .gating import (
    DEFAULT_MIN_TIME_S,
    DEFAULT_TIME_TOLERANCE,
    Finding,
    backend_findings,
    compare_reports,
    maintenance_findings,
    parallel_findings,
    plan_growth_findings,
    skew_findings,
)
from .harness import (
    BENCH_BUDGET,
    SCHEMA,
    calibrate,
    classify_exponent,
    fit_exponent,
    git_sha,
    machine_info,
    report_path,
    run_family,
    summarize,
    write_report,
)

__all__ = [
    "BENCH_BUDGET",
    "DEFAULT_MIN_TIME_S",
    "DEFAULT_TIME_TOLERANCE",
    "FAMILIES",
    "Family",
    "Finding",
    "SCHEMA",
    "Workload",
    "backend_findings",
    "calibrate",
    "classify_exponent",
    "compare_reports",
    "fit_exponent",
    "git_sha",
    "machine_info",
    "maintenance_findings",
    "parallel_findings",
    "plan_growth_findings",
    "skew_findings",
    "report_path",
    "resolve_families",
    "run_family",
    "summarize",
    "write_report",
]
