"""The paper's experiment families (E1-E9) as benchmarkable workloads.

Each :class:`Family` knows how to build its inputs for one size ``n``
and which strategies Section 4 (or the extension ablations) compares on
it.  The parameterizations mirror ``benchmarks/bench_e*.py`` and
:mod:`repro.reporting` -- this module is the single registry the
``repro-datalog bench`` harness sweeps, so the wall-clock numbers, the
pytest-benchmark numbers, and the report tables all describe the same
inputs.

A family's ``build(n)`` returns a :class:`Workload`: program, database
and query text.  Strategy names are :data:`repro.engine.STRATEGIES`
members, plus pseudo-strategies the harness special-cases:
``"detect"`` (E6), which times separability analysis alone -- the
paper's "computationally simple to detect" claim -- and touches no
data; ``"incremental"`` / ``"fromscratch"`` (the
``incremental-write`` family), which replay one mutation stream
through :class:`repro.maintenance.MaintainedView` repairs versus a
full recomputation per write; ``"serial"`` / ``"parallel-N"``
(``parallel-scaling``) and ``"order-<name>"`` (``skewed-join``),
which vary the executor and the join order over one fixed plan; and
``"backend-<name>"`` (``out-of-core``), which runs the same
semi-naive evaluation over each :mod:`repro.storage` backend.  A
mutation family supplies the stream via :attr:`Family.mutations`; the
stream is *balanced* (every insert is later deleted) so each timed
repeat starts from the same state.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable

from ..datalog.database import Database
from ..datalog.parser import parse_program
from ..datalog.programs import Program
from ..workloads.generators import chain, grid, random_dag
from ..workloads.paper import (
    example_1_1_database,
    example_1_1_program,
    example_1_2_database,
    example_1_2_program,
    lemma_4_2_database,
    lemma_4_2_program,
    lemma_4_3_database,
    lemma_4_3_program,
    section_5_nonseparable_program,
)

__all__ = ["Family", "Workload", "FAMILIES", "resolve_families"]


@dataclass(frozen=True)
class Workload:
    """One benchmarkable input: program + data + query."""

    program: Program
    db: Database
    query: str


@dataclass(frozen=True)
class Family:
    """One experiment family of the reproduction."""

    key: str
    title: str
    #: What the size parameter means for this family.
    size_means: str
    strategies: tuple[str, ...]
    build: Callable[[int], Workload]
    #: What Section 4 predicts, recorded into the report for readers.
    expectation: str
    #: For mutation families: ``mutations(n)`` yields the balanced op
    #: stream ``[("add" | "del", relation, fact), ...]`` both
    #: pseudo-strategies replay.  ``None`` for query-only families.
    mutations: Callable[[int], list] | None = None


def _e1(n: int) -> Workload:
    return Workload(
        example_1_1_program(), example_1_1_database(n), "buys(a1, Y)?"
    )


def _e2(n: int) -> Workload:
    return Workload(
        example_1_2_program(), example_1_2_database(n), "buys(a1, Y)?"
    )


def _e3(n: int, k: int = 3, w: int = 1) -> Workload:
    # The Lemma 4.1 shape of benchmarks/bench_e3_lemma41.py at (k, w):
    # seen_1 is n^w, seen_2 is n^(k-w); with (3, 1) the bound is n^2.
    head = ", ".join(f"X{j}" for j in range(1, k + 1))
    bound_head = ", ".join(f"X{j}" for j in range(1, w + 1))
    bound_body = ", ".join(f"W{j}" for j in range(1, w + 1))
    rest = ", ".join(f"X{j}" for j in range(w + 1, k + 1))
    body_args = ", ".join(x for x in [bound_body, rest] if x)
    program = parse_program(
        f"t({head}) :- a({bound_head}, {bound_body}) & t({body_args}).\n"
        f"t({head}) :- t0({head})."
    ).program
    consts = [f"c{i}" for i in range(1, n + 1)]
    db = Database.from_facts(
        {
            "a": list(itertools.product(consts, repeat=2 * w)),
            "t0": list(itertools.product(consts, repeat=k)),
        }
    )
    query = "t(" + ", ".join(["c1"] * w + [f"Q{j}" for j in range(k - w)])
    return Workload(program, db, query + ")?")


def _e4(n: int, k: int = 2, p: int = 2) -> Workload:
    query = "t(c1, " + ", ".join(f"Q{j}" for j in range(k - 1)) + ")?"
    return Workload(
        lemma_4_2_program(k, p), lemma_4_2_database(n, k, p), query
    )


def _e5(n: int, k: int = 2, p: int = 2) -> Workload:
    return Workload(
        lemma_4_3_program(k, p), lemma_4_3_database(n, k, p), "t(c1, Y)?"
    )


def _e6(n: int) -> Workload:
    # n recursive rules; detection must stay near-linear in rule count.
    head = "t(X1, X2, X3)"
    lines = [
        f"{head} :- a{i}(X1, M{i}) & b{i}(M{i}, W) & t(W, X2, X3)."
        for i in range(n)
    ]
    lines.append(f"{head} :- t0(X1, X2, X3).")
    program = parse_program("\n".join(lines)).program
    return Workload(program, Database(), "t(c, Q1, Q2)?")


_E7_REACHABLE = 10


def _e7(n: int) -> Workload:
    # Fixed reachable chain, n distractor edges: Separable work must not
    # scale with n (benchmarks/bench_e7_focus.py).
    db = Database.from_facts(
        {
            "friend": chain(_E7_REACHABLE, "a") + chain(n, "z"),
            "idol": [],
            "perfectFor": [
                (f"a{_E7_REACHABLE - 1}", "thing"),
                (f"z{max(n // 2 - 1, 0)}", "other"),
            ],
        }
    )
    db.ensure("idol", 2)
    return Workload(example_1_1_program(), db, "buys(a0, Y)?")


_TC_TEXT = "tc(X, Y) :- e(X, W) & tc(W, Y).\ntc(X, Y) :- e(X, Y)."


def _e8(n: int) -> Workload:
    program = parse_program(_TC_TEXT).program
    db = Database.from_facts(
        {"e": random_dag(n, max(2 * n, n + 1), seed=11)}
    )
    return Workload(program, db, "tc(a0, Y)?")


def _e9(n: int) -> Workload:
    db = Database.from_facts(
        {
            "a": chain(n, "x"),
            "t0": [(f"x{n - 1}", "y0")],
            "b": chain(n, "y") + chain(n, "zz"),
        }
    )
    return Workload(section_5_nonseparable_program(), db, "t(x0, Y)?")


def _sq(n: int) -> int:
    """Nearest square side for grid sizes (unused sizes stay meaningful)."""
    return max(int(round(n ** 0.5)), 2)


def _parallel_scaling(n: int) -> Workload:
    # The Lemma 4.1 dense cell (same shape as e3): carry_2 holds
    # Theta(n^2) tuples per up-loop iteration, so the intra-loop
    # hash-partitioning -- not just the Lemma 2.1 branch fan-out --
    # carries the parallel work.  Serial and parallel-N strategies run
    # the *same* compiled plan; only the executor differs.
    return _e3(n)


def _skewed_join(n: int) -> Workload:
    # A three-way join whose *size* ranks mislead: ``big`` fans every x
    # out to n/2 z-values while ``sel`` (padded with junk so it is the
    # largest relation) matches exactly one z per y.  Greedy's
    # most-bound/smaller-relation heuristic probes ``big`` before
    # ``sel`` -- Theta(n^2/2) intermediate bindings -- while the cost
    # model's distinct counts put ``sel`` first for Theta(n).  The
    # short ``link`` recursion keeps the fixpoint machinery (delta
    # re-planning included) in the loop.  All relation sizes scale
    # linearly-or-better in n with fixed ratios (a=n < link=2n <
    # big=nf < sel=2nf), so size *ranks* -- and therefore every order's
    # ``plan_compiles`` -- are n-independent, which the plan-growth
    # gate asserts.
    f = max(4, n // 2)
    chain = 4
    program = parse_program(
        "t(X, Z) :- a(X, Y) & big(X, Z) & sel(Y, Z).\n"
        "t(X, Z) :- t(X, W) & link(W, Z)."
    ).program
    db = Database.from_facts(
        {
            "a": [(f"x{i}", f"y{i}") for i in range(n)],
            "big": [
                (f"x{i}", f"z{j}") for i in range(n) for j in range(f)
            ],
            "sel": [(f"y{i}", f"z{i % f}") for i in range(n)]
            + [(f"jy{k}", f"jz{k}") for k in range(2 * n * f - n)],
            "link": [(f"z{j}", f"z{j + 1}") for j in range(chain - 1)]
            + [(f"lw{k}", f"lv{k}") for k in range(2 * n - (chain - 1))],
        }
    )
    return Workload(program, db, "t(x0, Q)?")


def _out_of_core(n: int) -> Workload:
    # Transitive closure on a dense random DAG (the e8 shape, heavier
    # edge factor so the reference cell clears the wall-clock noise
    # floor at modest n).  The same query runs on three storages: a
    # plain in-memory database (``backend-none``, the reference), the
    # explicit MemoryBackend mount (``backend-memory``: every derived
    # relation routed through the storage dispatch -- what the
    # zero-overhead gate times), and out-of-core SQLite
    # (``backend-sqlite``: the facts live in temporary SQLite files
    # and every join probe is a SQL lookup).
    program = parse_program(_TC_TEXT).program
    db = Database.from_facts({"e": random_dag(n, 4 * n, seed=13)})
    return Workload(program, db, "tc(a0, Y)?")


def _incremental_write(n: int) -> Workload:
    # Example 1.1's chain again: every perfectFor insert at a_i derives
    # buys(a_k, p) for all k <= i, so writes ripple through the
    # recursion and the maintained view earns its keep.
    return Workload(
        example_1_1_program(), example_1_1_database(n), "buys(a1, Y)?"
    )


def _incremental_write_ops(n: int) -> list:
    """The balanced mutation stream for ``incremental-write``.

    ``n`` fresh ``perfectFor`` facts are inserted at the head of the
    chain (anchors a1/a2: localized writes, the case incremental
    maintenance exists for), then deleted in reverse order, so the
    database (and the maintained IDB) ends every replay exactly where
    it started -- timed repeats are i.i.d.  Products accumulate
    mid-replay, so from-scratch re-derives a ``buys`` extent of
    Theta(n^2) tuples per write while each repair touches O(1) facts:
    the Section 4 separation, restated for writes.  Deletions exercise
    the DRed path, insertions the delta-seeded restart.
    """
    adds = [
        ("add", "perfectFor", (f"a{1 + (j % 2)}", f"p{j}"))
        for j in range(n)
    ]
    return adds + [("del", rel, fact) for _, rel, fact in reversed(adds)]


FAMILIES: dict[str, Family] = {
    "e1": Family(
        key="e1",
        title="Example 1.1: Counting Omega(2^n) vs Separable/Magic O(n)",
        size_means="chain length n",
        strategies=("separable", "magic", "counting"),
        build=_e1,
        expectation=(
            "counting superpolynomial (path-indexed count relation); "
            "separable and magic linear"
        ),
    ),
    "e2": Family(
        key="e2",
        title="Example 1.2: Magic Omega(n^2) vs Separable O(n)",
        size_means="chain length n",
        strategies=("separable", "magic"),
        build=_e2,
        expectation="magic quadratic (all buys(a_i, b_j)); separable linear",
    ),
    "e3": Family(
        key="e3",
        title="Lemma 4.1: Separable O(n^max(w, k-w)) at (k, w) = (3, 1)",
        size_means="constants per column n",
        strategies=("separable",),
        build=_e3,
        expectation="separable quadratic (seen_2 bound n^(k-w) = n^2)",
    ),
    "e4": Family(
        key="e4",
        title="Lemma 4.2: Magic n^k vs Separable n^(k-1) at k = 2",
        size_means="constants per column n",
        strategies=("separable", "magic"),
        build=_e4,
        expectation="magic quadratic; separable linear",
    ),
    "e5": Family(
        key="e5",
        title="Lemma 4.3: Counting sum p^l vs Separable O(n) at p = 2",
        size_means="descent depth n",
        strategies=("separable", "counting"),
        build=_e5,
        expectation="counting superpolynomial; separable linear",
    ),
    "e6": Family(
        key="e6",
        title="Detection cost vs rule count (Section 5)",
        size_means="recursive rule count",
        strategies=("detect",),
        build=_e6,
        expectation="near-linear detection time, no data touched",
    ),
    "e7": Family(
        key="e7",
        title="Section 3.2 focus: reachable work vs distractor size",
        size_means="distractor edges n",
        strategies=("separable", "magic", "seminaive"),
        build=_e7,
        expectation=(
            "separable tuples_examined constant in n; seminaive scales "
            "with the whole database"
        ),
    ),
    "e8": Family(
        key="e8",
        title="Average case: transitive closure on a random DAG",
        size_means="node count n",
        strategies=("separable", "magic", "seminaive", "nodedup"),
        build=_e8,
        expectation=(
            "separable <= magic << seminaive in generated tuples; "
            "nodedup pays duplicate derivation paths"
        ),
    ),
    "e9": Family(
        key="e9",
        title="Section 5 relaxed mode vs Magic on a condition-4 violator",
        size_means="chain length n",
        strategies=("relaxed", "magic"),
        build=_e9,
        expectation="both linear; relaxed pays the unfocused sideways pass",
    ),
    "incremental-write": Family(
        key="incremental-write",
        title="Incremental maintenance vs recompute on a write stream",
        size_means="chain length n",
        strategies=("incremental", "fromscratch"),
        build=_incremental_write,
        expectation=(
            "incremental repairs touch O(delta) facts per write; "
            "from-scratch re-derives the whole IDB per write"
        ),
        mutations=_incremental_write_ops,
    ),
    "out-of-core": Family(
        key="out-of-core",
        title="Storage backends: in-memory dispatch cost and SQLite spill",
        size_means="DAG node count n (4n edges)",
        strategies=("backend-none", "backend-memory", "backend-sqlite"),
        build=_out_of_core,
        expectation=(
            "answers byte-identical on every backend; backend-memory "
            "within noise of the no-backend reference (selection is "
            "free); backend-sqlite pays per-probe SQL overhead but "
            "keeps the fact set out of process memory"
        ),
    ),
    "parallel-scaling": Family(
        key="parallel-scaling",
        title="Theorem 2.1 as a scheduler: speedup vs worker count",
        size_means="constants per column n (the Lemma 4.1 dense cell)",
        strategies=("serial", "parallel-1", "parallel-2", "parallel-4"),
        build=_parallel_scaling,
        expectation=(
            "answers byte-identical at every worker count; >= 1.5x "
            "speedup at 4 workers on machines with >= 4 CPUs (the "
            "speedup gate is hardware-gated, the identity gate is not)"
        ),
    ),
    "skewed-join": Family(
        key="skewed-join",
        title="Cost-based join order vs greedy size-rank on skewed data",
        size_means="selective tuples n (big fans out to n/2 per x)",
        strategies=(
            "order-greedy",
            "order-left_to_right",
            "order-cost",
            "order-adaptive",
        ),
        build=_skewed_join,
        expectation=(
            "greedy probes the misleadingly-small fanout relation first "
            "(quadratic bindings); cost puts the selective atom second "
            "(linear); answers byte-identical across all four orders, "
            "plan_compiles flat, adaptive re-plans bounded (<= 2 per "
            "fixpoint)"
        ),
    ),
}


def resolve_families(keys: str | list[str] | None) -> list[Family]:
    """Parse a ``--families`` argument into Family objects.

    Accepts a comma-separated string, a list of keys, or ``None`` /
    ``"all"`` for every family.  Unknown keys raise ``ValueError`` with
    the valid choices.
    """
    if keys is None:
        names = sorted(FAMILIES)
    else:
        if isinstance(keys, str):
            names = [k.strip() for k in keys.split(",") if k.strip()]
        else:
            names = list(keys)
        if names in (["all"], []):
            names = sorted(FAMILIES)
    out: list[Family] = []
    for name in names:
        family = FAMILIES.get(name.lower())
        if family is None:
            raise ValueError(
                f"unknown family {name!r}; choose from "
                f"{', '.join(sorted(FAMILIES))}"
            )
        out.append(family)
    return out
