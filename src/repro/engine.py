"""The top-level query engine: strategy selection and base materialization.

:class:`Engine` wraps a program and an EDB, answers queries under any of
the implemented strategies, and implements the paper's deployment story
(Section 1/5): *"because of its superior performance ... and because it
is computationally simple to detect separable recursions, we expect that
this evaluation algorithm will be a useful component of a recursive
query processor"* -- i.e. the ``auto`` strategy detects separability and
compiles the specialized plan, falling back to Generalized Magic Sets
(and, for unbounded queries, semi-naive materialization) otherwise.

Base IDB predicates (predicates the queried recursion depends on but
that are not mutually recursive with it -- the paper's Section 2
assumption) are materialized stratum by stratum before the specialized
strategies run, and the materialization is cached across queries.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Union

from .budget import Budget, UNLIMITED
from .core.api import evaluate_separable, _matches_query
from .core.compiler import compile_selection
from .core.detection import SeparabilityReport, analyze_recursion
from .core.plan import SeparablePlan
from .core.selections import classify_selection
from .datalog.atoms import Atom
from .datalog.database import Database
from .datalog.errors import (
    NotFullSelectionError,
    NotSeparableError,
    UnknownPredicateError,
)
from .datalog.naive import naive_evaluate
from .datalog.parser import parse_query
from .datalog.programs import Program
from .datalog.terms import Constant
from .datalog.seminaive import seminaive_evaluate, seminaive_stratum
from .rewriting.counting import evaluate_counting
from .rewriting.magic import evaluate_magic
from .rewriting.selection_push import evaluate_pushed
from .rewriting.nodedup import execute_plan_nodedup
from .observability.profiler import QueryProfile
from .observability.tracer import Tracer, live
from .stats import EvaluationStats

__all__ = ["Engine", "QueryResult", "StrategyAdvice", "STRATEGIES"]

#: Every strategy name accepted by :meth:`Engine.query`.
STRATEGIES = (
    "auto",
    "separable",
    "relaxed",
    "magic",
    "counting",
    "pushdown",
    "seminaive",
    "naive",
    "nodedup",
)


@dataclass(frozen=True)
class QueryResult:
    """Answers plus provenance for one query evaluation.

    ``strategy`` is the strategy that actually ran (relevant for
    ``auto``); ``report`` carries the separability verdict when
    detection was performed.
    """

    query: Atom
    answers: frozenset[tuple]
    strategy: str
    stats: EvaluationStats
    report: Optional[SeparabilityReport] = None
    plan: Optional[SeparablePlan] = None

    def __len__(self) -> int:
        return len(self.answers)

    def sorted(self) -> list[tuple]:
        """Answers in a stable order (for display and tests)."""
        return sorted(self.answers, key=repr)

    def describe_plan(self) -> str:
        """The compiled Figure 3/4-style plan, when one was used."""
        if self.plan is None:
            return f"(no compiled Separable plan; strategy={self.strategy})"
        return self.plan.describe()


@dataclass(frozen=True)
class StrategyAdvice:
    """Which strategies apply to a query, and why.

    ``notes`` maps every strategy name to a one-line reason it does or
    does not apply; ``recommended`` matches what ``auto`` would pick.
    """

    query: Atom
    applicable: tuple[str, ...]
    recommended: str
    notes: dict[str, str]

    def explain(self) -> str:
        lines = [f"advice for {self.query}?  (recommended: "
                 f"{self.recommended})"]
        for name in STRATEGIES:
            if name == "auto":
                continue
            marker = "+" if name in self.applicable else "-"
            lines.append(f"  {marker} {name}: {self.notes.get(name, '')}")
        return "\n".join(lines)


class Engine:
    """A query engine over one program and one extensional database."""

    def __init__(
        self,
        program: Program,
        edb: Database,
        budget: Budget = UNLIMITED,
        order: str = "greedy",
        tracer=None,
        backend=None,
    ) -> None:
        from .datalog.plan_cache import ORDERS

        if order not in ORDERS:
            raise ValueError(
                f"unknown join order {order!r}; choose from {ORDERS}"
            )
        if backend is not None:
            # Migrate the EDB onto the requested storage backend (a
            # no-op when it is already there -- `backend="memory"` on
            # an ordinary database costs one name comparison).
            from .storage import ensure_backend
            edb = ensure_backend(edb, backend)
        self.program = program
        self.edb = edb
        self.budget = budget
        self.order = order
        #: Default tracer for every query (overridable per call).
        self.tracer = tracer
        self._reports: dict[str, SeparabilityReport] = {}
        self._base_db: dict[str, Database] = {}
        self._base_db_fingerprint = edb.fingerprint()
        self._plans: dict[tuple[str, tuple[int, ...]], SeparablePlan] = {}

    # -- analysis ----------------------------------------------------------

    def join_plan_stats(self) -> dict:
        """Counters of the process-wide compiled-join-plan cache.

        ``{"size", "hits", "misses", "compiles", "evictions",
        "orders"}`` from :data:`repro.datalog.plan_cache.PLAN_CACHE` --
        the cache every evaluator hot path shares.  ``compiles``
        staying flat while queries repeat is the "compiled once,
        executed many times" property benchmark gating asserts;
        ``orders`` is the running ``plan_for`` call mix per requested
        join order.
        """
        from .datalog.plan_cache import PLAN_CACHE

        return PLAN_CACHE.stats()

    def report(self, predicate: str) -> SeparabilityReport:
        """The (cached) separability report for one IDB predicate."""
        cached = self._reports.get(predicate)
        if cached is None:
            cached = analyze_recursion(self.program, predicate)
            self._reports[predicate] = cached
        return cached

    def is_separable(self, predicate: str) -> bool:
        return self.report(predicate).separable

    def plan_for(self, query: Union[Atom, str]) -> Optional[SeparablePlan]:
        """The compiled Separable plan for a query, or ``None``.

        Plans exist for *full* selections on predicates whose analysis
        is available (separable, or conditions 1-3 under the relaxed
        mode); they are cached per (predicate, seed-column) binding
        pattern, so repeated queries with different constants reuse one
        compilation -- the "compiling" in the paper's title.
        """
        if isinstance(query, str):
            query = parse_query(query)
        report = self.report(query.predicate)
        if report.analysis is None:
            return None
        selection = classify_selection(report.analysis, query)
        if not selection.is_full:
            return None
        key = (query.predicate, selection.selected_positions)
        cached = self._plans.get(key)
        if cached is None:
            cached = compile_selection(selection)
            self._plans[key] = cached
        return cached

    def advise(self, query: Union[Atom, str]) -> StrategyAdvice:
        """Classify a query against every strategy, with reasons.

        A purely static analysis (no data is touched beyond what the
        strategies' own applicability checks need), useful for query
        processors deciding how to route -- the paper's Section 5
        deployment picture made inspectable.
        """
        from .rewriting.counting import (
            CountingNotApplicable,
            compile_counting,
        )
        from .rewriting.selection_push import stable_positions

        if isinstance(query, str):
            query = parse_query(query)
        if query.predicate not in self.program.idb_predicates:
            raise UnknownPredicateError(
                f"{query.predicate} is not defined by the program"
            )
        report = self.report(query.predicate)
        has_constant = any(isinstance(t, Constant) for t in query.args)
        applicable: list[str] = []
        notes: dict[str, str] = {}

        if report.separable and has_constant:
            applicable.append("separable")
            selection = classify_selection(report.analysis, query)
            notes["separable"] = (
                "full selection (Definition 2.7); compiles directly"
                if selection.is_full
                else "partial selection; evaluated via the Lemma 2.1 rewrite"
            )
        elif not report.separable:
            failed = [
                str(c.number) for c in report.conditions if not c.holds
            ]
            notes["separable"] = (
                "prerequisite failed: " + "; ".join(report.prerequisites)
                if report.prerequisites
                else f"condition(s) {', '.join(failed)} of Definition 2.4 fail"
            )
        else:
            notes["separable"] = "query has no selection constants"

        if report.separable_up_to_condition_4 and has_constant:
            applicable.append("relaxed")
            notes["relaxed"] = (
                "conditions 1-3 hold; correct but unfocused if "
                "condition 4 fails (Section 5)"
                if not report.separable
                else "applies (recursion is fully separable anyway)"
            )
        else:
            notes["relaxed"] = notes.get(
                "separable", "query has no selection constants"
            )

        if "separable" in applicable and classify_selection(
            report.analysis, query
        ).is_full:
            applicable.append("nodedup")
            notes["nodedup"] = (
                "full selection; diverges if the reachable data is cyclic"
            )
        else:
            notes["nodedup"] = "needs a separable recursion + full selection"

        try:
            compile_counting(self.program, query)
            applicable.append("counting")
            notes["counting"] = (
                "down/up split exists; requires acyclic reachable data"
            )
        except CountingNotApplicable as exc:
            notes["counting"] = str(exc)

        stable = stable_positions(self.program, query.predicate)
        bound_stable = [
            p + 1
            for p, t in enumerate(query.args)
            if isinstance(t, Constant) and p in stable
        ]
        if bound_stable:
            applicable.append("pushdown")
            notes["pushdown"] = (
                f"stable column(s) {bound_stable} bound ([AU79])"
            )
        else:
            notes["pushdown"] = (
                f"no bound stable column (stable: "
                f"{[p + 1 for p in stable] or 'none'})"
            )

        for always in ("magic", "seminaive", "naive"):
            applicable.append(always)
        notes["magic"] = "always applicable (the general fallback)"
        notes["seminaive"] = "always applicable (full materialization)"
        notes["naive"] = "always applicable (full materialization, slow)"

        recommended = (
            "separable"
            if report.separable and has_constant
            else "magic"
        )
        return StrategyAdvice(
            query=query,
            applicable=tuple(applicable),
            recommended=recommended,
            notes=notes,
        )

    # -- base materialization ------------------------------------------------

    def _database_for(self, predicate: str) -> Database:
        """EDB plus materialized extents of every *base* IDB predicate
        the given predicate depends on (excluding itself).

        The cache is keyed on the EDB's mutation fingerprint: adding
        facts to (or clearing) any relation between queries invalidates
        every cached materialization, so answers always reflect the
        current data.
        """
        fingerprint = self.edb.fingerprint()
        if fingerprint != self._base_db_fingerprint:
            self._base_db.clear()
            self._base_db_fingerprint = fingerprint
        cached = self._base_db.get(predicate)
        if cached is not None:
            return cached
        needed = self.program.depends_on(predicate) - {predicate}
        needed &= self.program.idb_predicates
        db = self.edb.copy()
        if needed:
            for scc in self.program.evaluation_order:
                members = scc & needed
                if not members:
                    continue
                rules = [
                    r
                    for r in self.program.rules
                    if r.head.predicate in members
                ]
                seminaive_stratum(
                    rules, frozenset(members), db, self.program,
                    budget=self.budget, order=self.order,
                )
        self._base_db[predicate] = db
        return db

    # -- querying ------------------------------------------------------------

    def query(
        self,
        query: Union[Atom, str],
        strategy: str = "auto",
        stats: Optional[EvaluationStats] = None,
        tracer=None,
        budget: Optional[Budget] = None,
        memo=None,
        parallel=None,
        order: Optional[str] = None,
    ) -> QueryResult:
        """Answer a query under the chosen strategy.

        ``query`` may be an :class:`Atom` or source text such as
        ``"buys(tom, Y)?"``.  ``auto`` picks Separable when the queried
        predicate is separable and the query has a constant, Magic Sets
        otherwise, and semi-naive materialization for all-free queries
        on non-separable predicates.  ``tracer`` overrides the engine's
        default tracer for this one call; base-IDB materialization is
        cached across queries and therefore never traced.

        ``budget`` overrides the engine's budget for this one call (the
        query service threads per-request deadline budgets through
        here); either way the wall clock is armed afresh via
        :meth:`Budget.start_clock`, so a ``max_wall_seconds`` limit
        means "per query", never "since the engine was built".  ``memo``
        is an optional full-selection memo forwarded to the Separable
        strategies (see :func:`repro.core.api.evaluate_separable`).

        ``order`` overrides the engine's join order for this one call
        (one of :data:`repro.datalog.plan_cache.ORDERS`: ``greedy``,
        ``left_to_right``, ``cost``, ``adaptive``) -- what the bench
        harness and oracle use to sweep orders without rebuilding the
        engine.  Base-IDB materialization keeps the engine's default
        order (it is cached across queries).

        ``parallel`` opts the Separable strategies into the worker-pool
        executor: ``True`` (env/CPU-sized), a worker count, a
        :class:`~repro.parallel.ParallelConfig`, or a ready
        :class:`~repro.parallel.ParallelExecutor` (see
        :func:`repro.parallel.resolve_parallel`).  Answers are identical
        to the serial run; non-Separable strategies ignore it.
        """
        if isinstance(query, str):
            query = parse_query(query)
        if query.predicate not in self.program.idb_predicates:
            raise UnknownPredicateError(
                f"{query.predicate} is not defined by the program"
            )
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; choose from {STRATEGIES}"
            )
        if order is None:
            order = self.order
        else:
            from .datalog.plan_cache import ORDERS

            if order not in ORDERS:
                raise ValueError(
                    f"unknown join order {order!r}; choose from {ORDERS}"
                )
        if stats is None:
            stats = EvaluationStats()
        if budget is None:
            budget = self.budget
        if budget.deadline is None:
            budget = budget.start_clock()
        tracer = live(tracer if tracer is not None else self.tracer)

        report: Optional[SeparabilityReport] = None
        if strategy in ("auto", "separable", "relaxed", "nodedup"):
            report = self.report(query.predicate)

        chosen = strategy
        if strategy == "auto":
            has_constant = any(
                isinstance(t, Constant) for t in query.args
            )
            if report is not None and report.separable and has_constant:
                chosen = "separable"
            else:
                chosen = "magic"

        stats.strategy = chosen
        executor = None
        if parallel is not None and chosen in ("separable", "relaxed"):
            from .parallel import resolve_parallel

            executor = resolve_parallel(parallel)
        # Keyword-only and omitted when unused: test doubles wrapping
        # _dispatch with the historical signature keep working.
        extra = {"parallel": executor} if executor is not None else {}
        if order != self.order:
            extra["order"] = order
        answers = self._dispatch(chosen, query, report, stats, tracer,
                                 budget, memo, **extra)
        plan: Optional[SeparablePlan] = None
        if chosen in ("separable", "relaxed", "nodedup"):
            plan = self.plan_for(query)
        return QueryResult(
            query=query,
            answers=answers,
            strategy=chosen,
            stats=stats,
            report=report,
            plan=plan,
        )

    def profile(
        self,
        query: Union[Atom, str],
        strategy: str = "auto",
        sink=None,
        parallel=None,
    ) -> QueryProfile:
        """Answer a query under a recording tracer; return the profile.

        The ``EXPLAIN ANALYZE`` entry point: runs the query exactly as
        :meth:`query` would (same strategy dispatch, same caches) but
        under a fresh :class:`~repro.observability.Tracer`, and bundles
        the result with the strategy advice and the recorded span
        forest into a :class:`~repro.observability.QueryProfile`.

        ``sink`` is an optional :class:`~repro.observability.EventSink`
        that streams the trace as it is recorded (e.g. a
        :class:`~repro.observability.JsonlFileSink` for later replay);
        the caller owns closing it.  ``parallel`` is forwarded to
        :meth:`query`; when the Separable strategies fan work out to
        pool workers, each remote call ships its span tree home as a
        trace fragment and the profile's tracer shows one lane per
        worker pid (see :mod:`repro.observability.fragments`).
        """
        if isinstance(query, str):
            query = parse_query(query)
        advice = self.advise(query)
        tracer = Tracer(
            sink=sink,
            context={"query": str(query), "strategy": strategy},
        )
        start = time.perf_counter()
        result = self.query(
            query, strategy=strategy, tracer=tracer, parallel=parallel
        )
        wall_s = time.perf_counter() - start
        return QueryProfile(
            result=result,
            advice=advice,
            tracer=tracer,
            requested=strategy,
            wall_s=wall_s,
        )

    def _dispatch(
        self,
        strategy: str,
        query: Atom,
        report: Optional[SeparabilityReport],
        stats: EvaluationStats,
        tracer=None,
        budget: Optional[Budget] = None,
        memo=None,
        parallel=None,
        order: Optional[str] = None,
    ) -> frozenset[tuple]:
        if budget is None:
            budget = self.budget
        if order is None:
            order = self.order
        if strategy in ("separable", "relaxed"):
            assert report is not None
            acceptable = report.separable or (
                strategy == "relaxed"
                and report.separable_up_to_condition_4
            )
            if not acceptable or report.analysis is None:
                raise NotSeparableError(
                    f"{query.predicate} is not separable"
                    + (
                        " (even with Condition 4 relaxed)"
                        if strategy == "relaxed"
                        else ""
                    )
                    + ":\n"
                    + report.explain(),
                    report=report,
                )
            return evaluate_separable(
                self.program,
                self._database_for(query.predicate),
                query,
                analysis=report.analysis,
                stats=stats,
                budget=budget,
                order=order,
                allow_disconnected=strategy == "relaxed",
                tracer=tracer,
                memo=memo,
                parallel=parallel,
            )
        if strategy == "nodedup":
            assert report is not None
            if not report.separable or report.analysis is None:
                raise NotSeparableError(
                    f"{query.predicate} is not separable:\n"
                    + report.explain(),
                    report=report,
                )
            analysis = report.analysis
            selection = classify_selection(analysis, query)
            if not selection.is_full:
                raise NotFullSelectionError(
                    f"the no-dedup ablation only runs full selections; "
                    f"{query} is not one"
                )
            plan = self.plan_for(query)
            assert plan is not None
            up_tuples = execute_plan_nodedup(
                plan,
                self._database_for(query.predicate),
                [selection.seed],
                stats=stats,
                budget=budget,
                order=order,
                tracer=tracer,
            )
            fixed = {
                p: selection.bound[p] for p in plan.selected_positions
            }
            answers = set()
            for ut in up_tuples:
                values = [None] * analysis.arity
                for p, v in fixed.items():
                    values[p] = v
                for col, p in enumerate(plan.up_positions):
                    values[p] = ut[col]
                fact = tuple(values)
                if _matches_query(fact, query):
                    answers.add(fact)
            return frozenset(answers)
        if strategy == "magic":
            return evaluate_magic(
                self.program, self.edb, query,
                stats=stats, budget=budget, order=order,
                tracer=tracer,
            )
        if strategy == "counting":
            return evaluate_counting(
                self.program,
                self._database_for(query.predicate),
                query,
                stats=stats,
                budget=budget,
                order=order,
                tracer=tracer,
            )
        if strategy == "pushdown":
            return evaluate_pushed(
                self.program,
                self._database_for(query.predicate),
                query,
                stats=stats,
                budget=budget,
                order=order,
                tracer=tracer,
            )
        evaluate = (
            seminaive_evaluate if strategy == "seminaive" else naive_evaluate
        )
        materialized = evaluate(
            self.program, self.edb,
            stats=stats, budget=budget, order=order,
            tracer=tracer,
        )
        return frozenset(
            fact
            for fact in materialized.tuples(query.predicate)
            if _matches_query(fact, query)
        )
