"""Pluggable relation storage backends.

The protocol and the in-memory reference backend live in
:mod:`repro.storage.protocol`; the out-of-core SQLite backend in
:mod:`repro.storage.sqlite`.  :func:`resolve_backend` turns CLI-level
specs into backend objects and :func:`ensure_backend` migrates a
database onto one (a no-op when it is already there), which is what
``Engine(backend=)``, ``ServiceConfig(backend=)`` and the ``--backend``
flags call.

Backend specs:

- ``None`` / ``"memory"`` -- the in-memory hash-indexed default;
- ``"sqlite"`` -- out-of-core: each relation in a private temporary
  SQLite database that spills to disk;
- ``"sqlite:<path>"`` -- durable: all relations share one WAL-mode
  database file at ``<path>``;
- any object implementing the :class:`StorageBackend` protocol.
"""

from __future__ import annotations

from .protocol import MemoryBackend, RelationStorage, StorageBackend
from .sqlite import ReadOnlyRelationError, SQLiteBackend, SQLiteRelation

__all__ = [
    "BACKENDS",
    "MemoryBackend",
    "ReadOnlyRelationError",
    "RelationStorage",
    "SQLiteBackend",
    "SQLiteRelation",
    "StorageBackend",
    "ensure_backend",
    "resolve_backend",
]

BACKENDS = ("memory", "sqlite")


def resolve_backend(spec):
    """Turn a backend spec (see module docstring) into a backend object."""
    if spec is None or spec == "memory":
        return MemoryBackend()
    if isinstance(spec, str):
        if spec == "sqlite":
            return SQLiteBackend()
        if spec.startswith("sqlite:"):
            return SQLiteBackend(spec.split(":", 1)[1] or None)
        raise ValueError(
            f"unknown storage backend {spec!r} "
            f"(expected one of {', '.join(BACKENDS)} or 'sqlite:<path>')"
        )
    if isinstance(spec, StorageBackend):
        return spec
    raise ValueError(f"not a storage backend: {spec!r}")


def ensure_backend(db, spec):
    """``db`` migrated onto the backend ``spec`` resolves to.

    Returns ``db`` unchanged when it already uses a backend of the same
    name and the target is not path-qualified -- in particular,
    ``--backend memory`` on an ordinary in-memory database is free.  A
    durable (path-qualified) SQLite spec always migrates, moving the
    facts into the shared file.
    """
    backend = resolve_backend(spec)
    if backend.name == db.backend_name \
            and getattr(backend, "path", None) is None:
        return db
    if backend.name == "memory":
        return db.with_backend(None)
    out = db.with_backend(backend)
    for name, arity in getattr(backend, "existing_relations", list)():
        # Durable file: remount relations from earlier sessions that
        # the incoming database does not mention.  Relations it does
        # mention were already merged into the file tables above.
        if out.relation(name) is None:
            out.attach(backend.make_relation(name, arity))
    return out
