"""The relation-storage protocol and the in-memory reference backend.

A *relation storage* is anything that implements the surface the
evaluators, planner, service and parallel workers use on
:class:`~repro.datalog.database.Relation`:

- mutation: ``add`` / ``add_all`` / ``discard`` / ``discard_all`` /
  ``clear``, all returning effectiveness (arity-checked, set
  semantics);
- lookup: ``__contains__`` / ``__len__`` / ``__iter__`` / ``__bool__``
  / ``tuples()`` and the indexed ``lookup(positions, key, tracer)``
  probe, which builds secondary indexes lazily and reports index
  builds to a live tracer;
- versioning: a ``version`` counter bumped once per effective mutation
  (``add_all``/``discard_all`` bump by the batch's effective size),
  which feeds :meth:`~repro.datalog.database.Database.fingerprint`;
- planner statistics: ``distinct_values`` / ``column_distinct_counts``
  / ``sample(k)``, all cached per version, with ``sample`` drawing the
  crc32-minwise sample the PR 9 containment estimator relies on being
  identical across backends;
- observation: ``observe`` / ``unobserve`` with
  ``callback(relation, fact, sign)`` events (``+1`` insert, ``-1``
  delete, ``0`` reset with ``fact=None``);
- copies: ``copy()`` (private writable clone) and ``snapshot()``
  (stable read view -- may be cheaper than a copy);
- pickling: ``__getstate__`` returns the portable
  ``(name, arity, version, tuples)`` payload parallel workers ship;
  the receiving side always rehydrates private storage with no
  observers.

A *storage backend* is a factory for relation storages plus a
``scratch()`` method returning a variant safe for private copies --
a durable file-backed backend hands out a temporary-storage twin so
evaluator scratch databases never write into the shared file.
"""

from __future__ import annotations

from typing import Iterable, Protocol, runtime_checkable

__all__ = ["RelationStorage", "StorageBackend", "MemoryBackend"]

Fact = tuple


@runtime_checkable
class RelationStorage(Protocol):
    """Structural protocol for a relation storage implementation.

    ``runtime_checkable`` only verifies method presence; the behavioural
    contract (set semantics, version arithmetic, deterministic sampling,
    pickle payload shape) is enforced by the conformance suite in
    ``tests/storage/``.
    """

    name: str
    arity: int

    # observation
    def observe(self, callback) -> None: ...
    def unobserve(self, callback) -> None: ...

    @property
    def version(self) -> int: ...

    # mutation
    def add(self, fact: Fact) -> bool: ...
    def add_all(self, facts: Iterable[Fact]) -> int: ...
    def discard(self, fact: Fact) -> bool: ...
    def discard_all(self, facts: Iterable[Fact]) -> int: ...
    def clear(self) -> None: ...

    # lookup
    def __contains__(self, fact: Fact) -> bool: ...
    def __len__(self) -> int: ...
    def __iter__(self): ...
    def tuples(self) -> frozenset: ...
    def lookup(self, positions: tuple, key: tuple, tracer=None) -> list: ...

    # planner statistics
    def distinct_values(self) -> frozenset: ...
    def column_distinct_counts(self) -> tuple: ...
    def sample(self, k: int = 32) -> tuple: ...

    # copies
    def copy(self): ...
    def snapshot(self): ...


@runtime_checkable
class StorageBackend(Protocol):
    """Factory for relation storages, selectable on a ``Database``."""

    name: str

    def make_relation(self, name: str, arity: int,
                      tuples: Iterable[Fact] = ()): ...

    def scratch(self) -> "StorageBackend":
        """A backend variant safe for private copies/scratch databases."""
        ...


class MemoryBackend:
    """The in-memory hash-indexed backend, as an explicit object.

    ``Database(backend=None)`` constructs :class:`Relation` directly --
    this wrapper exists so ``--backend memory`` resolves to a real
    backend object with a name, and so the conformance suite can treat
    both backends uniformly.
    """

    name = "memory"

    def make_relation(self, name: str, arity: int,
                      tuples: Iterable[Fact] = ()):
        from ..datalog.database import Relation
        return Relation(name, arity, tuples)

    def scratch(self) -> "MemoryBackend":
        return self

    def __repr__(self) -> str:
        return "MemoryBackend()"
