"""Out-of-core relation storage over stdlib :mod:`sqlite3`.

Each :class:`SQLiteRelation` is one table.  Without a path the table
lives in a *private temporary database* (``sqlite3.connect("")``),
which SQLite spills to disk under memory pressure and deletes on
close -- that is the out-of-core mode the ROADMAP asks for: relations
no longer need to fit in RAM.  With a path (``--db-path`` on the
service, ``sqlite:<path>`` backend specs) all relations share one
durable WAL-mode database file, and :meth:`SQLiteRelation.snapshot`
returns a *read-only connection* pinned to the current WAL state
instead of copying tuples, so the service's fingerprint-keyed snapshot
LRU stops deep-copying tuple sets.

The protocol mapping:

- secondary indexes -> ``CREATE INDEX`` (lazily, on first ``lookup``
  per column subset, mirroring the in-memory backend's tracer
  accounting);
- ``add_all`` / ``discard_all`` -> ``executemany`` inside one
  transaction (falling back to per-row statements only when observers
  need per-fact effectiveness);
- ``column_distinct_counts`` / ``distinct_values`` -> SQL aggregates
  feeding the PR 9 planner;
- ``sample`` -> computed Python-side with the same crc32-minwise rule
  as the in-memory backend, so sampled containment estimates are
  byte-identical across backends;
- pickling -> the portable ``(name, arity, version, tuples)`` payload;
  the receiving side rehydrates into a private temporary database.

Facts are tuples of ints and strings; SQLite's dynamic typing stores
both losslessly in untyped columns (and, like Python, never equates
``1`` with ``"1"``), so tuples round-trip exactly.
"""

from __future__ import annotations

import heapq
import sqlite3
import threading
import zlib
from pathlib import Path
from typing import Iterable, Iterator

from ..errors import ArityError, ReproError

__all__ = ["SQLiteBackend", "SQLiteRelation", "ReadOnlyRelationError"]

Fact = tuple


class ReadOnlyRelationError(ReproError):
    """Mutation attempted on a read-only snapshot relation."""


def _quote(identifier: str) -> str:
    return '"' + identifier.replace('"', '""') + '"'


class SQLiteRelation:
    """One relation stored as a SQLite table.

    Implements the full ``RelationStorage`` protocol (see
    :mod:`repro.storage.protocol`) with the exact version/observer/cache
    semantics of the in-memory :class:`~repro.datalog.database.Relation`.
    Connections are opened with ``check_same_thread=False`` and guarded
    by an :class:`threading.RLock`, matching the service's
    one-writer/many-snapshot-readers usage.
    """

    def __init__(self, name: str, arity: int, tuples: Iterable[Fact] = (),
                 *, path: str | None = None) -> None:
        self.name = name
        self.arity = arity
        self._path = str(path) if path is not None else None
        self._readonly = False
        self._version = 0
        self._observers: tuple = ()
        self._indexed: set[tuple[int, ...]] = set()
        self._len_cache: tuple[int, int] | None = None
        self._distinct_cache = None
        self._col_distinct_cache = None
        self._sample_cache = None
        self._lock = threading.RLock()
        self._table = _quote("rel_" + name)
        self._columns = [f"c{i}" for i in range(arity)] or ["c0"]
        self._conn = self._connect_rw()
        self._create_table()
        if tuples:
            self.add_all(tuples)

    # -- connection / schema -----------------------------------------------

    def _connect_rw(self) -> sqlite3.Connection:
        # "" is a private temporary on-disk database: invisible to other
        # connections, spilled out of core by SQLite itself, deleted on
        # close.  A real path is a shared durable file in WAL mode, which
        # is what makes read-only snapshot connections possible.
        conn = sqlite3.connect(self._path or "", check_same_thread=False,
                               isolation_level=None)
        self._wal = False
        if self._path is not None:
            row = conn.execute("PRAGMA journal_mode=WAL").fetchone()
            self._wal = bool(row) and str(row[0]).lower() == "wal"
            conn.execute("PRAGMA synchronous=NORMAL")
        return conn

    def _create_table(self) -> None:
        cols = ", ".join(self._columns)
        pk = ", ".join(self._columns)
        with self._lock:
            self._conn.execute(
                f"CREATE TABLE IF NOT EXISTS {self._table} "
                f"({cols}, PRIMARY KEY ({pk})) WITHOUT ROWID"
            )
            if self._path is not None:
                # Durable files record each relation's name and arity
                # so reopening the file can remount every relation
                # (the column count alone cannot distinguish arity 0
                # from arity 1 -- both store one column).
                self._conn.execute(
                    "CREATE TABLE IF NOT EXISTS repro_schema "
                    "(name TEXT PRIMARY KEY, arity INTEGER)"
                )
                self._conn.execute(
                    "INSERT OR REPLACE INTO repro_schema VALUES (?, ?)",
                    (self.name, self.arity),
                )

    def _row(self, fact: Fact) -> tuple:
        # Arity-0 relations hold at most the empty tuple; it is stored
        # as a single sentinel row so SQL set semantics still apply.
        return (0,) if self.arity == 0 else fact

    def _fact(self, row: tuple) -> Fact:
        return () if self.arity == 0 else tuple(row)

    def _check(self, fact) -> Fact:
        fact = tuple(fact)
        if len(fact) != self.arity:
            raise ArityError(
                f"relation {self.name} has arity {self.arity}, "
                f"got tuple of length {len(fact)}: {fact!r}"
            )
        return fact

    def _check_writable(self) -> None:
        if self._readonly:
            raise ReadOnlyRelationError(
                f"relation {self.name} is a read-only snapshot"
            )

    @property
    def _where(self) -> str:
        return " AND ".join(f"{c} = ?" for c in self._columns)

    # -- observation -------------------------------------------------------

    def observe(self, callback) -> None:
        if callback not in self._observers:
            self._observers = self._observers + (callback,)

    def unobserve(self, callback) -> None:
        self._observers = tuple(
            cb for cb in self._observers if cb != callback
        )

    @property
    def version(self) -> int:
        return self._version

    # -- mutation ---------------------------------------------------------

    def add(self, fact: Fact) -> bool:
        fact = self._check(fact)
        self._check_writable()
        with self._lock:
            cur = self._conn.execute(
                f"INSERT OR IGNORE INTO {self._table} VALUES "
                f"({', '.join('?' for _ in self._columns)})",
                self._row(fact),
            )
            if cur.rowcount != 1:
                return False
            self._version += 1
        for cb in self._observers:
            cb(self, fact, 1)
        return True

    def add_all(self, facts: Iterable[Fact]) -> int:
        self._check_writable()
        rows = [self._row(self._check(f)) for f in facts]
        if not rows:
            return 0
        placeholders = ", ".join("?" for _ in self._columns)
        sql = f"INSERT OR IGNORE INTO {self._table} VALUES ({placeholders})"
        new: list[Fact] = []
        with self._lock:
            self._conn.execute("BEGIN")
            try:
                if self._observers:
                    # Per-fact effectiveness is needed for the observer
                    # fan-out; still one transaction.
                    for row in rows:
                        if self._conn.execute(sql, row).rowcount == 1:
                            new.append(self._fact(row))
                    count = len(new)
                else:
                    before = self._conn.total_changes
                    self._conn.executemany(sql, rows)
                    count = self._conn.total_changes - before
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            self._conn.execute("COMMIT")
            self._version += count
        for fact in new:
            for cb in self._observers:
                cb(self, fact, 1)
        return count

    def discard(self, fact: Fact) -> bool:
        fact = self._check(fact)
        self._check_writable()
        with self._lock:
            cur = self._conn.execute(
                f"DELETE FROM {self._table} WHERE {self._where}",
                self._row(fact),
            )
            if cur.rowcount != 1:
                return False
            self._version += 1
        for cb in self._observers:
            cb(self, fact, -1)
        return True

    def discard_all(self, facts: Iterable[Fact]) -> int:
        self._check_writable()
        rows = [self._row(self._check(f)) for f in facts]
        if not rows:
            return 0
        sql = f"DELETE FROM {self._table} WHERE {self._where}"
        removed: list[Fact] = []
        with self._lock:
            self._conn.execute("BEGIN")
            try:
                if self._observers:
                    for row in rows:
                        if self._conn.execute(sql, row).rowcount == 1:
                            removed.append(self._fact(row))
                    count = len(removed)
                else:
                    before = self._conn.total_changes
                    self._conn.executemany(sql, rows)
                    count = self._conn.total_changes - before
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            self._conn.execute("COMMIT")
            self._version += count
        for fact in removed:
            for cb in self._observers:
                cb(self, fact, -1)
        return count

    def clear(self) -> None:
        self._check_writable()
        with self._lock:
            self._conn.execute(f"DELETE FROM {self._table}")
            for positions in self._indexed:
                self._conn.execute(
                    f"DROP INDEX IF EXISTS {self._index_name(positions)}"
                )
            self._indexed.clear()
            self._version += 1
        for cb in self._observers:
            cb(self, None, 0)

    # -- queries ----------------------------------------------------------

    def __contains__(self, fact: Fact) -> bool:
        fact = self._check(fact)
        with self._lock:
            row = self._conn.execute(
                f"SELECT 1 FROM {self._table} WHERE {self._where} LIMIT 1",
                self._row(fact),
            ).fetchone()
        return row is not None

    def __len__(self) -> int:
        cached = self._len_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        with self._lock:
            (n,) = self._conn.execute(
                f"SELECT COUNT(*) FROM {self._table}"
            ).fetchone()
        self._len_cache = (self._version, n)
        return n

    def __bool__(self) -> bool:
        return len(self) > 0

    def _all_rows(self) -> list:
        cols = ", ".join(self._columns)
        with self._lock:
            return self._conn.execute(
                f"SELECT {cols} FROM {self._table}"
            ).fetchall()

    def __iter__(self) -> Iterator[Fact]:
        # fetchall up front so callers may mutate while iterating, just
        # as iterating a set copy would allow.
        return iter([self._fact(r) for r in self._all_rows()])

    def tuples(self) -> frozenset:
        return frozenset(self)

    def _index_name(self, positions: tuple[int, ...]) -> str:
        suffix = "_".join(str(p) for p in positions)
        return _quote(f"idx_rel_{self.name}_{suffix}")

    def lookup(self, positions: tuple[int, ...], key: tuple,
               tracer=None) -> list[Fact]:
        if not positions:
            if tracer is not None:
                tracer.count("full_scans")
            return [self._fact(r) for r in self._all_rows()]
        if positions not in self._indexed and not self._readonly:
            cols = ", ".join(self._columns[p] for p in positions)
            with self._lock:
                self._conn.execute(
                    f"CREATE INDEX IF NOT EXISTS {self._index_name(positions)}"
                    f" ON {self._table} ({cols})"
                )
            self._indexed.add(positions)
            if tracer is not None:
                tracer.count("index_builds")
                tracer.count("index_tuples", len(self))
        where = " AND ".join(f"{self._columns[p]} = ?" for p in positions)
        cols = ", ".join(self._columns)
        with self._lock:
            rows = self._conn.execute(
                f"SELECT {cols} FROM {self._table} WHERE {where}",
                tuple(key),
            ).fetchall()
        return [self._fact(r) for r in rows]

    # -- planner statistics -------------------------------------------------

    def distinct_values(self) -> frozenset:
        cached = self._distinct_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        if self.arity == 0:
            frozen = frozenset()
        else:
            union = " UNION ".join(
                f"SELECT DISTINCT {c} AS v FROM {self._table}"
                for c in self._columns
            )
            with self._lock:
                rows = self._conn.execute(union).fetchall()
            frozen = frozenset(r[0] for r in rows)
        self._distinct_cache = (self._version, frozen)
        return frozen

    def column_distinct_counts(self) -> tuple[int, ...]:
        cached = self._col_distinct_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        if self.arity == 0:
            counts: tuple[int, ...] = ()
        else:
            selects = ", ".join(
                f"COUNT(DISTINCT {c})" for c in self._columns
            )
            with self._lock:
                counts = tuple(self._conn.execute(
                    f"SELECT {selects} FROM {self._table}"
                ).fetchone())
        self._col_distinct_cache = (self._version, counts)
        return counts

    def sample(self, k: int = 32) -> tuple[Fact, ...]:
        # Same crc32-minwise rule as the in-memory backend -- the
        # planner's sampled containment estimates must not depend on
        # where the tuples live.
        cached = self._sample_cache
        if cached is not None and cached[0] == self._version \
                and cached[1] == k:
            return cached[2]
        facts = [self._fact(r) for r in self._all_rows()]
        if len(facts) <= k:
            sampled = tuple(sorted(facts, key=repr))
        else:
            sampled = tuple(heapq.nsmallest(
                k, facts,
                key=lambda t: (zlib.crc32(repr(t).encode()), repr(t)),
            ))
        self._sample_cache = (self._version, k, sampled)
        return sampled

    # -- copies and snapshots ----------------------------------------------

    def copy(self) -> "SQLiteRelation":
        """A private writable copy in a fresh temporary database."""
        return SQLiteRelation(self.name, self.arity, self)

    def snapshot(self) -> "SQLiteRelation":
        """A stable read view of the current contents.

        On a durable WAL database this opens a read-only connection and
        pins it with an open read transaction: later commits on the
        live connection are invisible to it, and no tuples are copied.
        Temporary-database relations (private by construction) fall
        back to a frozen copy.
        """
        if not (self._path is not None and self._wal):
            snap = self.copy()
            snap._readonly = True
            snap._version = self._version
            return snap
        snap = object.__new__(SQLiteRelation)
        snap.name = self.name
        snap.arity = self.arity
        snap._path = self._path
        snap._readonly = True
        snap._wal = True
        snap._version = self._version
        snap._observers = ()
        snap._indexed = set(self._indexed)
        snap._len_cache = None
        snap._distinct_cache = None
        snap._col_distinct_cache = None
        snap._sample_cache = None
        snap._lock = threading.RLock()
        snap._table = self._table
        snap._columns = list(self._columns)
        uri = Path(self._path).resolve().as_uri() + "?mode=ro"
        snap._conn = sqlite3.connect(uri, uri=True, check_same_thread=False,
                                     isolation_level=None)
        # An open read transaction pins this connection to the current
        # WAL state; the touching SELECT is what actually starts it.
        snap._conn.execute("BEGIN")
        snap._conn.execute(
            f"SELECT COUNT(*) FROM {snap._table}"
        ).fetchone()
        return snap

    def close(self) -> None:
        """Release the underlying connection (idempotent)."""
        with self._lock:
            try:
                self._conn.close()
            except sqlite3.Error:
                pass

    # -- pickling ----------------------------------------------------------

    def __getstate__(self):
        # Same portable payload as the in-memory backend; the receiving
        # side gets a private temporary database, no observers.
        return (self.name, self.arity, self._version, tuple(self.tuples()))

    def __setstate__(self, state) -> None:
        name, arity, version, tuples = state
        self.__init__(name, arity, tuples)
        self._version = version

    def __repr__(self) -> str:
        where = self._path or "temp"
        mode = " ro" if self._readonly else ""
        return (f"SQLiteRelation({self.name}/{self.arity}, "
                f"{len(self)} tuples, {where}{mode})")


class SQLiteBackend:
    """Factory for :class:`SQLiteRelation` storages.

    ``path=None`` (the default) gives every relation its own private
    temporary database -- the out-of-core mode.  A path makes all
    relations share one durable WAL file, which is what
    ``serve --db-path`` uses; :meth:`scratch` then hands evaluator
    copies a temporary-mode twin so derived relations never touch the
    shared file.
    """

    name = "sqlite"

    def __init__(self, path: str | None = None) -> None:
        self.path = str(path) if path else None

    def make_relation(self, name: str, arity: int,
                      tuples: Iterable[Fact] = ()) -> SQLiteRelation:
        return SQLiteRelation(name, arity, tuples, path=self.path)

    def scratch(self) -> "SQLiteBackend":
        return self if self.path is None else SQLiteBackend()

    def existing_relations(self) -> list[tuple[str, int]]:
        """``(name, arity)`` for every relation recorded in the file.

        Empty for temporary-mode backends and for files no relation
        was ever created in.
        """
        if self.path is None:
            return []
        conn = sqlite3.connect(self.path)
        try:
            row = conn.execute(
                "SELECT 1 FROM sqlite_master "
                "WHERE type = 'table' AND name = 'repro_schema'"
            ).fetchone()
            if row is None:
                return []
            return [
                (name, arity) for name, arity in conn.execute(
                    "SELECT name, arity FROM repro_schema ORDER BY name"
                )
            ]
        finally:
            conn.close()

    def __repr__(self) -> str:
        return f"SQLiteBackend(path={self.path!r})"
