"""Per-query profiling: ``EXPLAIN ANALYZE`` for the strategy zoo.

:class:`QueryProfile` bundles everything one traced evaluation learned
-- the answers and chosen plan, the strategy advice, the
:class:`~repro.stats.EvaluationStats` relation sizes (the paper's
Definition 4.2 measure), and the full span forest with its counters
and per-iteration series -- and renders it as a report a user can read
to understand *why* Separable beat Magic on their query: which rule
did the work, how many tuples each join examined versus produced, and
how the per-round deltas grew and shrank.

Built by :meth:`repro.engine.Engine.profile` and the
``repro-datalog profile`` CLI subcommand; rendered as text, JSON, or a
Chrome trace (``--format``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .export import to_chrome_trace, to_metrics_text
from .tracer import Span, Tracer

__all__ = ["QueryProfile", "RuleRow", "rule_rows"]

#: Counter-name prefixes the evaluators use for per-rule accounting.
RULE_APPS_PREFIX = "rule_apps:"
RULE_OUT_PREFIX = "rule_out:"


@dataclass(frozen=True)
class RuleRow:
    """Aggregated work attributed to one rule (or plan join term)."""

    label: str
    applications: int
    tuples_out: int


def rule_rows(tracer: Tracer) -> list[RuleRow]:
    """Per-rule application/output totals recorded in a trace.

    The evaluators bump ``rule_apps:<label>`` once per rule evaluation
    and ``rule_out:<label>`` by the tuples that evaluation contributed;
    labels are ``<head>#<index>`` for source rules (Magic shows its
    rewritten rules here) and ``<loop>#<index>`` for compiled plan
    join terms.
    """
    apps: dict[str, int] = {}
    outs: dict[str, int] = {}
    for span in tracer.spans():
        for name, value in span.counters.items():
            if name.startswith(RULE_APPS_PREFIX):
                label = name[len(RULE_APPS_PREFIX):]
                apps[label] = apps.get(label, 0) + value
            elif name.startswith(RULE_OUT_PREFIX):
                label = name[len(RULE_OUT_PREFIX):]
                outs[label] = outs.get(label, 0) + value
    return [
        RuleRow(label, apps.get(label, 0), outs.get(label, 0))
        for label in sorted(set(apps) | set(outs))
    ]


def _span_label(span: Span) -> str:
    """A stable one-line identity for a span in report rows."""
    for key in ("relation", "scc"):
        value = span.attrs.get(key)
        if value is not None:
            return f"{span.name}[{value}]"
    return span.name


def _series_lines(tracer: Tracer) -> list[str]:
    lines: list[str] = []
    for span in tracer.spans():
        for name, values in sorted(span.series.items()):
            shown = " ".join(str(v) for v in values[:40])
            if len(values) > 40:
                shown += f" ... ({len(values)} points)"
            lines.append(f"{_span_label(span)}.{name}: {shown}")
    return lines


@dataclass
class QueryProfile:
    """One traced query evaluation, ready to explain itself.

    ``result`` and ``advice`` are the engine's
    :class:`~repro.engine.QueryResult` and
    :class:`~repro.engine.StrategyAdvice` (typed loosely here to keep
    the observability layer import-free of the engine); ``tracer``
    holds the recorded span forest and ``requested`` the strategy the
    caller asked for (``result.strategy`` is what actually ran).
    """

    result: object
    advice: object
    tracer: Tracer
    requested: str
    wall_s: float

    # -- derived -----------------------------------------------------------

    @property
    def stats(self):
        return self.result.stats

    def fanout(self) -> Optional[float]:
        """Join output per examined tuple over the whole run."""
        examined = self.tracer.counter_total("tuples_examined")
        if not examined:
            return None
        return self.tracer.counter_total("bindings_out") / examined

    def planner_summary(self) -> Optional[dict]:
        """Estimate-vs-observed digest of a cost/adaptive-order run.

        ``None`` unless the cost-based planner ran (the ``plan_est_rows``
        counter only moves under ``order="cost"``/``"adaptive"``), so
        default-order profile text stays byte-identical.  ``advice`` is
        one actionable sentence: trust the estimates, or switch to the
        adaptive order, or note that re-planning already kicked in.
        """
        estimated = self.tracer.counter_total("plan_est_rows")
        if not estimated:
            return None
        observed = self.tracer.counter_total("bindings_out")
        replans = self.tracer.counter_total("plan_replans")
        misestimates = self.tracer.counter_total("plan_misestimates")
        if not misestimates:
            advice = (
                "estimates tracked observed fanout; the chosen order "
                "is trustworthy"
            )
        elif replans:
            advice = (
                f"estimates diverged {misestimates} time(s); adaptive "
                f"re-planning corrected the order mid-fixpoint "
                f"{replans} time(s)"
            )
        else:
            advice = (
                f"estimates diverged {misestimates} time(s) with no "
                f"re-planning; try order=\"adaptive\" to correct "
                f"mid-fixpoint"
            )
        return {
            "estimated_rows": estimated,
            "observed_bindings": observed,
            "plan_replans": replans,
            "plan_misestimates": misestimates,
            "advice": advice,
        }

    def worker_lanes(self) -> dict[int, int]:
        """Stitched-fragment host spans per worker pid (empty: serial).

        A parallel profile run installs one ``parallel.worker`` host
        span per shipped fragment (see
        :mod:`repro.observability.fragments`); this is the pid -> count
        map of those lanes, what the Chrome export renders as one
        process track per pool worker.
        """
        lanes: dict[int, int] = {}
        for span in self.tracer.spans():
            pid = span.attrs.get("worker_pid")
            if isinstance(pid, int):
                lanes[pid] = lanes.get(pid, 0) + 1
        return lanes

    # -- rendering ---------------------------------------------------------

    def render_text(self, timings: bool = True) -> str:
        """The ``EXPLAIN ANALYZE`` report.

        With ``timings=False`` every wall-clock figure is omitted and
        the remaining content is deterministic for a given program,
        database and query -- what the CLI smoke tests and doc examples
        pin down.
        """
        result = self.result
        rule = "-" * 58
        lines = [f"EXPLAIN ANALYZE  {result.query}?"]
        header = (
            f"strategy: {result.strategy}"
            + (
                f" (requested {self.requested})"
                if self.requested != result.strategy
                else ""
            )
            + f"; answers: {len(result.answers)}"
        )
        if timings:
            header += f"; wall-clock: {self.wall_s * 1e3:.3f} ms"
        lines.append(header)

        lines += ["", f"-- plan {rule[8:]}", result.describe_plan()]
        lines += ["", f"-- strategy advice {rule[19:]}",
                  self.advice.explain()]

        lines += ["", f"-- spans {rule[9:]}"]
        total = sum(
            s.duration_s or 0.0
            for s in self.tracer.roots
            if s.name != "(toplevel)"
        )

        def emit_span(span: Span, depth: int) -> None:
            counters = " ".join(
                f"{k}={v}"
                for k, v in sorted(span.counters.items())
                if not k.startswith((RULE_APPS_PREFIX, RULE_OUT_PREFIX))
            )
            attrs = " ".join(
                f"{k}={v}" for k, v in sorted(span.attrs.items())
            )
            prefix = ""
            if timings:
                share = (
                    (span.duration_s or 0.0) / total * 100.0
                    if total > 0
                    else 0.0
                )
                prefix = (
                    f"{share:5.1f}%  {(span.duration_s or 0) * 1e3:9.3f}ms  "
                )
            lines.append(
                f"{prefix}{'  ' * depth}{span.name}"
                + (f"  {attrs}" if attrs else "")
                + (f"  [{counters}]" if counters else "")
            )
            for child in span.children:
                emit_span(child, depth + 1)

        for root in self.tracer.roots:
            emit_span(root, 0)

        rows = rule_rows(self.tracer)
        if rows:
            lines += ["", f"-- per-rule work {rule[17:]}"]
            width = max(len(r.label) for r in rows)
            lines.append(
                f"{'rule':<{width}}  {'applications':>12}  {'tuples out':>10}"
            )
            for r in rows:
                lines.append(
                    f"{r.label:<{width}}  {r.applications:>12}  "
                    f"{r.tuples_out:>10}"
                )

        lines += [
            "",
            f"-- generated relations (Definition 4.2) {rule[40:]}",
        ]
        sizes = self.stats.relation_sizes
        if sizes:
            width = max(len(n) for n in sizes)
            for name in sorted(sizes):
                lines.append(f"{name:<{width}}  {sizes[name]:>10}")
        else:
            lines.append("(none recorded)")

        series = _series_lines(self.tracer)
        if series:
            lines += ["", f"-- per-iteration series {rule[24:]}"]
            lines.extend(series)

        lines += ["", f"-- totals {rule[10:]}"]
        fanout = self.fanout()
        lines.append(
            f"iterations={self.stats.iterations} "
            f"tuples_examined={self.tracer.counter_total('tuples_examined')} "
            f"bindings_out={self.tracer.counter_total('bindings_out')} "
            f"tuples_produced={self.stats.tuples_produced} "
            + (f"join_fanout={fanout:.3f}" if fanout is not None
               else "join_fanout=n/a")
        )
        lines.append(
            f"plan_compiles={self.tracer.counter_total('plan_compiles')} "
            f"plan_cache_hits="
            f"{self.tracer.counter_total('plan_cache_hits')} "
            f"plan_cache_misses="
            f"{self.tracer.counter_total('plan_cache_misses')}"
        )
        lanes = self.worker_lanes()
        if lanes:
            # Only parallel profiles print this; serial report text
            # stays byte-identical.
            lines.append(
                "worker_lanes="
                + " ".join(
                    f"pid{pid}:{count}"
                    for pid, count in sorted(lanes.items())
                )
            )

        planner = self.planner_summary()
        if planner is not None:
            # Only cost/adaptive-order profiles print this; greedy
            # report text stays byte-identical.
            lines += ["", f"-- planner (estimate vs observed) {rule[33:]}"]
            lines.append(
                f"estimated_rows={planner['estimated_rows']} "
                f"observed_bindings={planner['observed_bindings']} "
                f"plan_replans={planner['plan_replans']} "
                f"plan_misestimates={planner['plan_misestimates']}"
            )
            lines.append(f"advice: {planner['advice']}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        """A JSON-ready summary (stable keys; trace included)."""
        result = self.result
        return {
            "query": str(result.query),
            "strategy": result.strategy,
            "requested": self.requested,
            "answers": len(result.answers),
            "wall_s": self.wall_s,
            "plan": result.describe_plan(),
            "advice": self.advice.explain(),
            "stats": self.stats.as_dict(),
            "planner": self.planner_summary(),
            "worker_lanes": {
                str(pid): count
                for pid, count in sorted(self.worker_lanes().items())
            },
            "rules": [
                {
                    "label": r.label,
                    "applications": r.applications,
                    "tuples_out": r.tuples_out,
                }
                for r in rule_rows(self.tracer)
            ],
            "counters": {
                name: self.tracer.counter_total(name)
                for name in sorted(
                    {
                        n
                        for s in self.tracer.spans()
                        for n in s.counters
                    }
                )
            },
            "trace": self.tracer.to_dict(),
        }

    def to_chrome_trace(self) -> dict:
        """Chrome trace-event JSON of the recorded spans."""
        return to_chrome_trace(self.tracer)

    def to_metrics_text(self) -> str:
        """Prometheus-style exposition of the final counters."""
        return to_metrics_text(self.tracer)
