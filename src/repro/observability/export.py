"""Exporters: a completed trace rendered for external tooling.

Both exporters are pure functions over a :class:`Tracer` whose spans
are closed -- the tracer may be the live object an evaluation just
filled, or one rebuilt from a JSONL event file with
:func:`repro.observability.events.replay_trace`; the two produce
byte-identical output, which is what makes shipped event logs a
faithful substitute for being there.

:func:`to_chrome_trace`
    Chrome trace-event JSON (the ``traceEvents`` array format), loadable
    in Perfetto or ``about:tracing``.  Every span becomes a balanced
    ``B``/``E`` duration pair on one track; counters become ``C``
    events carrying running totals (so the viewer draws a monotone
    work curve); per-iteration series become ``C`` events spaced evenly
    across their span (the per-round delta/carry cardinalities as a
    little histogram under the span that produced them).

:func:`to_metrics_text`
    Prometheus-style text exposition of the trace's final counter
    totals, for scrape-shaped pipelines and quick ``grep``-ing.
"""

from __future__ import annotations

from .tracer import Span, Tracer

__all__ = ["escape_label_value", "to_chrome_trace", "to_metrics_text"]

_PID = 1
_TID = 1


def _origin(tracer: Tracer) -> float:
    starts = [s.start_s for s in tracer.spans()]
    return min(starts) if starts else 0.0


def _us(t: float, origin: float) -> float:
    """Seconds -> microseconds relative to the trace origin."""
    return (t - origin) * 1e6


def _worker_pids(tracer: Tracer) -> list[int]:
    """Distinct ``worker_pid`` attrs, in first-appearance order."""
    pids: list[int] = []
    for span in tracer.spans():
        pid = span.attrs.get("worker_pid")
        if isinstance(pid, int) and pid not in pids:
            pids.append(pid)
    return pids


def _span_events(
    span: Span, origin: float, out: list[dict], pid: int = _PID
) -> None:
    # A stitched worker host span (see observability.fragments) carries
    # a worker_pid attr; it and its whole subtree render on that pid's
    # lane -- one Chrome "process" track per pool worker.
    pid = span.attrs.get("worker_pid", pid)
    if not isinstance(pid, int):
        pid = _PID
    end_s = span.end_s if span.end_s is not None else span.start_s
    out.append(
        {
            "name": span.name,
            "ph": "B",
            "ts": _us(span.start_s, origin),
            "pid": pid,
            "tid": _TID,
            "args": dict(span.attrs),
        }
    )
    for name, values in sorted(span.series.items()):
        # One C event per observation, evenly spaced over the span so
        # the viewer shows the per-iteration shape in place.
        step = (end_s - span.start_s) / (len(values) + 1)
        for i, value in enumerate(values):
            out.append(
                {
                    "name": f"{span.name}.{name}",
                    "ph": "C",
                    "ts": _us(span.start_s + (i + 1) * step, origin),
                    "pid": pid,
                    "tid": _TID,
                    "args": {name: value},
                }
            )
    for child in span.children:
        _span_events(child, origin, out, pid)
    out.append(
        {
            "name": span.name,
            "ph": "E",
            "ts": _us(end_s, origin),
            "pid": pid,
            "tid": _TID,
            "args": {"status": span.status, "counters": dict(span.counters)},
        }
    )


def to_chrome_trace(tracer: Tracer) -> dict:
    """The trace as a Chrome trace-event JSON object.

    Returns ``{"traceEvents": [...], "otherData": {...}}`` -- dump it
    with ``json.dumps`` and load the file in Perfetto.  ``B``/``E``
    events are emitted in nesting order, so they are balanced by
    construction; running counter totals are attached as ``C`` events
    at each span's close timestamp.
    """
    origin = _origin(tracer)
    events: list[dict] = []
    worker_pids = _worker_pids(tracer)
    if worker_pids:
        # Name the lanes only when a stitched trace actually has more
        # than one: serial traces keep their exact historical bytes.
        for pid, name in [(_PID, "parent")] + [
            (p, f"worker {p}") for p in worker_pids
        ]:
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "ts": 0.0,
                    "pid": pid,
                    "tid": _TID,
                    "args": {"name": name},
                }
            )
    for root in tracer.roots:
        _span_events(root, origin, events)

    # Running totals per counter name, in span-close order, so the
    # viewer's counter track rises monotonically as work happens.
    totals: dict[str, int] = {}
    counter_events: list[dict] = []
    for span in sorted(
        tracer.spans(), key=lambda s: s.end_s if s.end_s is not None else 0.0
    ):
        if not span.counters:
            continue
        for name, value in sorted(span.counters.items()):
            totals[name] = totals.get(name, 0) + value
            counter_events.append(
                {
                    "name": name,
                    "ph": "C",
                    "ts": _us(
                        span.end_s if span.end_s is not None
                        else span.start_s,
                        origin,
                    ),
                    "pid": _PID,
                    "tid": _TID,
                    "args": {name: totals[name]},
                }
            )
    events.extend(counter_events)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "exporter": "repro.observability.export",
            "context": dict(getattr(tracer, "context", {}) or {}),
        },
    }


def _metric_name(counter: str) -> str:
    """Counter name -> a legal Prometheus metric name."""
    safe = "".join(
        c if c.isalnum() or c == "_" else "_" for c in counter
    )
    return f"repro_{safe}_total"


def escape_label_value(value) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Backslash, double quote, and newline are the three characters the
    format defines escapes for; everything else passes through.  Rule
    labels are the usual customers (``seen_1#0`` is fine as-is), but
    span-name and phase labels can carry arbitrary strings.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


class MetricFamilies:
    """Emission bookkeeping: ``# HELP``/``# TYPE`` once per family.

    Distinct counter names can sanitize onto the same metric family
    (``rule_apps:x`` labelled and a hypothetical ``rule-apps`` plain
    both become ``repro_rule_apps_total``); Prometheus rejects a
    scrape that declares a family twice, so every exporter funnels its
    headers through one of these.
    """

    def __init__(self, lines: list[str]) -> None:
        self.lines = lines
        self._seen: set[str] = set()

    def declare(self, metric: str, help_text: str,
                kind: str = "counter") -> None:
        if metric in self._seen:
            return
        self._seen.add(metric)
        self.lines.append(f"# HELP {metric} {help_text}")
        self.lines.append(f"# TYPE {metric} {kind}")


def to_metrics_text(tracer: Tracer) -> str:
    """Final counter totals in the Prometheus text exposition format.

    One ``counter`` metric per tracer counter name (summed over every
    span), plus ``repro_spans_total``.  Rule-indexed counters
    (``rule_out:<label>``) become labelled samples of one metric.
    ``# HELP``/``# TYPE`` headers are emitted exactly once per metric
    family and label values are escaped per the format.
    """
    lines: list[str] = []
    families = MetricFamilies(lines)
    totals: dict[str, int] = {}
    spans = 0
    for span in tracer.spans():
        spans += 1
        for name, value in span.counters.items():
            totals[name] = totals.get(name, 0) + value

    plain: dict[str, int] = {}
    labelled: dict[str, dict[str, int]] = {}
    for name, value in totals.items():
        if ":" in name:
            metric, _, label = name.partition(":")
            labelled.setdefault(metric, {})[label] = value
        else:
            plain[name] = value

    families.declare(
        "repro_spans_total", "Spans recorded in the trace."
    )
    lines.append(f"repro_spans_total {spans}")
    for name in sorted(plain):
        metric = _metric_name(name)
        families.declare(
            metric,
            f"Tracer counter {name!r} summed over the trace.",
        )
        lines.append(f"{metric} {plain[name]}")
    for name in sorted(labelled):
        metric = _metric_name(name)
        families.declare(
            metric, f"Tracer counter {name!r} by rule label."
        )
        for label in sorted(labelled[name]):
            lines.append(
                f'{metric}{{rule="{escape_label_value(label)}"}} '
                f"{labelled[name][label]}"
            )
    return "\n".join(lines) + "\n"
