"""Structured trace events: sinks, a JSONL wire format, and replay.

The :class:`~repro.observability.tracer.Tracer` records an in-memory
span forest; an :class:`EventSink` additionally receives every state
change *as it happens* -- span open/close, counter bump, per-iteration
series point -- as a plain-dict event.  That stream is what external
tooling consumes: ship it over a socket, ring-buffer it in a server,
or write it to a JSONL file and rebuild the trace later with
:func:`replay_trace` (the rebuilt trace is exporter-equivalent to the
live one: ``to_chrome_trace`` and ``to_metrics_text`` produce
byte-identical output from either).

Event records (``type`` field):

``trace_start``
    First event of every stream: the schema version tag plus the
    tracer's ``context`` dict (query id, strategy, ... -- whatever the
    caller stamped on the run).
``span_open`` / ``span_close``
    One pair per span.  ``sid`` is a stream-unique span id, ``parent``
    the enclosing span's sid (``None`` for roots), ``t`` the
    ``perf_counter`` timestamp.  ``span_close`` re-carries ``attrs``
    because evaluators add facts at close time (``final_seen``, the
    final relation sizes of an SCC), and carries the span's final
    ``counters`` totals -- bumps happen per tuple in the join loops,
    so per-bump emission would cost a serialization per tuple.
``count``
    One counter bump on span ``sid`` (``name``, increment ``n``).
    Only emitted for counts landing on an already-closed span (the
    implicit ``(toplevel)`` catch-all); ordinary spans ship totals on
    ``span_close``.
``series``
    One per-iteration observation appended to span ``sid`` -- the
    delta/carry/seen cardinalities no scalar counter can carry.

Sinks must never raise from :meth:`~EventSink.emit`; a broken sink
would otherwise abort the evaluation it is observing.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import IO, Iterable, Iterator, Optional, Protocol, Union

from .tracer import Span, Tracer

__all__ = [
    "EVENT_SCHEMA",
    "EventSink",
    "RingBufferSink",
    "JsonlFileSink",
    "CompositeSink",
    "read_events",
    "replay_trace",
    "replay_file",
]

#: Version tag of the event record layout; bump on incompatible changes.
EVENT_SCHEMA = "repro-events/1"


class EventSink(Protocol):
    """Anything that can receive trace events as they are recorded."""

    def emit(self, event: dict) -> None:
        """Receive one event record (the dict must not be mutated)."""

    def close(self) -> None:
        """Flush and release resources; further emits are undefined."""


class RingBufferSink:
    """Keeps the most recent ``capacity`` events in memory.

    The production shape for long-lived servers: bounded memory, and on
    an incident the tail of the stream is right there to dump.
    """

    def __init__(self, capacity: int = 65_536) -> None:
        self.events: deque[dict] = deque(maxlen=capacity)

    @property
    def capacity(self) -> int:
        return self.events.maxlen or 0

    def emit(self, event: dict) -> None:
        self.events.append(event)

    def close(self) -> None:
        pass

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[dict]:
        return iter(self.events)


class JsonlFileSink:
    """Appends one JSON object per line to a file.

    The file starts with the ``trace_start`` record (schema version +
    context), so a reader can reject incompatible streams before
    parsing the rest.  Writes go through Python's buffered file object;
    :meth:`close` flushes.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._fh: Optional[IO[str]] = self.path.open("w")

    def emit(self, event: dict) -> None:
        if self._fh is None:
            return
        self._fh.write(json.dumps(event, sort_keys=True) + "\n")

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlFileSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class CompositeSink:
    """Fans every event out to several sinks (ring buffer + file, ...)."""

    def __init__(self, *sinks: EventSink) -> None:
        self.sinks = tuple(sinks)

    def emit(self, event: dict) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


def read_events(path: Union[str, Path]) -> list[dict]:
    """Load a JSONL event file written through :class:`JsonlFileSink`.

    Validates the leading ``trace_start`` record's schema tag; blank
    lines are ignored so hand-truncated files still load.
    """
    events: list[dict] = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    if not events or events[0].get("type") != "trace_start":
        raise ValueError(
            f"{path}: not an event stream (no trace_start record)"
        )
    schema = events[0].get("schema")
    if schema != EVENT_SCHEMA:
        raise ValueError(
            f"{path}: schema {schema!r} is not {EVENT_SCHEMA!r}"
        )
    return events


def _rebuild_span(event: dict) -> Span:
    span = Span(event["name"], dict(event.get("attrs") or {}))
    span.start_s = event["t"]
    return span


def replay_trace(events: Iterable[dict]) -> Tracer:
    """Rebuild a :class:`Tracer` from an event stream.

    The result has the same span forest, timestamps, statuses, attrs,
    counters and series as the tracer that emitted the stream, so the
    exporters in :mod:`repro.observability.export` produce byte-identical
    output from it.  Unknown event types are skipped (forward
    compatibility within one schema version).
    """
    tracer = Tracer()
    spans: dict[int, Span] = {}
    for event in events:
        kind = event.get("type")
        if kind == "trace_start":
            tracer.context = dict(event.get("context") or {})
        elif kind == "span_open":
            span = _rebuild_span(event)
            spans[event["sid"]] = span
            parent = spans.get(event.get("parent"))
            if parent is not None:
                parent.children.append(span)
            elif span.name == "(toplevel)":
                # The live tracer front-inserts the implicit catch-all
                # root; mirror that so root order matches the original.
                tracer.roots.insert(0, span)
            else:
                tracer.roots.append(span)
        elif kind == "span_close":
            span = spans.get(event["sid"])
            if span is None:
                continue
            span.end_s = event["t"]
            span.status = event.get("status", "ok")
            span.attrs = dict(event.get("attrs") or span.attrs)
            if "counters" in event:
                span.counters = dict(event["counters"])
        elif kind == "count":
            span = spans.get(event["sid"])
            if span is not None:
                name = event["name"]
                span.counters[name] = (
                    span.counters.get(name, 0) + event["n"]
                )
        elif kind == "series":
            span = spans.get(event["sid"])
            if span is not None:
                span.series.setdefault(event["name"], []).append(
                    event["value"]
                )
    return tracer


def replay_file(path: Union[str, Path]) -> Tracer:
    """:func:`read_events` + :func:`replay_trace` in one call."""
    return replay_trace(read_events(path))
