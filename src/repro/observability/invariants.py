"""Trace-level invariants the fixpoint loops must satisfy.

These are the observability layer's analogue of the statistics sanity
checks in :mod:`repro.differential.oracle`: structural facts about the
*per-iteration* series a correct evaluation always produces, checked by
the differential fuzzer on every traced run.

For a semi-naive stratum (span ``seminaive.scc``):

* delta sizes are never negative and every predicate's series has the
  same length (one entry per round);
* the loop is *monotone-terminating*: every round except the last
  derives at least one new fact for some SCC member, and the final
  round derives none (that is why the loop exited).  Note this is
  deliberately weaker than "delta sizes decrease" -- on fan-out data
  (trees, grids) deltas legitimately grow before they shrink, and the
  corpus keeps a case that tripped an overly strict version of this
  check;
* the deltas are *sum-consistent*: tuples present before the stratum
  ran (IDB base facts, a magic seed fact) plus every round's delta add
  up to the final relation size, because rounds derive disjoint fact
  sets.

For a Separable carry loop (span ``separable.loop``) the same shape:
every iteration's post-difference carry is nonempty except the last,
and ``seed + sum(carries) == |seen|`` (Figure 2's set difference makes
the carries disjoint -- Lemma 3.4).
"""

from __future__ import annotations

from .tracer import Tracer

__all__ = ["trace_violations"]

SCC_SPAN = "seminaive.scc"
CARRY_SPAN = "separable.loop"
DELTA_PREFIX = "delta:"


def _scc_violations(span) -> list[str]:
    problems: list[str] = []
    label = span.attrs.get("scc", "?")
    initial = span.attrs.get("initial", {})
    final = span.attrs.get("final")
    deltas = {
        name[len(DELTA_PREFIX):]: values
        for name, values in span.series.items()
        if name.startswith(DELTA_PREFIX)
    }
    if not deltas:
        problems.append(f"scc {label}: no delta series recorded")
        return problems

    lengths = {len(v) for v in deltas.values()}
    if len(lengths) > 1:
        problems.append(
            f"scc {label}: ragged delta series (lengths {sorted(lengths)})"
        )
        return problems
    rounds = lengths.pop()

    for predicate, values in deltas.items():
        if any(v < 0 for v in values):
            problems.append(
                f"scc {label}: negative delta for {predicate}: {values}"
            )

    if span.status == "ok" and rounds:
        for i in range(rounds - 1):
            if not any(values[i] > 0 for values in deltas.values()):
                problems.append(
                    f"scc {label}: round {i} derived nothing yet the "
                    f"loop continued (non-terminating round structure)"
                )
                break
        if rounds > 1 and any(
            values[-1] > 0 for values in deltas.values()
        ):
            problems.append(
                f"scc {label}: final round still derived facts but the "
                f"loop exited"
            )

    if span.status == "ok" and isinstance(final, dict):
        for predicate, values in deltas.items():
            start = initial.get(predicate, 0)
            end = final.get(predicate)
            if end is None:
                continue
            if start + sum(values) != end:
                problems.append(
                    f"scc {label}: delta sum inconsistent for {predicate}: "
                    f"initial {start} + deltas {values} != final {end}"
                )
    return problems


def _carry_violations(span) -> list[str]:
    problems: list[str] = []
    label = span.attrs.get("relation", "?")
    carries = span.series.get("carry", [])
    if any(c < 0 for c in carries):
        problems.append(f"carry loop {label}: negative carry size")
    if span.status != "ok":
        return problems
    for i, c in enumerate(carries[:-1]):
        if c == 0:
            problems.append(
                f"carry loop {label}: empty carry at iteration {i} but "
                f"the loop continued"
            )
            break
    if carries and carries[-1] != 0:
        problems.append(
            f"carry loop {label}: loop exited with nonempty carry "
            f"{carries[-1]}"
        )
    seed = span.attrs.get("seed")
    final_seen = span.attrs.get("final_seen")
    if seed is not None and final_seen is not None:
        if seed + sum(carries) != final_seen:
            problems.append(
                f"carry loop {label}: seen size inconsistent: seed {seed} "
                f"+ carries {carries} != final {final_seen}"
            )
    return problems


def trace_violations(tracer: Tracer) -> list[str]:
    """Every invariant violation found in a recorded trace.

    An empty list means the trace is consistent.  Open spans are
    reported too: every span must be closed once evaluation returns or
    raises (exception safety of ``Tracer.span``).
    """
    problems: list[str] = []
    for span in tracer.spans():
        if not span.closed:
            problems.append(f"span {span.name} was never closed")
    for span in tracer.spans(SCC_SPAN):
        problems.extend(_scc_violations(span))
    for span in tracer.spans(CARRY_SPAN):
        problems.extend(_carry_violations(span))
    return problems
