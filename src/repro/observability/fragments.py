"""Cross-process trace fragments: capture in a worker, stitch in the parent.

Spans recorded inside a pool worker used to die with the task: the
worker's :class:`~repro.observability.tracer.Tracer` was local to the
process, and only the :class:`~repro.stats.EvaluationStats` counters
made the trip home.  A :class:`TraceFragment` closes that gap.  It is a
compact, picklable snapshot of a worker tracer's closed span forest --
names, attrs, counters, series, and *relative* monotonic-clock offsets
-- plus the worker pid.

Clocks do not agree across processes (``time.perf_counter`` has an
arbitrary per-process epoch), so fragments never ship absolute
timestamps.  :func:`capture_fragment` rebases every span onto the
fragment's own origin (the earliest span start), and
:func:`install_fragment` re-anchors the whole tree onto the parent's
timeline at install time -- by default so the fragment *ends* at the
moment the parent received the result.  The executor refines that by
remembering one clock offset per worker pid, which keeps every span
from the same worker on a consistent lane with true relative spacing.

Two counter families deliberately do not travel:

``NONPORTABLE_COUNTERS``
    Per-process cache warmup (``plan_compiles``, ``plan_cache_*``,
    ``index_builds``, ``index_tuples``).  Each spawn worker owns a
    private plan cache and rebuilds relation indexes on the installed
    snapshot, so these tallies depend on which worker the pool happened
    to schedule a task on -- summing them across processes is both
    meaningless and nondeterministic.  They are aggregated into the
    fragment's ``cache_warmup`` dict and surfaced as an *attr* on the
    stitch host span instead, where they inform without polluting
    ``Tracer.counter_total``.

Everything else -- ``tuples_examined``, ``iterations``, per-rule
``rule_apps:``/``rule_out:`` tallies, carry series -- is a faithful copy
of what the serial evaluator would have recorded for the same work, so
stitched counter totals reconcile exactly with a serial run (see
:func:`reconciled_counter_totals` and ``tests/parallel/
test_trace_stitching.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterator, Optional

from .tracer import Span, Tracer

__all__ = [
    "FRAGMENT_SCHEMA",
    "NONPORTABLE_COUNTERS",
    "TraceFragment",
    "capture_fragment",
    "install_fragment",
    "reconciled_counter_totals",
]

#: Version stamp carried by every fragment (pickle-level forward compat).
FRAGMENT_SCHEMA = "repro-fragment/1"

#: Counters that describe per-process cache warmup rather than work.
#: See the module docstring: these are scheduling-dependent, so they are
#: aggregated into ``TraceFragment.cache_warmup`` instead of travelling
#: on the span copies.
NONPORTABLE_COUNTERS = frozenset(
    {
        "plan_compiles",
        "plan_cache_hits",
        "plan_cache_misses",
        "index_builds",
        "index_tuples",
    }
)


@dataclass
class TraceFragment:
    """A picklable snapshot of one worker tracer's closed span forest.

    ``spans`` holds plain-dict span trees whose ``start``/``end`` are
    offsets in seconds from ``origin_s`` (the worker-clock start of the
    earliest span); ``extent_s`` is the total wall-clock width.
    ``recv_s`` is stamped parent-side (parent clock) the moment the
    result crosses back, and anchors the default installation.
    """

    pid: int
    origin_s: float
    extent_s: float
    spans: tuple
    cache_warmup: dict = field(default_factory=dict)
    schema: str = FRAGMENT_SCHEMA
    recv_s: Optional[float] = None

    def iter_spans(self) -> Iterator[dict]:
        """Every packed span dict, depth first."""

        def walk(packed: dict) -> Iterator[dict]:
            yield packed
            for child in packed["children"]:
                yield from walk(child)

        for root in self.spans:
            yield from walk(root)

    @property
    def span_count(self) -> int:
        return sum(1 for _ in self.iter_spans())

    def counter_totals(self) -> dict[str, int]:
        """Sum of every (portable) counter over the fragment's spans."""
        totals: dict[str, int] = {}
        for packed in self.iter_spans():
            for name, value in packed["counters"].items():
                totals[name] = totals.get(name, 0) + value
        return totals


def _pack(span: Span, origin: float) -> dict:
    end = span.end_s if span.end_s is not None else span.start_s
    return {
        "name": span.name,
        "attrs": dict(span.attrs),
        "start": span.start_s - origin,
        "end": end - origin,
        "status": span.status,
        "counters": {
            k: v
            for k, v in span.counters.items()
            if k not in NONPORTABLE_COUNTERS
        },
        "series": {k: list(v) for k, v in span.series.items()},
        "children": [_pack(c, origin) for c in span.children],
    }


def capture_fragment(tracer, pid: int) -> Optional[TraceFragment]:
    """Snapshot a worker tracer into a fragment, or ``None`` if empty.

    Call after the traced work completes (all spans closed).  The
    tracer itself is left untouched -- spans are copied, not moved.
    """
    if tracer is None or not tracer.roots:
        return None
    starts = [s.start_s for s in tracer.spans()]
    ends = [
        s.end_s if s.end_s is not None else s.start_s
        for s in tracer.spans()
    ]
    origin = min(starts)
    extent = max(ends) - origin
    warmup: dict[str, int] = {}
    for s in tracer.spans():
        for name in NONPORTABLE_COUNTERS:
            value = s.counters.get(name, 0)
            if value:
                warmup[name] = warmup.get(name, 0) + value
    return TraceFragment(
        pid=pid,
        origin_s=origin,
        extent_s=extent,
        spans=tuple(_pack(root, origin) for root in tracer.roots),
        cache_warmup=warmup,
    )


def _revive(packed: dict, anchor: float) -> Span:
    span = Span(packed["name"], dict(packed["attrs"]))
    span.start_s = anchor + packed["start"]
    span.end_s = anchor + packed["end"]
    span.status = packed["status"]
    span.counters = dict(packed["counters"])
    span.series = {k: list(v) for k, v in packed["series"].items()}
    span.children = [_revive(c, anchor) for c in packed["children"]]
    return span


def install_fragment(
    tracer,
    fragment: Optional[TraceFragment],
    *,
    name: str = "parallel.worker",
    anchor_s: Optional[float] = None,
    **attrs,
):
    """Stitch a fragment into ``tracer`` under a per-worker host span.

    For a full :class:`Tracer` the fragment's span forest is revived on
    the parent timeline (anchored at ``anchor_s``, defaulting to
    "fragment ended when the result arrived") inside a host span named
    ``name`` that carries ``worker_pid`` -- the Chrome exporter turns
    that attr into one lane per worker.  The graft lands under the
    parent's innermost open span, so partition fragments nest inside the
    ``separable.loop`` iteration that shipped them.

    Metrics facades that cannot hold span trees (``MetricsTracer``)
    expose ``absorb_fragment`` and get the aggregate counters and
    per-span durations instead.  Returns the host :class:`Span`, or
    ``None`` when nothing was installed.
    """
    if fragment is None or tracer is None:
        return None
    if not isinstance(tracer, Tracer):
        absorb = getattr(tracer, "absorb_fragment", None)
        if absorb is not None:
            absorb(fragment)
        return None
    if anchor_s is None:
        ref = (
            fragment.recv_s
            if fragment.recv_s is not None
            else time.perf_counter()
        )
        anchor_s = ref - fragment.extent_s
    host = Span(name, {"worker_pid": fragment.pid, **attrs})
    host.start_s = anchor_s
    host.end_s = anchor_s + fragment.extent_s
    host.status = "ok"
    if fragment.cache_warmup:
        host.attrs["cache_warmup"] = dict(fragment.cache_warmup)
    host.children = [_revive(p, anchor_s) for p in fragment.spans]
    tracer.attach_closed(host)
    return host


def reconciled_counter_totals(tracer) -> dict[str, int]:
    """Counter totals restricted to the cross-process-comparable set.

    Drops :data:`NONPORTABLE_COUNTERS` (per-process cache warmup) so a
    stitched parallel trace and a serial trace of the same query can be
    compared for byte-identity: serialize both sides with
    ``json.dumps(..., sort_keys=True)`` and assert equality.
    """
    totals: dict[str, int] = {}
    for span in tracer.spans():
        for name, value in span.counters.items():
            if name in NONPORTABLE_COUNTERS:
                continue
            totals[name] = totals.get(name, 0) + value
    return totals
