"""Lightweight tracing for the evaluation hot paths.

Every evaluator in the package accepts an optional ``tracer``; when one
is live it receives nested wall-clock spans (one per fixpoint loop,
rewrite, or strategy run), per-span counters (tuples fetched, index
builds, join fan-out), and per-span *series* (per-iteration delta and
carry sizes) -- the dynamic quantities that
:class:`repro.stats.EvaluationStats` aggregates away.

The default is no tracer at all: hot loops guard every emission with a
single ``tracer is not None`` check, so the untraced path costs one
pointer comparison (see ``tests/observability/test_overhead.py``).
:data:`NULL` is a disabled tracer for callers that prefer passing an
object; :func:`live` normalizes it back to ``None`` at API boundaries.

On top of the tracer sits the telemetry pipeline:

* :mod:`repro.observability.events` -- an :class:`EventSink` protocol
  with ring-buffer, JSONL-file, and fan-out sinks; a tracer built with
  ``Tracer(sink=...)`` streams every span open/close, counter bump and
  per-iteration observation as a schema-versioned event, and
  :func:`replay_trace` rebuilds an equivalent trace from a stored
  stream;
* :mod:`repro.observability.export` -- pure-function exporters over a
  completed (live or replayed) trace: Chrome trace-event JSON and
  Prometheus-style metrics text;
* :mod:`repro.observability.profiler` -- :class:`QueryProfile`, the
  ``EXPLAIN ANALYZE``-style per-query report behind
  :meth:`repro.engine.Engine.profile` and ``repro-datalog profile``.
"""

from .events import (
    EVENT_SCHEMA,
    CompositeSink,
    EventSink,
    JsonlFileSink,
    RingBufferSink,
    read_events,
    replay_file,
    replay_trace,
)
from .export import escape_label_value, to_chrome_trace, to_metrics_text
from .fragments import (
    FRAGMENT_SCHEMA,
    NONPORTABLE_COUNTERS,
    TraceFragment,
    capture_fragment,
    install_fragment,
    reconciled_counter_totals,
)
from .invariants import trace_violations
from .profiler import QueryProfile, RuleRow, rule_rows
from .tracer import NULL, NullTracer, Span, Tracer, live

__all__ = [
    "EVENT_SCHEMA",
    "FRAGMENT_SCHEMA",
    "NONPORTABLE_COUNTERS",
    "CompositeSink",
    "EventSink",
    "JsonlFileSink",
    "NULL",
    "NullTracer",
    "QueryProfile",
    "RingBufferSink",
    "RuleRow",
    "Span",
    "TraceFragment",
    "Tracer",
    "capture_fragment",
    "escape_label_value",
    "install_fragment",
    "live",
    "read_events",
    "replay_file",
    "replay_trace",
    "reconciled_counter_totals",
    "rule_rows",
    "to_chrome_trace",
    "to_metrics_text",
    "trace_violations",
]
