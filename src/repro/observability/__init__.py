"""Lightweight tracing for the evaluation hot paths.

Every evaluator in the package accepts an optional ``tracer``; when one
is live it receives nested wall-clock spans (one per fixpoint loop,
rewrite, or strategy run), per-span counters (tuples fetched, index
builds, join fan-out), and per-span *series* (per-iteration delta and
carry sizes) -- the dynamic quantities that
:class:`repro.stats.EvaluationStats` aggregates away.

The default is no tracer at all: hot loops guard every emission with a
single ``tracer is not None`` check, so the untraced path costs one
pointer comparison (see ``tests/observability/test_overhead.py``).
:data:`NULL` is a disabled tracer for callers that prefer passing an
object; :func:`live` normalizes it back to ``None`` at API boundaries.
"""

from .invariants import trace_violations
from .tracer import NULL, NullTracer, Span, Tracer, live

__all__ = [
    "NULL",
    "NullTracer",
    "Span",
    "Tracer",
    "live",
    "trace_violations",
]
