"""Nested wall-clock spans with counters and per-iteration series.

A :class:`Tracer` records a forest of :class:`Span` objects.  Spans
nest through an explicit stack (``with tracer.span("seminaive.scc")``),
close with a wall-clock duration even when the body raises (the span's
``status`` then records the exception type -- ``BudgetExceeded`` mid
fixpoint must not leak open spans), and carry three kinds of payload:

``attrs``
    Static facts known at open (or close) time: the SCC members, the
    seed size, the relation a carry loop fills.
``counters``
    Monotone tallies bumped while the span is open: ``tuples_examined``
    (mirrors the :class:`~repro.stats.EvaluationStats` counter of the
    same name), ``index_builds``, ``bindings_out``, ``iterations``.
``series``
    Ordered per-iteration observations -- the per-round delta sizes of
    a semi-naive stratum, the per-iteration carry sizes of a Separable
    loop -- that no scalar counter can represent.

Counters bump on the *innermost open* span so nested strategy phases
attribute work to themselves; aggregation over the whole run is
:meth:`Tracer.counter_total`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = ["Span", "Tracer", "NullTracer", "NULL", "live"]


class Span:
    """One timed region of an evaluation, possibly with children."""

    __slots__ = (
        "name",
        "attrs",
        "start_s",
        "end_s",
        "status",
        "counters",
        "series",
        "children",
        "sid",
    )

    def __init__(self, name: str, attrs: dict) -> None:
        self.name = name
        self.attrs = attrs
        self.start_s = time.perf_counter()
        self.end_s: Optional[float] = None
        self.status = "open"
        self.counters: dict[str, int] = {}
        self.series: dict[str, list] = {}
        self.children: list[Span] = []
        #: Stream-unique id, assigned only when a sink is attached.
        self.sid: Optional[int] = None

    @property
    def duration_s(self) -> Optional[float]:
        """Wall-clock seconds, or ``None`` while the span is open."""
        if self.end_s is None:
            return None
        return self.end_s - self.start_s

    @property
    def closed(self) -> bool:
        return self.end_s is not None

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        """JSON-ready representation (used by bench reports and tests)."""
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "duration_s": self.duration_s,
            "status": self.status,
            "counters": dict(self.counters),
            "series": {k: list(v) for k, v in self.series.items()},
            "children": [c.to_dict() for c in self.children],
        }

    def __repr__(self) -> str:
        timing = (
            f"{self.duration_s * 1e3:.3f}ms" if self.closed else "open"
        )
        return f"Span({self.name}, {timing}, {self.status})"


class Tracer:
    """A recording tracer.  Not thread-safe; use one per evaluation.

    An optional ``sink`` (see :mod:`repro.observability.events`)
    additionally receives every state change as a structured event the
    moment it is recorded; ``context`` is an arbitrary dict (query id,
    strategy, ...) stamped into the stream's leading ``trace_start``
    record.  Without a sink the tracer behaves exactly as before: the
    emission paths are guarded by a single ``self._sink is not None``
    check, so in-memory-only tracing pays nothing for the event layer.
    """

    enabled = True

    def __init__(self, sink=None, context: Optional[dict] = None) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self._sink = sink
        self._next_sid = 0
        self.context: dict = dict(context or {})
        if sink is not None:
            from .events import EVENT_SCHEMA

            sink.emit(
                {
                    "type": "trace_start",
                    "schema": EVENT_SCHEMA,
                    "context": dict(self.context),
                }
            )

    @property
    def sink(self):
        """The attached event sink, or ``None``."""
        return self._sink

    # -- span lifecycle ----------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span]:
        """Open a nested span; always closes it, recording exceptions."""
        s = Span(name, attrs)
        parent = self._stack[-1] if self._stack else None
        if parent is not None:
            parent.children.append(s)
        else:
            self.roots.append(s)
        self._stack.append(s)
        if self._sink is not None:
            self._emit_open(s, parent)
        try:
            yield s
        except BaseException as exc:
            s.status = type(exc).__name__
            raise
        else:
            s.status = "ok"
        finally:
            s.end_s = time.perf_counter()
            self._stack.pop()
            if self._sink is not None:
                # Counter totals ride on the close event rather than as
                # one event per bump: bumps happen per tuple in the hot
                # join loops, and per-bump emission would make a file
                # sink cost a json.dumps per tuple.
                self._sink.emit(
                    {
                        "type": "span_close",
                        "sid": s.sid,
                        "t": s.end_s,
                        "status": s.status,
                        "attrs": dict(s.attrs),
                        "counters": dict(s.counters),
                    }
                )

    def _emit_open(self, s: Span, parent: Optional[Span]) -> None:
        s.sid = self._next_sid
        self._next_sid += 1
        self._sink.emit(
            {
                "type": "span_open",
                "sid": s.sid,
                "parent": parent.sid if parent is not None else None,
                "name": s.name,
                "t": s.start_s,
                "attrs": dict(s.attrs),
            }
        )

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, or ``None`` outside any span."""
        return self._stack[-1] if self._stack else None

    def attach_closed(self, span: Span) -> Span:
        """Graft an already-closed span subtree into this trace.

        Trace stitching (:mod:`repro.observability.fragments`) revives
        span trees recorded by worker processes and installs them under
        whatever span is open on the parent at install time (or as a new
        root).  The subtree must be fully closed: grafting never touches
        the open-span stack, so counters keep attributing to the
        parent's own innermost span.

        When a sink is attached, the grafted subtree is emitted as the
        same ``span_open``/``series``/``span_close`` records live spans
        produce -- parents before children, children closed before
        parents -- with fresh stream ids, so replaying the event log
        reconstructs the stitched forest byte-identically.
        """
        for s in span.walk():
            if s.end_s is None:
                raise ValueError(
                    f"attach_closed requires a closed subtree; "
                    f"span {s.name!r} is open"
                )
        parent = self._stack[-1] if self._stack else None
        if parent is not None:
            parent.children.append(span)
        else:
            self.roots.append(span)
        if self._sink is not None:
            self._emit_closed(span, parent)
        return span

    def _emit_closed(self, s: Span, parent: Optional[Span]) -> None:
        s.sid = self._next_sid
        self._next_sid += 1
        self._sink.emit(
            {
                "type": "span_open",
                "sid": s.sid,
                "parent": parent.sid if parent is not None else None,
                "name": s.name,
                "t": s.start_s,
                "attrs": dict(s.attrs),
            }
        )
        for name, values in s.series.items():
            for value in values:
                self._sink.emit(
                    {
                        "type": "series",
                        "sid": s.sid,
                        "name": name,
                        "value": value,
                    }
                )
        for child in s.children:
            self._emit_closed(child, s)
        self._sink.emit(
            {
                "type": "span_close",
                "sid": s.sid,
                "t": s.end_s,
                "status": s.status,
                "attrs": dict(s.attrs),
                "counters": dict(s.counters),
            }
        )

    # -- payload -----------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        """Bump a counter on the innermost open span.

        Counts emitted outside any span are collected on an implicit
        root span named ``(toplevel)`` so they are never lost.
        """
        target = self._stack[-1] if self._stack else self._toplevel()
        target.counters[name] = target.counters.get(name, 0) + n
        if self._sink is not None and target.end_s is not None:
            # Open spans carry their totals on span_close; only the
            # implicit (toplevel) span is already closed when counts
            # land on it, so those bumps stream individually.
            self._sink.emit(
                {"type": "count", "sid": target.sid, "name": name, "n": n}
            )

    def record(self, name: str, value) -> None:
        """Append one observation to a series on the innermost span."""
        target = self._stack[-1] if self._stack else self._toplevel()
        target.series.setdefault(name, []).append(value)
        if self._sink is not None:
            self._sink.emit(
                {
                    "type": "series",
                    "sid": target.sid,
                    "name": name,
                    "value": value,
                }
            )

    def _toplevel(self) -> Span:
        if self.roots and self.roots[0].name == "(toplevel)":
            return self.roots[0]
        s = Span("(toplevel)", {})
        s.end_s = s.start_s
        s.status = "ok"
        self.roots.insert(0, s)
        if self._sink is not None:
            self._emit_open(s, None)
            self._sink.emit(
                {
                    "type": "span_close",
                    "sid": s.sid,
                    "t": s.end_s,
                    "status": s.status,
                    "attrs": {},
                }
            )
        return s

    # -- inspection --------------------------------------------------------

    def spans(self, name: Optional[str] = None) -> Iterator[Span]:
        """Every recorded span (depth first), optionally filtered by name."""
        for root in self.roots:
            for s in root.walk():
                if name is None or s.name == name:
                    yield s

    def counter_total(self, name: str) -> int:
        """Sum of one counter over every span in the trace."""
        return sum(s.counters.get(name, 0) for s in self.spans())

    def all_closed(self) -> bool:
        """True when no span is left open (exception safety check)."""
        return not self._stack and all(
            s.closed for s in self.spans()
        )

    def to_dict(self) -> dict:
        return {"spans": [s.to_dict() for s in self.roots]}

    def format_tree(self) -> str:
        """An indented human-readable rendering of the span forest."""
        lines: list[str] = []

        def emit(s: Span, depth: int) -> None:
            timing = (
                f"{s.duration_s * 1e3:9.3f}ms" if s.closed else "     open"
            )
            counters = " ".join(
                f"{k}={v}" for k, v in sorted(s.counters.items())
            )
            series = " ".join(
                f"{k}={v}" for k, v in sorted(s.series.items())
            )
            detail = " ".join(x for x in (counters, series) if x)
            lines.append(
                f"{timing}  {'  ' * depth}{s.name}"
                + (f"  [{detail}]" if detail else "")
            )
            for child in s.children:
                emit(child, depth + 1)

        for root in self.roots:
            emit(root, 0)
        return "\n".join(lines)


class NullTracer:
    """A disabled tracer: every operation is a no-op.

    Exists so call sites may unconditionally hold a tracer object;
    evaluator entry points normalize it to ``None`` via :func:`live`,
    keeping the hot loops on the single ``is not None`` guard.
    """

    enabled = False

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[None]:
        yield None

    def count(self, name: str, n: int = 1) -> None:
        pass

    def record(self, name: str, value) -> None:
        pass

    def counter_total(self, name: str) -> int:
        return 0

    def spans(self, name: Optional[str] = None):
        return iter(())

    def all_closed(self) -> bool:
        return True

    def to_dict(self) -> dict:
        return {"spans": []}


#: The shared disabled tracer.
NULL = NullTracer()


def live(tracer) -> Optional[Tracer]:
    """Normalize a tracer argument: ``None`` unless recording is on.

    Evaluator entry points call this once so their inner loops only pay
    an ``is not None`` check, whether the caller passed ``None``,
    :data:`NULL`, or a real :class:`Tracer`.
    """
    if tracer is None or not getattr(tracer, "enabled", False):
        return None
    return tracer
