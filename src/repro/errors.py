"""Exception hierarchy for the Datalog substrate and the evaluation strategies.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch a single base class.  More specific subclasses carry
structured context (offending rule, predicate, position in source text)
where that helps diagnose a problem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class DatalogSyntaxError(ReproError):
    """Raised by the parser on malformed program text.

    Attributes
    ----------
    line, column:
        1-based position of the offending token in the source text, when
        known; ``None`` otherwise.
    """

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None) -> None:
        self.line = line
        self.column = column
        if line is not None:
            message = f"line {line}, column {column}: {message}"
        super().__init__(message)


class ArityError(ReproError):
    """A predicate was used with two different arities."""


class SafetyError(ReproError):
    """A rule is unsafe: some head variable does not occur in its body."""


class NotLinearError(ReproError):
    """A rule or program is not linear recursive where linearity is required."""


class NotSeparableError(ReproError):
    """A recursion failed one of the four conditions of Definition 2.4.

    The :attr:`report` attribute (when present) is the full
    :class:`repro.core.detection.SeparabilityReport` explaining which
    conditions failed and why.
    """

    def __init__(self, message: str, report: object | None = None) -> None:
        self.report = report
        super().__init__(message)


class NotFullSelectionError(ReproError):
    """A query is not a full selection (Definition 2.7) where one is required."""


class UnknownPredicateError(ReproError):
    """A query or rule referenced a predicate that is neither IDB nor EDB."""


class EvaluationError(ReproError):
    """Generic failure during bottom-up evaluation."""


class BudgetExceeded(EvaluationError):
    """An evaluation exceeded one of its budget limits.

    Used to stop the exponential baselines (Generalized Counting, the
    Henschen-Naqvi-style levelwise method) gracefully in benchmarks, and
    by the query service to enforce per-request deadlines.

    Attributes
    ----------
    stats:
        The partially accumulated :class:`repro.stats.EvaluationStats`.
        When the trip happened inside a Lemma 2.1 union evaluation this
        is the *merged* accumulator over every already-completed full
        selection, not just the failing branch.
    limit:
        Which limit tripped: ``"relation_tuples"``, ``"total_tuples"``,
        ``"iterations"`` or ``"wall_clock"`` (``None`` for callers that
        raise without tagging).  ``"wall_clock"`` trips are the only
        ones worth retrying -- every other limit is deterministic.
    partial:
        Answers from completed union branches, when the evaluation can
        degrade gracefully (``None`` when nothing was completed or the
        strategy cannot produce partial answers).
    """

    def __init__(
        self,
        message: str,
        stats: object | None = None,
        limit: str | None = None,
        partial: frozenset | None = None,
    ) -> None:
        self.stats = stats
        self.limit = limit
        self.partial = partial
        super().__init__(message)

    def __reduce__(self):
        # The default Exception reduction replays ``args`` only, which
        # would drop the structured context when the exception crosses a
        # process boundary (parallel workers re-raise budget trips in
        # the parent, which needs ``stats``/``limit``/``partial`` to
        # merge and degrade gracefully).
        return (
            _rebuild_budget_exceeded,
            (self.args, self.stats, self.limit, self.partial),
        )

    @property
    def retryable(self) -> bool:
        """True when retrying might succeed (wall-clock contention)."""
        return self.limit == "wall_clock"


def _rebuild_budget_exceeded(
    args: tuple, stats: object | None, limit: str | None,
    partial: frozenset | None,
) -> "BudgetExceeded":
    exc = BudgetExceeded(
        args[0] if args else "", stats=stats, limit=limit, partial=partial
    )
    exc.args = args
    return exc


class CyclicDataError(EvaluationError):
    """A method that requires acyclic data detected a cycle.

    The paper notes that both the Henschen-Naqvi algorithm and the
    Counting method fail on cyclic data; we surface that failure as this
    exception rather than looping forever.
    """

    def __init__(self, message: str, stats: object | None = None) -> None:
        self.stats = stats
        super().__init__(message)
