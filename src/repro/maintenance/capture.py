"""Net per-relation delta capture over database mutation observers.

A :class:`DeltaCapture` subscribes to every relation of a
:class:`~repro.datalog.database.Database` and folds the observed
``(fact, sign)`` events into *net* insert/delete sets per relation:
inserting a fact that was deleted earlier in the same capture cancels
the delete (and vice versa), so replaying the net deltas from the
pre-capture state reproduces the post-capture state exactly.  The
cancellation is sound because relation membership strictly alternates
-- :meth:`Relation.add` only fires the observer for a genuinely new
fact and :meth:`Relation.discard` only for a genuinely present one.

Events a delta cannot express -- a :meth:`Relation.clear`, a foreign
relation mounted via :meth:`Database.attach`, or a write to a relation
the caller declared off-limits (``guard_predicates``, typically the IDB
names) -- set :attr:`overflow`, telling the consumer to fall back to a
full rebuild.
"""

from __future__ import annotations

from typing import Iterable

from ..datalog.database import Database, Fact

__all__ = ["DeltaCapture"]


class DeltaCapture:
    """Capture net insert/delete sets for mutations of ``db``.

    Usable as a context manager; :meth:`detach` (or ``__exit__``)
    unsubscribes.  ``guard_predicates`` names relations whose direct
    mutation invalidates delta semantics (the service passes its IDB
    predicate names: a base-table delta protocol cannot describe a
    direct write to a derived relation).
    """

    def __init__(self, db: Database,
                 guard_predicates: Iterable[str] = ()) -> None:
        self._db = db
        self._guard = frozenset(guard_predicates)
        self.overflow = False
        self._inserted: dict[str, set[Fact]] = {}
        self._deleted: dict[str, set[Fact]] = {}
        self._mounts: dict[int, tuple[str, ...]] = {}
        self._refresh_mounts()
        db.observe(self._on_event)

    def _refresh_mounts(self) -> None:
        # Deltas are keyed on the *mount* name, not ``relation.name``:
        # a relation alias-mounted under a different predicate before
        # capture started must record its deltas under the name the
        # maintenance layer will repair, or not at all.
        mounts: dict[int, list[str]] = {}
        for name in self._db.predicates():
            rel = self._db.relation(name)
            mounts.setdefault(id(rel), []).append(name)
        self._mounts = {k: tuple(v) for k, v in mounts.items()}

    def _on_event(self, relation, fact, sign) -> None:
        if sign == 0:
            self.overflow = True
            return
        names = self._mounts.get(id(relation))
        if names is None:
            # Relation created (via ensure/add_fact) after capture
            # started: pick up the new mount table once.
            self._refresh_mounts()
            names = self._mounts.get(id(relation))
        if names is None or len(names) != 1:
            # Unmounted, or alias-mounted under several predicates --
            # one event would have to stand for several per-predicate
            # deltas, which the net-delta protocol cannot express.
            self.overflow = True
            return
        name = names[0]
        if name in self._guard:
            self.overflow = True
            return
        ins = self._inserted.setdefault(name, set())
        dels = self._deleted.setdefault(name, set())
        if sign > 0:
            if fact in dels:
                dels.discard(fact)
            else:
                ins.add(fact)
        else:
            if fact in ins:
                ins.discard(fact)
            else:
                dels.add(fact)

    def detach(self) -> None:
        """Stop observing; captured deltas remain readable."""
        self._db.unobserve(self._on_event)

    def __enter__(self) -> "DeltaCapture":
        return self

    def __exit__(self, *exc) -> None:
        self.detach()

    @property
    def touched(self) -> bool:
        """True if any effective mutation (or an overflow) was seen."""
        return self.overflow or bool(self.net())

    def net(self) -> dict[str, tuple[frozenset[Fact], frozenset[Fact]]]:
        """``{relation: (inserted, deleted)}``, empty relations dropped."""
        out: dict[str, tuple[frozenset[Fact], frozenset[Fact]]] = {}
        for name in set(self._inserted) | set(self._deleted):
            ins = frozenset(self._inserted.get(name, ()))
            dels = frozenset(self._deleted.get(name, ()))
            if ins or dels:
                out[name] = (ins, dels)
        return out
