"""A materialized IDB kept consistent under base-relation deltas.

:class:`MaintainedView` owns a database holding the EDB plus the least
fixpoint of every IDB predicate, together with an exact derivation
count per derived fact (the number of distinct rule-body substitutions
producing it).  :meth:`MaintainedView.apply` repairs both under a net
batch of base inserts and deletes:

Deletions (DRed, delete-and-rederive)
    Overestimate the damage bottom-up per SCC: a derived fact joins the
    overestimate ``D`` as soon as *one* derivation uses a deleted or
    overestimated tuple, with every delta join running against the
    untouched original database (so derivations using two deleted
    tuples are still seen).  Remove the base deletes and all of ``D``,
    then rederive: bottom-up per SCC, repeatedly re-add any removed
    fact that still has a derivation in the current database, until no
    candidate fires.  Survivors on a cycle come back exactly when they
    keep outside support.

Insertions (delta-seeded restart)
    Install the base inserts, then per SCC seed the semi-naive fixpoint
    with the heads of delta joins against the changed lower predicates
    and restart it via ``seminaive_stratum(..., initial_deltas=...)``
    -- round zero's full evaluation is skipped because the database is
    already a fixpoint except for those seeds.

Counting (recount the affected set)
    The facts whose derivation count can have changed are exactly
    ``D`` (every lost derivation passes through a deleted tuple) plus
    the heads of delta joins seeded by the inserted facts against the
    final database (every gained derivation uses an inserted tuple,
    because the old database was already a fixpoint).  Each affected
    fact gets a fresh head-bound recount, so counts stay *exact* --
    the property suite checks them against a from-scratch oracle.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..datalog.atoms import Atom
from ..datalog.database import Database, Fact, Relation
from ..datalog.joins import evaluate_body, evaluate_body_project
from ..datalog.programs import Program
from ..datalog.rules import Rule
from ..datalog.seminaive import seminaive_evaluate, seminaive_stratum
from ..datalog.terms import Constant

__all__ = ["MaintainedView"]

#: Delta relations mounted for maintenance joins; the hat distinguishes
#: them from the semi-naive evaluator's own "Δ" views.
_DELTA_PREFIX = "Δ̂"

Delta = Mapping[str, tuple[frozenset, frozenset]]


class MaintainedView:
    """Materialized IDB + derivation counts, maintained under deltas."""

    def __init__(self, program: Program, edb: Database,
                 order: str = "greedy") -> None:
        self.program = program
        self.order = order
        self.idb = program.idb_predicates
        self._scc_rules = [
            (scc, [r for r in program.rules if r.head.predicate in scc])
            for scc in program.evaluation_order
        ]
        self.rebuild(edb)

    # -- construction ------------------------------------------------------

    def rebuild(self, edb: Database) -> None:
        """Recompute the view from scratch (the overflow fallback)."""
        self.db = seminaive_evaluate(self.program, edb, order=self.order)
        self.counts: dict[str, dict[Fact, int]] = {}
        for pred in self.idb:
            per: dict[Fact, int] = {}
            rel = self.db.relation(pred)
            if rel is not None:
                for fact in rel:
                    per[fact] = self._recount(pred, fact)
            self.counts[pred] = per

    def count(self, pred: str, fact: Fact) -> int:
        """Derivation count of ``fact`` (0 if not derived)."""
        return self.counts.get(pred, {}).get(tuple(fact), 0)

    # -- derivation counting ----------------------------------------------

    @staticmethod
    def _head_bindings(rule: Rule, fact: Fact):
        """Bindings unifying the rule head with ``fact`` (None: no match)."""
        bindings: dict = {}
        for term, value in zip(rule.head.args, fact):
            if isinstance(term, Constant):
                if term.value != value:
                    return None
            elif bindings.setdefault(term, value) != value:
                return None
        return bindings

    def _recount(self, pred: str, fact: Fact) -> int:
        total = 0
        for rule in self.program.rules_for(pred):
            init = self._head_bindings(rule, fact)
            if init is None:
                continue
            for _ in evaluate_body(self.db, rule.body,
                                   initial_bindings=init,
                                   order=self.order):
                total += 1
        return total

    def _derivable(self, pred: str, fact: Fact) -> bool:
        for rule in self.program.rules_for(pred):
            init = self._head_bindings(rule, fact)
            if init is None:
                continue
            for _ in evaluate_body(self.db, rule.body,
                                   initial_bindings=init,
                                   order=self.order):
                return True
        return False

    # -- delta joins -------------------------------------------------------

    def _delta_join_heads(
        self, rules: Iterable[Rule], changed: Mapping[str, set]
    ) -> dict[str, set[Fact]]:
        """Rule heads derivable with one body atom restricted to a delta.

        One evaluation per (rule, occurrence of a changed predicate),
        the delta occurrence reading the changed facts and every other
        atom reading the current database -- the standard semi-naive
        delta join, reused for the DRed overestimate, the insert seeds,
        and the gained-derivation candidates.
        """
        changed = {n: facts for n, facts in changed.items() if facts}
        if not changed:
            return {}
        view = Database()
        for name in self.db.predicates():
            rel = self.db.relation(name)
            assert rel is not None
            view.attach(rel, name)
        delta_names: dict[str, str] = {}
        for name, facts in changed.items():
            arity = len(next(iter(facts)))
            delta_name = _DELTA_PREFIX + name
            view.attach(Relation(delta_name, arity, facts), delta_name)
            delta_names[name] = delta_name
        heads: dict[str, set[Fact]] = {}
        for r in rules:
            for i, a in enumerate(r.body):
                delta_name = delta_names.get(a.predicate)
                if delta_name is None:
                    continue
                body = (r.body[:i]
                        + (Atom(delta_name, a.args),)
                        + r.body[i + 1:])
                out = heads.setdefault(r.head.predicate, set())
                for fact in evaluate_body_project(view, body, r.head.args,
                                                  order=self.order):
                    out.add(fact)
        return heads

    # -- maintenance -------------------------------------------------------

    def apply(self, deltas: Delta) -> dict[str, tuple[frozenset, frozenset]]:
        """Apply net base deltas; returns net IDB changes per predicate.

        ``deltas`` maps base relation names to ``(inserted, deleted)``
        fact sets, as produced by
        :meth:`repro.maintenance.capture.DeltaCapture.net`.  Deltas
        naming an IDB predicate are rejected -- derived relations are
        owned by the view.
        """
        eff_ins: dict[str, set[Fact]] = {}
        eff_dels: dict[str, set[Fact]] = {}
        for name, (ins, dels) in deltas.items():
            if name in self.idb:
                raise ValueError(
                    f"delta for derived predicate {name!r}; incremental "
                    f"maintenance only accepts base-relation deltas"
                )
            rel = self.db.relation(name)
            present = {tuple(f) for f in dels
                       if rel is not None and tuple(f) in rel}
            absent = {tuple(f) for f in ins
                      if rel is None or tuple(f) not in rel}
            if present:
                eff_dels[name] = present
            if absent:
                eff_ins[name] = absent

        # Per IDB fact we ever add or remove: was it present at entry?
        # Comparing against presence at exit yields the net IDB delta.
        touched: dict[str, dict[Fact, bool]] = {p: {} for p in self.idb}

        if eff_dels:
            self._apply_deletions(eff_dels, touched)
        inserted = self._apply_insertions(eff_ins, touched) if eff_ins \
            else {}

        # Recount the affected set: everything removed or added along
        # the way, plus heads gaining a derivation through an inserted
        # fact (delta join against the *final* database).
        gains = self._delta_join_heads(self.program.rules, inserted)
        for pred in self.idb:
            affected = set(touched[pred]) | gains.get(pred, set())
            if not affected:
                continue
            rel = self.db.relation(pred)
            per = self.counts.setdefault(pred, {})
            for fact in affected:
                if rel is not None and fact in rel:
                    per[fact] = self._recount(pred, fact)
                else:
                    per.pop(fact, None)

        result: dict[str, tuple[frozenset, frozenset]] = {}
        for pred in self.idb:
            rel = self.db.relation(pred)
            added: set[Fact] = set()
            removed: set[Fact] = set()
            for fact, was_present in touched[pred].items():
                now_present = rel is not None and fact in rel
                if was_present and not now_present:
                    removed.add(fact)
                elif now_present and not was_present:
                    added.add(fact)
            if added or removed:
                result[pred] = (frozenset(added), frozenset(removed))
        return result

    def _apply_deletions(self, dels: Mapping[str, set[Fact]],
                         touched: dict[str, dict[Fact, bool]]) -> None:
        # Overestimate bottom-up per SCC against the original database.
        over: dict[str, set[Fact]] = {p: set() for p in self.idb}
        visible: dict[str, set[Fact]] = {n: set(f) for n, f in dels.items()}
        for scc, rules in self._scc_rules:
            frontier: Mapping[str, set[Fact]] = visible
            while True:
                heads = self._delta_join_heads(rules, frontier)
                fresh: dict[str, set[Fact]] = {}
                for pred, facts in heads.items():
                    rel = self.db.relation(pred)
                    if rel is None:
                        continue
                    new = {f for f in facts
                           if f in rel and f not in over[pred]}
                    if new:
                        over[pred] |= new
                        fresh[pred] = new
                if not fresh:
                    break
                # Later rounds only need the facts that just joined D:
                # lower deltas were exhausted in the first round.
                frontier = fresh
            for pred in scc:
                if over.get(pred):
                    visible[pred] = over[pred]

        # Remove the base deletes and the whole overestimate.
        for name, facts in dels.items():
            rel = self.db.relation(name)
            if rel is not None:
                rel.discard_all(facts)
        for pred, facts in over.items():
            if not facts:
                continue
            rel = self.db.relation(pred)
            per = self.counts.setdefault(pred, {})
            for fact in facts:
                rel.discard(fact)
                per.pop(fact, None)
                touched[pred].setdefault(fact, True)

        # Rederive survivors bottom-up per SCC: re-add any removed fact
        # that still has a derivation, until no candidate fires.
        for scc, _rules in self._scc_rules:
            pool = [(p, f) for p in scc for f in over.get(p, ())]
            changed = True
            while changed and pool:
                changed = False
                remaining = []
                for pred, fact in pool:
                    if self._derivable(pred, fact):
                        self.db.relation(pred).add(fact)
                        changed = True
                    else:
                        remaining.append((pred, fact))
                pool = remaining

    def _apply_insertions(
        self, ins: Mapping[str, set[Fact]],
        touched: dict[str, dict[Fact, bool]],
    ) -> dict[str, set[Fact]]:
        """Install base inserts, propagate; returns all inserted facts."""
        for name, facts in ins.items():
            arity = len(next(iter(facts)))
            self.db.ensure(name, arity).add_all(facts)
        changed: dict[str, set[Fact]] = {n: set(f) for n, f in ins.items()}
        for scc, rules in self._scc_rules:
            for pred in scc:
                self.db.ensure(pred, self.program.arity(pred))
            lower = {n: f for n, f in changed.items() if n not in scc}
            seed_heads = self._delta_join_heads(rules, lower)
            seeds: dict[str, set[Fact]] = {}
            for pred in scc:
                rel = self.db.relation(pred)
                seeds[pred] = {f for f in seed_heads.get(pred, ())
                               if f not in rel}
            if not any(seeds.values()):
                continue
            added: dict[str, set[Fact]] = {p: set() for p in scc}

            def collect(relation, fact, sign, _added=added):
                if sign > 0:
                    _added[relation.name].add(fact)

            for pred in scc:
                self.db.relation(pred).observe(collect)
            try:
                seminaive_stratum(rules, scc, self.db, self.program,
                                  order=self.order, initial_deltas=seeds)
            finally:
                for pred in scc:
                    self.db.relation(pred).unobserve(collect)
            for pred, facts in added.items():
                if facts:
                    changed.setdefault(pred, set()).update(facts)
                    per = touched[pred]
                    for fact in facts:
                        per.setdefault(fact, False)
        return changed
