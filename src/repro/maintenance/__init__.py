"""Incremental view maintenance: delta capture + maintained IDB state.

:class:`DeltaCapture` turns raw :class:`~repro.datalog.database.Relation`
mutations (observed at ``version`` granularity) into net per-relation
insert/delete sets; :class:`MaintainedView` repairs a materialized IDB
under those deltas -- counting-based insert maintenance through a
delta-seeded semi-naive restart, DRed-style delete/rederive for
deletions -- instead of re-running the fixpoint from scratch.  See
``docs/incremental.md`` for the algorithm and its limits.
"""

from .capture import DeltaCapture
from .view import MaintainedView

__all__ = ["DeltaCapture", "MaintainedView"]
