"""The paper's contribution: separable recursions, detection, compilation.

* :mod:`analysis` -- ``t^h_i`` / ``t^b_i``, equivalence classes,
  ``t|pers`` (the structure behind Definition 2.4);
* :mod:`detection` -- the four-condition separability test with
  diagnostics (Section 3.1);
* :mod:`selections` -- full selections (Definition 2.7);
* :mod:`rewrite` -- the Lemma 2.1 ``t_full`` / ``t_part`` rewrite;
* :mod:`plan` / :mod:`compiler` -- the Figure 2 schema and its
  instantiation (Section 3.3);
* :mod:`evaluator` -- the carry/seen loops;
* :mod:`provenance` -- answer justifications ``J(a)`` (Section 3.4);
* :mod:`api` -- the one-call facade :func:`evaluate_separable`.
"""

from .analysis import (
    EquivalenceClass,
    RecursionAnalysis,
    RuleAnalysis,
    analyze_definition,
    analyze_rule,
)
from .api import evaluate_separable
from .compiler import compile_plan, compile_selection
from .detection import (
    ConditionResult,
    SeparabilityReport,
    analyze_recursion,
    is_separable,
    require_separable,
)
from .evaluator import execute_plan
from .plan import CARRY, SEEN, CarryJoin, SeparablePlan
from .provenance import (
    Justification,
    Trace,
    execute_plan_traced,
    explain,
    justify,
)
from .rewrite import (
    choose_rewrite_class,
    program_without_class,
    rewrite_partial_selection,
)
from .selections import Selection, classify_selection

__all__ = [
    "EquivalenceClass",
    "RecursionAnalysis",
    "RuleAnalysis",
    "analyze_definition",
    "analyze_rule",
    "evaluate_separable",
    "compile_plan",
    "compile_selection",
    "ConditionResult",
    "SeparabilityReport",
    "analyze_recursion",
    "is_separable",
    "require_separable",
    "execute_plan",
    "CARRY",
    "SEEN",
    "CarryJoin",
    "SeparablePlan",
    "Justification",
    "Trace",
    "execute_plan_traced",
    "explain",
    "justify",
    "choose_rewrite_class",
    "program_without_class",
    "rewrite_partial_selection",
    "Selection",
    "classify_selection",
]
