"""Separability detection (Definition 2.4 + Section 3.1).

:func:`analyze_recursion` checks, for the definition of one recursive
predicate,

* the structural prerequisites the paper fixes before Definition 2.4
  (function-free rules, linear recursion, safety, no mutual recursion
  with the predicate, variables-only recursive body instance), and
* the four conditions of Definition 2.4 (no shifting variables;
  ``t^h_i = t^b_i``; pairwise equal-or-disjoint touched positions; one
  maximal connected set of nonrecursive subgoals),

and returns a :class:`SeparabilityReport` with a per-condition verdict
and human-readable diagnostics.  As Section 3.1 stresses, all of this is
polynomial in the *rules* -- the database is never consulted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..datalog.errors import NotLinearError, NotSeparableError, SafetyError
from ..datalog.programs import Definition, Program
from ..datalog.rules import Rule
from ..datalog.terms import Constant, Variable
from .analysis import (
    EquivalenceClass,
    RecursionAnalysis,
    RuleAnalysis,
    analyze_definition,
    build_classes,
)

__all__ = [
    "ConditionResult",
    "SeparabilityReport",
    "analyze_recursion",
    "is_separable",
    "require_separable",
]


@dataclass(frozen=True)
class ConditionResult:
    """Outcome of one numbered condition of Definition 2.4."""

    number: int
    description: str
    holds: bool
    violations: tuple[str, ...] = ()

    def __str__(self) -> str:
        status = "holds" if self.holds else "FAILS"
        text = f"condition {self.number} ({self.description}): {status}"
        for v in self.violations:
            text += f"\n    - {v}"
        return text


@dataclass(frozen=True)
class SeparabilityReport:
    """Full verdict on one recursive definition.

    ``analysis`` is populated only when ``separable`` is True; it carries
    everything the compiler needs (rectified rules, classes, ``t|pers``).
    ``prerequisites`` lists failures of the paper's standing assumptions
    (linearity, safety, no mutual recursion) that make the four
    conditions moot.
    """

    predicate: str
    separable: bool
    prerequisites: tuple[str, ...]
    conditions: tuple[ConditionResult, ...]
    analysis: RecursionAnalysis | None = None

    @property
    def equivalence_class_count(self) -> int:
        return len(self.analysis.classes) if self.analysis else 0

    @property
    def separable_up_to_condition_4(self) -> bool:
        """Conditions 1-3 hold (Condition 4 may fail).

        Section 5 of the paper: removing Condition 4 keeps the
        evaluation algorithm *correct* but loses the focusing effect of
        the selection constant.  When this is true, ``analysis`` is
        populated and the relaxed evaluation mode can run.
        """
        return self.analysis is not None

    def explain(self) -> str:
        """A multi-line human-readable explanation of the verdict."""
        lines = [
            f"predicate {self.predicate}: "
            + ("separable" if self.separable else "NOT separable")
        ]
        for p in self.prerequisites:
            lines.append(f"  prerequisite failed: {p}")
        for c in self.conditions:
            lines.append("  " + str(c).replace("\n", "\n  "))
        if self.analysis is not None:
            for cls in self.analysis.classes:
                cols = ", ".join(str(p + 1) for p in cls.positions)
                rules = ", ".join(
                    f"r{r + 1}" for r in cls.rule_indices
                )
                lines.append(
                    f"  e_{cls.index}: columns {{{cols}}} rules {{{rules}}}"
                )
            pers = ", ".join(
                str(p + 1) for p in self.analysis.pers_positions
            )
            lines.append(f"  t|pers: columns {{{pers or 'none'}}}")
        return "\n".join(lines)


def _check_prerequisites(
    program: Program, definition: Definition
) -> list[str]:
    """The paper's standing assumptions from Section 2."""
    problems: list[str] = []
    predicate = definition.predicate

    for r in definition.rules:
        try:
            r.check_safety()
        except SafetyError as exc:
            problems.append(str(exc))

    for r in definition.recursive_rules:
        if not r.is_linear_in(predicate):
            problems.append(
                f"rule {r} mentions {predicate} more than once in its "
                f"body (not linear recursive)"
            )
    if not definition.exit_rules:
        problems.append(
            f"{predicate} has no nonrecursive (exit) rule; its extent "
            f"is empty and the recursion is degenerate"
        )

    mutual = program.mutually_recursive_with(predicate)
    if mutual:
        names = ", ".join(sorted(mutual))
        problems.append(
            f"{predicate} is mutually recursive with {names}; the paper "
            f"requires base predicates not to depend on {predicate}"
        )

    for r in definition.recursive_rules:
        if not r.is_linear_in(predicate):
            continue
        recursive = r.recursive_atom(predicate)
        if recursive is not None and any(
            isinstance(t, Constant) for t in recursive.args
        ):
            problems.append(
                f"rule {r} has a constant in its recursive body instance "
                f"{recursive}; such rules fail Condition 2 or safety and "
                f"are rejected up front"
            )
    return problems


def _condition_1(analyses: tuple[RuleAnalysis, ...]) -> ConditionResult:
    violations: list[str] = []
    for a in analyses:
        for var, head_pos, body_pos in a.shifting:
            violations.append(
                f"rule r{a.index + 1} ({a.rule}): variable {var} shifts "
                f"from head position {head_pos + 1} to body position "
                f"{body_pos + 1}"
            )
    return ConditionResult(
        1, "no shifting variables", not violations, tuple(violations)
    )


def _condition_2(analyses: tuple[RuleAnalysis, ...]) -> ConditionResult:
    violations: list[str] = []
    for a in analyses:
        if not a.touched_agree:
            head = {p + 1 for p in a.touched_head}
            body = {p + 1 for p in a.touched_body}
            violations.append(
                f"rule r{a.index + 1} ({a.rule}): t^h = {sorted(head)} "
                f"but t^b = {sorted(body)}"
            )
    return ConditionResult(
        2, "t^h_i = t^b_i for every rule", not violations, tuple(violations)
    )


def _condition_3(analyses: tuple[RuleAnalysis, ...]) -> ConditionResult:
    violations: list[str] = []
    informative = [a for a in analyses if not a.is_redundant]
    for i, a in enumerate(informative):
        for b in informative[i + 1:]:
            sa, sb = set(a.touched_head), set(b.touched_head)
            if sa != sb and (sa & sb):
                violations.append(
                    f"rules r{a.index + 1} and r{b.index + 1}: touched "
                    f"positions {sorted(p + 1 for p in sa)} and "
                    f"{sorted(p + 1 for p in sb)} are neither equal nor "
                    f"disjoint"
                )
    return ConditionResult(
        3,
        "touched position sets pairwise equal or disjoint",
        not violations,
        tuple(violations),
    )


def _condition_4(analyses: tuple[RuleAnalysis, ...]) -> ConditionResult:
    violations: list[str] = []
    for a in analyses:
        if a.connected_component_count != 1:
            if a.connected_component_count == 0:
                violations.append(
                    f"rule r{a.index + 1} ({a.rule}): no nonrecursive "
                    f"subgoals remain after removing the recursive atom"
                )
            else:
                violations.append(
                    f"rule r{a.index + 1} ({a.rule}): nonrecursive "
                    f"subgoals form {a.connected_component_count} maximal "
                    f"connected sets (need exactly 1)"
                )
    return ConditionResult(
        4,
        "nonrecursive subgoals form one maximal connected set",
        not violations,
        tuple(violations),
    )


def analyze_recursion(
    program: Program, predicate: str
) -> SeparabilityReport:
    """Run the full Definition 2.4 check on one predicate's definition."""
    definition = program.definition(predicate)
    prerequisites = _check_prerequisites(program, definition)
    if prerequisites:
        return SeparabilityReport(
            predicate=predicate,
            separable=False,
            prerequisites=tuple(prerequisites),
            conditions=(),
        )

    rec_rules, exit_rules, analyses = analyze_definition(definition)
    conditions = (
        _condition_1(analyses),
        _condition_2(analyses),
        _condition_3(analyses),
        _condition_4(analyses),
    )
    separable = all(c.holds for c in conditions)
    analysis: RecursionAnalysis | None = None
    # The structural analysis (classes, t|pers) only needs Conditions
    # 1-3; it is also built when just Condition 4 fails so the relaxed
    # evaluation mode of Section 5 can run.
    if all(c.holds for c in conditions[:3]):
        classes = build_classes(analyses)
        head_vars = tuple(
            t for t in (rec_rules or exit_rules)[0].head.args
            if isinstance(t, Variable)
        )
        analysis = RecursionAnalysis(
            predicate=predicate,
            arity=definition.arity,
            head_vars=head_vars,
            rules=analyses,
            exit_rules=exit_rules,
            classes=classes,
            redundant_rule_indices=tuple(
                a.index for a in analyses if a.is_redundant
            ),
        )
    return SeparabilityReport(
        predicate=predicate,
        separable=separable,
        prerequisites=(),
        conditions=conditions,
        analysis=analysis,
    )


def is_separable(program: Program, predicate: str) -> bool:
    """True iff the predicate's definition is a separable recursion."""
    return analyze_recursion(program, predicate).separable


def require_separable(
    program: Program,
    predicate: str,
    allow_disconnected: bool = False,
) -> RecursionAnalysis:
    """The analysis of a separable recursion, or :class:`NotSeparableError`.

    With ``allow_disconnected=True``, recursions failing only
    Condition 4 (disconnected nonrecursive subgoals) are accepted too:
    Section 5 shows the evaluation algorithm remains correct on them,
    merely unfocused.
    """
    report = analyze_recursion(program, predicate)
    acceptable = report.separable or (
        allow_disconnected and report.separable_up_to_condition_4
    )
    if not acceptable or report.analysis is None:
        raise NotSeparableError(
            f"{predicate} is not a separable recursion:\n" + report.explain(),
            report=report,
        )
    return report.analysis
