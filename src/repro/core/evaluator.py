"""Executing compiled Separable plans (the while loops of Figure 2).

:func:`execute_plan` runs the two carry/seen fixpoint loops over a
database and returns the final ``seen_2`` tuples (the answer columns).
Termination follows Lemma 3.4: the set differences at lines 5 and 12
guarantee no tuple enters a carry twice, so each loop runs at most
``n^k`` iterations -- cyclic data is handled for free, in contrast to
the Counting and Henschen-Naqvi baselines.

The relations generated (``carry_1``, ``seen_1``, ``carry_2``,
``seen_2``, ``ans``) are recorded in the
:class:`~repro.stats.EvaluationStats` under exactly those names; they
are what Lemma 4.1's ``O(n^max(w(e1), k-w(e1)))`` bound speaks about.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Iterable, Optional

from ..budget import Budget, UNLIMITED
from ..datalog.database import Database, Relation
from ..datalog.joins import evaluate_body_project
from ..datalog.planner import AdaptiveState
from ..observability.tracer import live
from ..stats import EvaluationStats
from .plan import CARRY, SEEN, CarryJoin, SeparablePlan

__all__ = ["execute_plan"]


def _with_pseudo(
    db: Database, name: str, relation: Relation
) -> Database:
    """A view of ``db`` with one pseudo-relation attached (shared, not
    copied)."""
    view = Database()
    for pred in db.predicates():
        rel = db.relation(pred)
        assert rel is not None
        view.attach(rel, pred)
    view.attach(relation, name)
    return view


def _apply_joins(
    joins: Iterable[CarryJoin],
    view: Database,
    stats: Optional[EvaluationStats],
    order: str,
    tracer=None,
    label: Optional[str] = None,
    adaptive=None,
) -> set[tuple]:
    """Evaluate a union of carry-join terms against a view database.

    With a live ``tracer`` and a ``label`` (the loop's relation name),
    each join term's applications and distinct outputs are attributed
    to ``rule_apps:<label>#<i>`` / ``rule_out:<label>#<i>`` counters --
    the compiled-plan analogue of the per-rule rows the profiler shows
    for rewritten-program strategies.
    """
    produced: set[tuple] = set()
    for ji, join in enumerate(joins):
        before = len(produced)
        for fact in evaluate_body_project(view, join.body, join.output,
                                          stats=stats, order=order,
                                          tracer=tracer,
                                          adaptive=adaptive):
            if stats is not None:
                stats.bump_produced()
            produced.add(fact)
        if tracer is not None and label is not None:
            tracer.count(f"rule_apps:{label}#{ji}")
            out = len(produced) - before
            if out:
                tracer.count(f"rule_out:{label}#{ji}", out)
    return produced


def _carry_loop(
    joins: tuple[CarryJoin, ...],
    initial: set[tuple],
    arity: int,
    db: Database,
    carry_name: str,
    seen_name: str,
    stats: Optional[EvaluationStats],
    budget: Budget,
    order: str,
    tracer=None,
    parallel=None,
) -> set[tuple]:
    """One while loop of Figure 2; returns the final ``seen`` set.

    ``initial`` seeds both carry and seen (lines 1-2 / 8-9); each
    iteration applies the union of ``joins`` to the carry, removes
    already-seen tuples (the crucial set difference), and accumulates.
    A live ``tracer`` records a ``separable.loop`` span with the
    per-iteration post-difference carry sizes -- Lemma 3.4's
    disjointness makes ``seed + sum(carries) == |seen|`` an invariant
    the differential oracle checks on every traced run.

    With a :class:`~repro.parallel.ParallelExecutor` in ``parallel``,
    iterations whose carry clears the partition threshold evaluate the
    union of joins across hash partitions of the carry on the worker
    pool; the loop structure, the seen bookkeeping, the span series,
    and the budget checks all stay in this (parent) process, so every
    traced invariant is identical to the serial run.
    """
    seen: set[tuple] = set(initial)
    carry: set[tuple] = set(initial)
    # order="adaptive": one feedback loop per carry loop, comparing the
    # planner's row estimates against actual production each iteration
    # and re-planning (bounded) on >4x divergence.  Partitioned
    # (parallel) iterations skip the feedback -- workers plan privately.
    adaptive = AdaptiveState() if order == "adaptive" else None
    if stats is not None:
        stats.record_relation(carry_name, len(carry))
        stats.record_relation(seen_name, len(seen))
    span_cm = (
        tracer.span("separable.loop", relation=seen_name,
                    seed=len(initial))
        if tracer is not None
        else nullcontext()
    )
    # One view and one carry relation for the whole loop: each round
    # refills the relation in place (a clear + bulk add_all) instead of
    # rebuilding the Database wrapper and re-copying the base mounts.
    carry_rel = Relation(CARRY, arity)
    view = _with_pseudo(db, CARRY, carry_rel)
    with span_cm as span:
        while carry:
            # Wall-clock deadlines must trip even for stats-less
            # callers (the stats-guarded checks below cannot).
            budget.check_wall(stats)
            if stats is not None:
                stats.bump_iterations()
            if tracer is not None:
                tracer.count("iterations")
            if parallel is not None and parallel.should_partition(
                joins, len(carry)
            ):
                produced = parallel.apply_joins(
                    db, joins, carry, arity, CARRY, stats, order,
                    budget=budget, tracer=tracer, label=seen_name,
                )
            else:
                carry_rel.clear()
                carry_rel.add_all(carry)
                produced = _apply_joins(joins, view, stats, order, tracer,
                                        label=seen_name, adaptive=adaptive)
                if adaptive is not None:
                    adaptive.observe_round(len(produced), tracer)
            carry = produced - seen
            seen |= carry
            if tracer is not None:
                tracer.record("carry", len(carry))
            if stats is not None:
                stats.record_relation(carry_name, len(carry))
                stats.record_relation(seen_name, len(seen))
                budget.check_relation(seen_name, len(seen), stats)
                budget.check_stats(stats)
        if span is not None:
            span.attrs["final_seen"] = len(seen)
    return seen


def execute_plan(
    plan: SeparablePlan,
    db: Database,
    seeds: Iterable[tuple],
    stats: Optional[EvaluationStats] = None,
    budget: Budget = UNLIMITED,
    order: str = "greedy",
    tracer=None,
    parallel=None,
) -> frozenset[tuple]:
    """Run a compiled plan from the given seed tuples.

    ``seeds`` are tuples over the plan's seed columns -- for an ordinary
    full selection this is the single vector ``x_0`` of selection
    constants; the Lemma 2.1 evaluation passes sideways-computed seed
    sets through the same entry point.

    ``parallel`` is an optional
    :class:`~repro.parallel.ParallelExecutor`: carry-loop iterations
    above its partition threshold evaluate across the worker pool (see
    :func:`_carry_loop`); answers, spans, and statistics are unchanged.

    Returns the final ``seen_2``: tuples over ``plan.up_positions``.
    Callers reassemble full-arity answers by interleaving the selection
    constants (see :mod:`repro.core.api`).
    """
    tracer = live(tracer)
    seed_set = {tuple(s) for s in seeds}
    for s in seed_set:
        if len(s) != plan.seed_arity:
            raise ValueError(
                f"seed {s!r} has {len(s)} columns, plan expects "
                f"{plan.seed_arity}"
            )

    # Lines 1-7: the down loop (or seen_1 := {x_0} for pers selections).
    seen_1 = _carry_loop(
        plan.down_joins,
        seed_set,
        plan.seed_arity,
        db,
        "carry_1",
        "seen_1",
        stats,
        budget,
        order,
        tracer,
        parallel,
    )

    # Line 8: carry_2 := g_2(seen_1) -- join seen_1 with each exit body.
    # The exit stage has the same shape as one carry iteration (a union
    # of joins each consuming the pseudo-relation exactly once), so the
    # same partitioning argument applies: seen_1 splits into disjoint
    # shares whose outputs union exactly to the serial result.
    exit_cm = (
        tracer.span("separable.exit", seen_1=len(seen_1))
        if tracer is not None
        else nullcontext()
    )
    with exit_cm:
        if parallel is not None and parallel.should_partition(
            plan.exit_joins, len(seen_1), pseudo=SEEN
        ):
            carry_2 = parallel.apply_joins(
                db, plan.exit_joins, seen_1, plan.seed_arity, SEEN,
                stats, order, budget=budget, tracer=tracer, label="exit",
            )
        else:
            view = _with_pseudo(db, SEEN,
                                Relation(SEEN, plan.seed_arity, seen_1))
            carry_2 = _apply_joins(plan.exit_joins, view, stats, order,
                                   tracer, label="exit")

    # Lines 9-15: the up loop; ans := seen_2.
    seen_2 = _carry_loop(
        plan.up_joins,
        carry_2,
        plan.answer_arity,
        db,
        "carry_2",
        "seen_2",
        stats,
        budget,
        order,
        tracer,
        parallel,
    )
    if stats is not None:
        stats.record_relation("ans", len(seen_2))
    return frozenset(seen_2)
