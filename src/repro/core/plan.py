"""The compiled plan IR for the Separable evaluation schema (Figure 2).

A :class:`SeparablePlan` is the instantiated schema of Section 3.3: a
*down loop* driving the selection constants through the selected
equivalence class (lines 1-7 of Figure 2, producing ``seen_1``), an
*exit join* seeding ``carry_2`` from the nonrecursive rule (line 8), and
an *up loop* applying the remaining classes (lines 10-14, producing
``seen_2 = ans``).

Each loop body is a union of :class:`CarryJoin` terms -- one per rule --
expressed as ordinary conjunctions in which a reserved pseudo-atom
(:data:`CARRY` or :data:`SEEN`) stands for the current carry/seen
relation; executing a term is just a call to
:func:`repro.datalog.joins.evaluate_body` against a view database with
the pseudo-relation attached.  This keeps the compiled form inspectable:
``SeparablePlan.describe()`` prints something very close to the paper's
Figures 3 and 4.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datalog.atoms import Atom
from ..datalog.terms import Term

__all__ = ["CARRY", "SEEN", "CarryJoin", "SeparablePlan"]

#: Pseudo-predicate standing for the current carry relation in a loop body.
CARRY = "__carry__"

#: Pseudo-predicate standing for ``seen_1`` in the exit join.
SEEN = "__seen1__"


@dataclass(frozen=True)
class CarryJoin:
    """One union term of a carry extension operator.

    ``body`` is a conjunction containing the rule's nonrecursive atoms
    plus one pseudo-atom (:data:`CARRY` or :data:`SEEN`); ``output``
    lists the terms whose values form the produced tuple.
    ``rule_index`` names the recursive rule (or exit rule) this term
    came from, so provenance traces can reconstruct the paper's
    justifications ``J(a)`` (Section 3.4).
    """

    label: str
    body: tuple[Atom, ...]
    output: tuple[Term, ...]
    rule_index: int | None = None

    def __str__(self) -> str:
        out = ", ".join(str(t) for t in self.output)
        body = " & ".join(str(a) for a in self.body)
        return f"[{self.label}] ({out}) := {body}"


@dataclass(frozen=True)
class SeparablePlan:
    """The full instantiated schema for one (recursion, selection shape).

    Attributes
    ----------
    predicate, arity:
        The recursive predicate this plan answers selections on.
    selected_positions:
        Seed columns (0-based): the selected class's ``t|e_1`` columns,
        or the bound persistent columns for a pers-driven selection.
    up_positions:
        Columns of ``carry_2`` / ``seen_2`` / ``ans``, in position order:
        everything outside the selected component.
    down_joins:
        Terms of ``f_1`` (empty for pers-driven selections, where the
        paper replaces lines 1-7 by ``seen_1(x_0)``).
    exit_joins:
        Terms of the ``carry_2`` initialization (one per exit rule).
    up_joins:
        Terms of ``f_2`` (rules of every non-selected class).
    selected_class_index:
        1-based index of the selected equivalence class, or ``None`` for
        the pers-driven (dummy class) case.
    """

    predicate: str
    arity: int
    selected_positions: tuple[int, ...]
    up_positions: tuple[int, ...]
    down_joins: tuple[CarryJoin, ...]
    exit_joins: tuple[CarryJoin, ...]
    up_joins: tuple[CarryJoin, ...]
    selected_class_index: int | None

    @property
    def seed_arity(self) -> int:
        """Columns of ``carry_1`` / ``seen_1``."""
        return len(self.selected_positions)

    @property
    def answer_arity(self) -> int:
        """Columns of ``carry_2`` / ``seen_2`` / ``ans``."""
        return len(self.up_positions)

    def describe(self) -> str:
        """Pretty-print the plan in the style of Figures 3 and 4."""
        lines = [
            f"separable plan for {self.predicate}/{self.arity}",
            f"  seed columns  {tuple(p + 1 for p in self.selected_positions)}"
            + (
                f"  (class e_{self.selected_class_index})"
                if self.selected_class_index is not None
                else "  (persistent columns; dummy class)"
            ),
            f"  answer columns {tuple(p + 1 for p in self.up_positions)}",
        ]
        if self.down_joins:
            lines.append("  down loop (f_1):")
            lines.extend(f"    {j}" for j in self.down_joins)
        else:
            lines.append("  down loop: none (seen_1 := {x_0})")
        lines.append("  exit join (carry_2 init):")
        lines.extend(f"    {j}" for j in self.exit_joins)
        if self.up_joins:
            lines.append("  up loop (f_2):")
            lines.extend(f"    {j}" for j in self.up_joins)
        else:
            lines.append("  up loop: none (ans := carry_2)")
        return "\n".join(lines)
