"""Compiling Separable plans to relational algebra (Section 3.2's view).

The paper presents the carry extension operators as *relational
operators* -- e.g. ``p := pi_{1,3}(sigma_{x0=1}(p |x| q))`` -- and only
then switches to Datalog notation for convenience.  This module is the
relational-operator reading, executable: every
:class:`~repro.core.plan.CarryJoin` compiles to an expression of
:mod:`repro.datalog.relalg` (scans of the rule's nonrecursive
relations, a placeholder for the current carry, natural joins, a final
projection), and :func:`execute_plan_algebra` runs the Figure 2 loops
through the algebra interpreter.

The algebra backend produces exactly the same answers as the direct
evaluator (property-tested); it exists to make the compiled form
inspectable in textbook notation (:func:`plan_to_algebra_text`) and to
demonstrate that the plan IR is backend-independent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..budget import Budget, UNLIMITED
from ..datalog.atoms import Atom
from ..datalog.database import Database
from ..datalog.joins import EQ
from ..datalog.relalg import (
    Expression,
    Extend,
    NaturalJoin,
    Placeholder,
    Project,
    Rename,
    Scan,
    Select,
    SelectEq,
    Values,
    evaluate,
    to_text,
)
from ..datalog.terms import Constant, Variable
from ..stats import EvaluationStats
from .plan import CARRY, SEEN, CarryJoin, SeparablePlan

__all__ = [
    "CompiledJoin",
    "compile_join",
    "execute_plan_algebra",
    "plan_to_algebra_text",
]


def _scan_expression(a: Atom) -> Expression:
    """A stored atom as Scan + constant selections + variable projection."""
    labels: list[str] = []
    constant_labels: list[tuple[str, object]] = []
    for i, term in enumerate(a.args):
        if isinstance(term, Variable):
            labels.append(term.name)
        else:
            label = f"__k{i}"
            labels.append(label)
            constant_labels.append((label, term.value))
    expr: Expression = Scan(a.predicate, tuple(labels))
    for label, value in constant_labels:
        expr = Select(expr, label, value)
    variable_names = tuple(
        name
        for name in dict.fromkeys(labels)
        if not name.startswith("__k")
    )
    if variable_names != expr.schema:
        expr = Project(expr, variable_names)
    return expr


def _placeholder_expression(a: Atom) -> Expression:
    """A carry/seen pseudo-atom as a positional Placeholder, aligned to
    the atom's variable names (handling repeated variables)."""
    positional = tuple(f"__x{i}" for i in range(a.arity))
    expr: Expression = Placeholder(a.predicate, positional)
    first_position: dict[Variable, int] = {}
    for i, term in enumerate(a.args):
        if not isinstance(term, Variable):
            raise ValueError(
                f"carry pseudo-atom {a} has a non-variable argument"
            )
        if term in first_position:
            expr = SelectEq(expr, positional[first_position[term]],
                            positional[i])
        else:
            first_position[term] = i
    keep = tuple(positional[i] for i in sorted(first_position.values()))
    if keep != expr.schema:
        expr = Project(expr, keep)
    mapping = tuple(
        (positional[i], var.name)
        for var, i in sorted(first_position.items(), key=lambda kv: kv[1])
    )
    return Rename(expr, mapping)


@dataclass(frozen=True)
class CompiledJoin:
    """One carry-extension term in relational algebra form.

    ``expression``'s schema lists the distinct output variables;
    ``output_indexes`` rebuilds the (possibly repeating) output tuple
    from a schema row.
    """

    label: str
    expression: Expression
    output_indexes: tuple[int, ...]

    def produce(
        self,
        db: Database,
        placeholders: dict[str, frozenset[tuple]],
        stats: Optional[EvaluationStats],
    ) -> set[tuple]:
        rows = evaluate(self.expression, db, placeholders)
        if stats is not None:
            stats.bump_produced(len(rows))
        return {
            tuple(row[i] for i in self.output_indexes) for row in rows
        }


def _apply_eq(expr: Expression, a: Atom) -> Expression | None:
    """Fold one built-in ``eq/2`` atom into an expression, if possible.

    Both-sides-known becomes a selection; one unknown variable becomes
    an :class:`Extend` (assignment).  Returns ``None`` when neither
    side is resolvable yet (the caller retries after other atoms have
    extended the schema).
    """
    left, right = a.args
    left_known = (
        isinstance(left, Constant) or left.name in expr.schema
    )
    right_known = (
        isinstance(right, Constant) or right.name in expr.schema
    )
    if left_known and right_known:
        if isinstance(left, Constant) and isinstance(right, Constant):
            # Constant-constant equality: all rows or no rows.
            if left.value == right.value:
                return expr
            return Values(expr.schema, frozenset())
        if isinstance(left, Constant):
            return Select(expr, right.name, left.value)  # type: ignore[union-attr]
        if isinstance(right, Constant):
            return Select(expr, left.name, right.value)
        return SelectEq(expr, left.name, right.name)
    if left_known != right_known:
        unknown, known = (right, left) if left_known else (left, right)
        if isinstance(known, Constant):
            return Extend(expr, unknown.name, value=known.value)  # type: ignore[union-attr]
        return Extend(expr, unknown.name, from_attribute=known.name)  # type: ignore[union-attr]
    return None


def compile_join(join: CarryJoin) -> CompiledJoin:
    """Translate a :class:`CarryJoin` into a relational expression.

    Built-in ``eq`` atoms (from rectification) become selections or
    :class:`Extend` assignments once their variables are available.
    """
    expr: Expression | None = None
    pending_eq: list[Atom] = []
    for a in join.body:
        if a.predicate == EQ:
            pending_eq.append(a)
            continue
        piece = (
            _placeholder_expression(a)
            if a.predicate in (CARRY, SEEN)
            else _scan_expression(a)
        )
        expr = piece if expr is None else NaturalJoin(expr, piece)
    if expr is None:
        raise ValueError(f"join {join.label} has no relational atoms")
    progress = True
    while pending_eq and progress:
        progress = False
        for a in list(pending_eq):
            folded = _apply_eq(expr, a)
            if folded is not None:
                expr = folded
                pending_eq.remove(a)
                progress = True
    if pending_eq:
        raise ValueError(
            f"join {join.label}: unresolvable eq atoms {pending_eq} "
            f"(both sides unbound)"
        )

    output_names: list[str] = []
    for term in join.output:
        if not isinstance(term, Variable):
            raise ValueError(
                f"join output {join.output} has a non-variable term"
            )
        output_names.append(term.name)
    distinct = tuple(dict.fromkeys(output_names))
    projected = Project(expr, distinct)
    indexes = tuple(distinct.index(name) for name in output_names)
    return CompiledJoin(join.label, projected, indexes)


def _run_joins(
    joins: tuple[CompiledJoin, ...],
    db: Database,
    placeholder_name: str,
    contents: frozenset[tuple],
    stats: Optional[EvaluationStats],
) -> set[tuple]:
    produced: set[tuple] = set()
    env = {placeholder_name: contents}
    for join in joins:
        produced |= join.produce(db, env, stats)
    return produced


def execute_plan_algebra(
    plan: SeparablePlan,
    db: Database,
    seeds: Iterable[tuple],
    stats: Optional[EvaluationStats] = None,
    budget: Budget = UNLIMITED,
    order: str = "greedy",  # accepted for interface parity; unused
) -> frozenset[tuple]:
    """Run a compiled plan through the relational algebra interpreter.

    Returns the same ``seen_2`` tuple set as
    :func:`repro.core.evaluator.execute_plan`.
    """
    down = tuple(compile_join(j) for j in plan.down_joins)
    exits = tuple(compile_join(j) for j in plan.exit_joins)
    up = tuple(compile_join(j) for j in plan.up_joins)

    seen_1: set[tuple] = {tuple(s) for s in seeds}
    carry: set[tuple] = set(seen_1)
    if stats is not None:
        stats.record_relation("carry_1", len(carry))
        stats.record_relation("seen_1", len(seen_1))
    while carry:
        budget.check_wall(stats)
        if stats is not None:
            stats.bump_iterations()
        produced = _run_joins(down, db, CARRY, frozenset(carry), stats)
        carry = produced - seen_1
        seen_1 |= carry
        if stats is not None:
            stats.record_relation("carry_1", len(carry))
            stats.record_relation("seen_1", len(seen_1))
            budget.check_relation("seen_1", len(seen_1), stats)
            budget.check_stats(stats)

    carry_2 = _run_joins(exits, db, SEEN, frozenset(seen_1), stats)
    seen_2: set[tuple] = set(carry_2)
    carry = set(carry_2)
    if stats is not None:
        stats.record_relation("carry_2", len(carry))
        stats.record_relation("seen_2", len(seen_2))
    while carry:
        budget.check_wall(stats)
        if stats is not None:
            stats.bump_iterations()
        produced = _run_joins(up, db, CARRY, frozenset(carry), stats)
        carry = produced - seen_2
        seen_2 |= carry
        if stats is not None:
            stats.record_relation("carry_2", len(carry))
            stats.record_relation("seen_2", len(seen_2))
            budget.check_relation("seen_2", len(seen_2), stats)
            budget.check_stats(stats)
    if stats is not None:
        stats.record_relation("ans", len(seen_2))
    return frozenset(seen_2)


def plan_to_algebra_text(plan: SeparablePlan) -> str:
    """Render the compiled plan in sigma/pi/join notation."""
    lines = [f"algebra plan for {plan.predicate}/{plan.arity}"]

    def describe(title: str, joins: tuple[CarryJoin, ...]) -> None:
        lines.append(f"  {title}:")
        if not joins:
            lines.append("    (none)")
            return
        for join in joins:
            compiled = compile_join(join)
            lines.append(
                f"    [{join.label}] {to_text(compiled.expression)}"
            )

    describe("down loop f_1", plan.down_joins)
    describe("carry_2 init g_2", plan.exit_joins)
    describe("up loop f_2", plan.up_joins)
    return "\n".join(lines)
