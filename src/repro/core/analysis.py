"""Structural analysis behind Definition 2.4: classes, ``t|e_i``, ``t|pers``.

Given the definition of a linear recursive predicate ``t``, this module
computes, per recursive rule ``r_i``,

* ``t^h_i`` -- the argument positions of the *head* instance of ``t``
  whose variable is shared with some nonrecursive body atom,
* ``t^b_i`` -- the same for the *body* instance of ``t``,
* the shifting variables of ``r_i`` (Definition 2.3),

and, across rules, the equivalence classes ``e_1 .. e_n`` induced by
Condition 3 (rules with equal touched-position sets), the class columns
``t|e_i``, and the persistent columns ``t|pers``.

All position indices are 0-based here (the paper writes 1-based
superscripts); rules are rectified before analysis so heads are
identical, constant-free, and repeat-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from ..datalog.atoms import Atom, connected_components
from ..datalog.programs import Definition, Program
from ..datalog.rectify import is_rectified, rectify_definition
from ..datalog.rules import Rule
from ..datalog.terms import Variable

__all__ = [
    "RuleAnalysis",
    "EquivalenceClass",
    "RecursionAnalysis",
    "analyze_rule",
    "analyze_definition",
]


@dataclass(frozen=True)
class RuleAnalysis:
    """Per-rule structural facts for one rectified recursive rule.

    Attributes
    ----------
    rule:
        The rectified rule.
    index:
        Position of the rule within the definition's recursive rules.
    recursive_atom:
        The single body occurrence of the recursive predicate.
    nonrecursive_atoms:
        The paper's ``a_ij`` conjunction (everything else in the body).
    touched_head / touched_body:
        ``t^h_i`` / ``t^b_i`` as sorted 0-based position tuples.
    shifting:
        Shifting-variable violations as ``(variable, head_pos, body_pos)``
        triples (Definition 2.3); empty when Condition 1 holds.
    connected_component_count:
        Number of maximal connected sets the nonrecursive atoms form
        (Condition 4 requires exactly 1).
    """

    rule: Rule
    index: int
    recursive_atom: Atom
    nonrecursive_atoms: tuple[Atom, ...]
    touched_head: tuple[int, ...]
    touched_body: tuple[int, ...]
    shifting: tuple[tuple[Variable, int, int], ...]
    connected_component_count: int

    @property
    def touched_agree(self) -> bool:
        """Condition 2 for this rule: ``t^h_i == t^b_i``."""
        return self.touched_head == self.touched_body

    @property
    def is_redundant(self) -> bool:
        """True when the nonrecursive atoms touch no position of ``t``.

        Such a rule (e.g. ``t(X,Y) :- c(A,B) & t(X,Y).``) can never
        derive a tuple not already derived without it, so the evaluator
        drops it; see the note in DESIGN.md.
        """
        return not self.touched_head and not self.touched_body


@dataclass(frozen=True)
class EquivalenceClass:
    """One equivalence class ``e_i`` of Condition 3.

    ``positions`` is ``t|e_i`` (sorted, 0-based); ``rule_indices`` index
    into :attr:`RecursionAnalysis.rules`.
    """

    index: int
    positions: tuple[int, ...]
    rule_indices: tuple[int, ...]

    @property
    def width(self) -> int:
        """The paper's ``w(e_i)``: number of columns in ``t|e_i``."""
        return len(self.positions)


@dataclass(frozen=True)
class RecursionAnalysis:
    """Full structural analysis of a separable recursion.

    Only constructed once all four conditions of Definition 2.4 hold
    (plus the structural prerequisites: linearity, safety, variables-only
    recursive body instance).  The Separable compiler consumes this.
    """

    predicate: str
    arity: int
    head_vars: tuple[Variable, ...]
    rules: tuple[RuleAnalysis, ...]
    exit_rules: tuple[Rule, ...]
    classes: tuple[EquivalenceClass, ...]
    redundant_rule_indices: tuple[int, ...]

    @cached_property
    def pers_positions(self) -> tuple[int, ...]:
        """``t|pers``: positions belonging to no equivalence class."""
        in_class = {p for c in self.classes for p in c.positions}
        return tuple(p for p in range(self.arity) if p not in in_class)

    def class_of_position(self, position: int) -> EquivalenceClass | None:
        """The class owning ``position``, or ``None`` for persistent ones."""
        for c in self.classes:
            if position in c.positions:
                return c
        return None

    def rules_of_class(self, cls: EquivalenceClass) -> tuple[RuleAnalysis, ...]:
        """The :class:`RuleAnalysis` objects of a class, in rule order."""
        return tuple(self.rules[i] for i in cls.rule_indices)

    def class_rule_index_sets(self) -> tuple[frozenset[int], ...]:
        """Rule-index sets per class, for derivation projections
        (:meth:`repro.datalog.expansion.ExpansionString.project_derivation`)."""
        return tuple(frozenset(c.rule_indices) for c in self.classes)

    def expansion_regex(self, selected_class_index: int | None = None) -> str:
        """The Section 3.2 regular-expression view of the expansion.

        For the motivating recursion the paper writes "Ignoring
        variables, the elements of the expansion can be described by
        the regular expression ``(a1 + a2)* t0 (b1 + b2)*``"; this
        renders the same description for any separable recursion, with
        the selected class (default: ``e_1``) on the left of the exit
        and the remaining classes on the right -- the Section 3.4
        string ordering.
        """

        def rule_label(a: RuleAnalysis) -> str:
            return (
                ".".join(x.predicate for x in a.nonrecursive_atoms)
                or f"r{a.index + 1}"
            )

        def class_star(cls: EquivalenceClass) -> str:
            labels = [rule_label(self.rules[i]) for i in cls.rule_indices]
            inner = " + ".join(labels)
            return f"({inner})*" if len(labels) > 1 else f"{inner}*"

        exit_labels = [
            ".".join(a.predicate for a in r.body) or "true"
            for r in self.exit_rules
        ]
        exit_part = (
            f"({' + '.join(exit_labels)})"
            if len(exit_labels) > 1
            else (exit_labels[0] if exit_labels else "true")
        )

        if selected_class_index is None and self.classes:
            selected_class_index = self.classes[0].index
        left = [
            class_star(c)
            for c in self.classes
            if c.index == selected_class_index
        ]
        right = [
            class_star(c)
            for c in self.classes
            if c.index != selected_class_index
        ]
        return " ".join(left + [exit_part] + right)


def analyze_rule(r: Rule, predicate: str, index: int) -> RuleAnalysis:
    """Compute the per-rule facts for one rectified recursive rule."""
    recursive = r.recursive_atom(predicate)
    if recursive is None:
        raise ValueError(f"rule {r} is not recursive in {predicate}")
    nonrec = r.nonrecursive_body(predicate)

    nonrec_vars: set[Variable] = set()
    for a in nonrec:
        nonrec_vars |= a.variable_set()

    touched_head = tuple(
        p
        for p, term in enumerate(r.head.args)
        if isinstance(term, Variable) and term in nonrec_vars
    )
    touched_body = tuple(
        p
        for p, term in enumerate(recursive.args)
        if isinstance(term, Variable) and term in nonrec_vars
    )

    shifting: list[tuple[Variable, int, int]] = []
    for head_pos, term in enumerate(r.head.args):
        if not isinstance(term, Variable):
            continue
        for body_pos in recursive.positions_of(term):
            if body_pos != head_pos:
                shifting.append((term, head_pos, body_pos))

    components = connected_components(list(nonrec))
    return RuleAnalysis(
        rule=r,
        index=index,
        recursive_atom=recursive,
        nonrecursive_atoms=nonrec,
        touched_head=touched_head,
        touched_body=touched_body,
        shifting=tuple(shifting),
        connected_component_count=len(components),
    )


def analyze_definition(
    definition: Definition,
) -> tuple[tuple[Rule, ...], tuple[Rule, ...], tuple[RuleAnalysis, ...]]:
    """Rectify a definition and analyze each recursive rule.

    Returns ``(rectified recursive rules, rectified exit rules,
    per-rule analyses)``.  Raises
    :class:`~repro.datalog.errors.NotLinearError` on nonlinear rules.
    """
    definition.check_linear()
    all_rules = list(definition.recursive_rules) + list(definition.exit_rules)
    rectified = rectify_definition(all_rules)
    n_rec = len(definition.recursive_rules)
    rec_rules = tuple(rectified[:n_rec])
    exit_rules = tuple(rectified[n_rec:])
    analyses = tuple(
        analyze_rule(r, definition.predicate, i)
        for i, r in enumerate(rec_rules)
    )
    return rec_rules, exit_rules, analyses


def build_classes(
    analyses: tuple[RuleAnalysis, ...],
) -> tuple[EquivalenceClass, ...]:
    """Group rules into equivalence classes by their touched positions.

    Callers must have verified Conditions 2 and 3 first; this simply
    groups rules with equal ``t^h_i`` (redundant rules excluded).  Class
    indices are 1-based to match the paper's ``e_1 .. e_n``.
    """
    groups: dict[tuple[int, ...], list[int]] = {}
    order: list[tuple[int, ...]] = []
    for a in analyses:
        if a.is_redundant:
            continue
        key = a.touched_head
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(a.index)
    return tuple(
        EquivalenceClass(
            index=i + 1, positions=key, rule_indices=tuple(groups[key])
        )
        for i, key in enumerate(order)
    )
