"""The Lemma 2.1 rewrite: partial selections as unions of full selections.

Given a separable recursion ``R`` defining ``t`` and a selection that
binds a *proper subset* of some equivalence class ``e_1``'s columns,
Lemma 2.1 replaces ``R`` by

* ``t_part`` -- the recursion with ``e_1``'s rules removed (so ``e_1``'s
  columns become persistent there),
* ``t_full`` -- a copy of the whole recursion, and
* bridging rules ``t :- t_part.`` and, for each rule ``r_1j`` of
  ``e_1``, ``t :- t_full', a_1j`` where ``t_full'`` is the recursive
  body instance of ``r_1j`` with its predicate renamed,

after which sideways information passing turns the original partial
selection into full selections on both new predicates: on ``t_part``
the constants now sit in persistent columns; on ``t_full`` they pass
through ``a_1j`` to bind all of ``t|e_1``.

:func:`rewrite_partial_selection` builds the rewritten program
explicitly (used by the tests to verify the lemma against semi-naive
evaluation); the production evaluation path in
:mod:`repro.core.api` performs the same decomposition operationally,
without materializing renamed predicates.
"""

from __future__ import annotations

from ..datalog.atoms import Atom
from ..datalog.programs import Program
from ..datalog.rules import Rule
from .analysis import EquivalenceClass, RecursionAnalysis

__all__ = [
    "rewrite_partial_selection",
    "program_without_class",
    "choose_rewrite_class",
]


def _rename(a: Atom, old: str, new: str) -> Atom:
    """Rename the predicate of ``a`` if it is ``old``."""
    return Atom(new, a.args) if a.predicate == old else a


def _rename_rule(r: Rule, old: str, new: str) -> Rule:
    return Rule(
        _rename(r.head, old, new),
        tuple(_rename(a, old, new) for a in r.body),
    )


def program_without_class(
    analysis: RecursionAnalysis, cls: EquivalenceClass
) -> Program:
    """The ``t_part`` recursion, keeping the original predicate name.

    Contains every recursive rule *not* in ``cls`` plus all exit rules.
    The removed class's columns become persistent columns of the result,
    which is what makes the original partial selection full on it.
    """
    dropped = set(cls.rule_indices)
    kept = [
        a.rule for a in analysis.rules if a.index not in dropped
    ]
    return Program(tuple(kept) + analysis.exit_rules)


def rewrite_partial_selection(
    analysis: RecursionAnalysis,
    cls: EquivalenceClass,
    full_name: str | None = None,
    part_name: str | None = None,
) -> Program:
    """Build the explicit Lemma 2.1 program.

    The result defines three predicates: ``t_full`` (a verbatim copy of
    the recursion), ``t_part`` (the recursion minus ``cls``), and the
    original ``t`` via the bridging rules.  Base predicates are
    untouched; callers evaluating the rewritten program must supply
    their extents alongside.
    """
    t = analysis.predicate
    full_name = full_name or f"{t}_full"
    part_name = part_name or f"{t}_part"
    for reserved in (full_name, part_name):
        if reserved == t:
            raise ValueError(f"rewrite name {reserved!r} collides with {t}")

    rules: list[Rule] = []

    # t_full: the entire original recursion, renamed.
    for a in analysis.rules:
        rules.append(_rename_rule(a.rule, t, full_name))
    for r in analysis.exit_rules:
        rules.append(_rename_rule(r, t, full_name))

    # t_part: the recursion minus the rewritten class, renamed.
    dropped = set(cls.rule_indices)
    for a in analysis.rules:
        if a.index not in dropped:
            rules.append(_rename_rule(a.rule, t, part_name))
    for r in analysis.exit_rules:
        rules.append(_rename_rule(r, t, part_name))

    # Bridging rules: t :- t_part.  and  t :- t_full', a_1j.
    head = Atom(t, analysis.rules[0].rule.head.args if analysis.rules
                else analysis.exit_rules[0].head.args)
    rules.append(Rule(head, (Atom(part_name, head.args),)))
    for i in cls.rule_indices:
        a = analysis.rules[i]
        bridged_body = (
            Atom(full_name, a.recursive_atom.args),
        ) + a.nonrecursive_atoms
        rules.append(Rule(a.rule.head, bridged_body))

    return Program(rules)


def choose_rewrite_class(
    analysis: RecursionAnalysis, bound_positions: set[int]
) -> EquivalenceClass:
    """Pick the partially bound class to rewrite on (the lemma's ``e_1``).

    Any partially bound class is sound; we take the one with the most
    bound columns, so the sideways pass into ``t_full`` is as selective
    as possible.
    """
    best: EquivalenceClass | None = None
    best_bound = -1
    for cls in analysis.classes:
        bound = sum(1 for p in cls.positions if p in bound_positions)
        if 0 < bound < len(cls.positions) and bound > best_bound:
            best = cls
            best_bound = bound
    if best is None:
        raise ValueError(
            "no partially bound equivalence class; the selection is "
            "already full (or has no constants)"
        )
    return best
