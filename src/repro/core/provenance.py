"""Answer justifications: the paper's ``J(a)`` (Section 3.4), executable.

The correctness proof of the Separable algorithm records, for every
tuple that enters a carry relation, *which* rule application produced
it from which parent tuple; the resulting string ``J(a)`` is exactly
the derivation of an expansion string whose relation contains the
answer (Lemma 3.1).  This module makes that construction available at
runtime:

* :func:`execute_plan_traced` runs a compiled plan like
  :func:`repro.core.evaluator.execute_plan` but additionally records a
  first-derivation parent for every carry/seen tuple;
* :func:`justify` walks the parent chains of one answer back to the
  selection constants and returns a :class:`Justification` -- the rule
  indices of ``J(a)`` split into the down (selected class) and up
  (other classes) parts, plus the exit rule used;
* :meth:`Justification.derivation` is ``D(s)`` for a string ``s`` whose
  relation provably contains the answer -- the tests rebuild ``s`` via
  :func:`repro.datalog.expansion.string_for_derivation` and check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..budget import Budget, UNLIMITED
from ..datalog.database import Database, Relation
from ..datalog.joins import evaluate_body, instantiate_args
from ..stats import EvaluationStats
from .evaluator import _with_pseudo
from .plan import CARRY, SEEN, CarryJoin, SeparablePlan

__all__ = ["Justification", "Trace", "execute_plan_traced", "justify"]

#: parent record: (rule index, parent tuple); None marks a loop seed.
Parent = Optional[tuple[int, tuple]]


@dataclass(frozen=True)
class Justification:
    """``J(a)`` for one answer of a Separable plan execution.

    Attributes
    ----------
    answer:
        The tuple over the plan's answer columns being justified.
    seed:
        The ``seen_1`` seed the derivation starts from (the selection
        constants, or a Lemma 2.1 sideways seed).
    down_rules:
        Indices of selected-class rules, in expansion order (first
        applied to the query instance first).
    exit_index:
        Which exit rule closed the derivation.
    up_rules:
        Indices of non-selected-class rules, in expansion order.
    """

    answer: tuple
    seed: tuple
    down_rules: tuple[int, ...]
    exit_index: int
    up_rules: tuple[int, ...]

    @property
    def derivation(self) -> tuple[int, ...]:
        """``D(s)`` of a string whose relation contains the answer.

        By Theorem 2.1 any interleaving of the per-class projections
        works; we use "all selected-class rules first", the canonical
        order of Lemma 3.3's proof.
        """
        return self.down_rules + self.up_rules

    def __str__(self) -> str:
        down = " ".join(f"r{i + 1}" for i in self.down_rules) or "ε"
        up = " ".join(f"r{i + 1}" for i in self.up_rules) or "ε"
        return (
            f"J({self.answer}) = [down: {down}] [exit{self.exit_index + 1}]"
            f" [up: {up}]"
        )


@dataclass
class Trace:
    """Parent pointers recorded during one traced plan execution."""

    plan: SeparablePlan
    down_parent: dict[tuple, Parent]
    exit_parent: dict[tuple, tuple[int, tuple]]
    up_parent: dict[tuple, Parent]


def _traced_loop(
    joins: tuple[CarryJoin, ...],
    initial: Iterable[tuple],
    arity: int,
    db: Database,
    parents: dict[tuple, Parent],
    stats: Optional[EvaluationStats],
    budget: Budget,
    order: str,
) -> set[tuple]:
    """A Figure 2 loop that records a first parent for every new tuple."""
    seen: set[tuple] = set()
    carry: set[tuple] = set()
    for s in initial:
        s = tuple(s)
        seen.add(s)
        carry.add(s)
        parents.setdefault(s, None)
    while carry:
        budget.check_wall(stats)
        if stats is not None:
            stats.bump_iterations()
        view = _with_pseudo(db, CARRY, Relation(CARRY, arity, carry))
        produced: dict[tuple, tuple[int, tuple]] = {}
        for join in joins:
            carry_atom = next(a for a in join.body if a.predicate == CARRY)
            assert join.rule_index is not None
            for bindings in evaluate_body(view, join.body, stats=stats,
                                          order=order):
                child = instantiate_args(join.output, bindings)
                if child in seen or child in produced:
                    continue
                parent = instantiate_args(carry_atom.args, bindings)
                produced[child] = (join.rule_index, parent)
        carry = set(produced)
        seen |= carry
        for child, parent_record in produced.items():
            parents[child] = parent_record
        if stats is not None:
            budget.check_stats(stats)
    return seen


def execute_plan_traced(
    plan: SeparablePlan,
    db: Database,
    seeds: Iterable[tuple],
    stats: Optional[EvaluationStats] = None,
    budget: Budget = UNLIMITED,
    order: str = "greedy",
) -> tuple[frozenset[tuple], Trace]:
    """Run a plan recording provenance; returns ``(seen_2, trace)``.

    Answers equal :func:`repro.core.evaluator.execute_plan`'s exactly;
    the extra cost is one parent record per derived tuple.
    """
    trace = Trace(plan, {}, {}, {})
    seen_1 = _traced_loop(
        plan.down_joins, seeds, plan.seed_arity, db,
        trace.down_parent, stats, budget, order,
    )

    view = _with_pseudo(db, SEEN, Relation(SEEN, plan.seed_arity, seen_1))
    carry_2: set[tuple] = set()
    for join in plan.exit_joins:
        seen_atom = next(a for a in join.body if a.predicate == SEEN)
        assert join.rule_index is not None
        for bindings in evaluate_body(view, join.body, stats=stats,
                                      order=order):
            child = instantiate_args(join.output, bindings)
            if child not in trace.exit_parent:
                trace.exit_parent[child] = (
                    join.rule_index,
                    instantiate_args(seen_atom.args, bindings),
                )
            carry_2.add(child)

    seen_2 = _traced_loop(
        plan.up_joins, carry_2, plan.answer_arity, db,
        trace.up_parent, stats, budget, order,
    )
    return frozenset(seen_2), trace


def justify(trace: Trace, answer: tuple) -> Justification:
    """Reconstruct ``J(answer)`` from a trace.

    Walks the up-loop parent chain from the answer to a ``carry_2``
    seed, through that seed's exit record to a ``seen_1`` tuple, then
    down the down-loop chain to the selection seed.
    """
    answer = tuple(answer)
    if answer not in trace.up_parent:
        raise KeyError(f"{answer!r} is not an answer of this execution")

    # Up chain: walking parents visits rules in reverse application
    # order, which IS expansion order (the up loop builds the string
    # from t_0 outward, the expansion from the query inward).
    up_rules: list[int] = []
    current = answer
    while True:
        record = trace.up_parent[current]
        if record is None:
            break
        rule_index, parent = record
        up_rules.append(rule_index)
        current = parent

    exit_index, seen1_tuple = trace.exit_parent[current]

    # Down chain: walking parents visits rules deepest-first; expansion
    # order is the reverse.
    down_rules_reversed: list[int] = []
    current = seen1_tuple
    while True:
        record = trace.down_parent[current]
        if record is None:
            break
        rule_index, parent = record
        down_rules_reversed.append(rule_index)
        current = parent

    return Justification(
        answer=answer,
        seed=current,
        down_rules=tuple(reversed(down_rules_reversed)),
        exit_index=exit_index,
        up_rules=tuple(up_rules),
    )


def explain(
    program,
    db: Database,
    query,
    analysis=None,
    order: str = "greedy",
) -> dict[tuple, Justification]:
    """Answer a full selection and justify every answer.

    Returns ``{full-arity answer tuple: Justification}``.  Partial
    selections are out of scope here (their answers combine several
    plan executions); use :func:`repro.core.api.evaluate_separable` for
    those.
    """
    from .compiler import compile_selection
    from .detection import require_separable
    from .selections import classify_selection, require_full

    if analysis is None:
        analysis = require_separable(program, query.predicate)
    selection = require_full(classify_selection(analysis, query))
    plan = compile_selection(selection)
    answers, trace = execute_plan_traced(plan, db, [selection.seed],
                                         order=order)
    result: dict[tuple, Justification] = {}
    for up_tuple in answers:
        values: list = [None] * analysis.arity
        for p in plan.selected_positions:
            values[p] = selection.bound[p]
        for col, p in enumerate(plan.up_positions):
            values[p] = up_tuple[col]
        full = tuple(values)
        from .api import _matches_query

        if _matches_query(full, query):
            result[full] = justify(trace, up_tuple)
    return result
