"""The Separable evaluation facade: detect, classify, compile, execute.

:func:`evaluate_separable` answers an arbitrary selection query on a
separable recursion:

* full selections (Definition 2.7) compile straight to a
  :class:`~repro.core.plan.SeparablePlan` and run;
* partial selections follow Lemma 2.1 operationally -- evaluate the
  ``t_part`` recursion (the class dropped, constants persistent) plus,
  for each rule of the rewritten class, a sideways pass through its
  nonrecursive atoms producing fully bound seeds for the original
  recursion, evaluated per distinct seed with a cache;
* queries with *no* constants are outside the paper's scope ("queries in
  which at least one argument of the query predicate is a constant") and
  raise :class:`~repro.datalog.errors.NotFullSelectionError`; the engine
  falls back to semi-naive materialization for them.

Answers are returned as full-arity tuples matching the query atom, with
residual constants (outside the selected component) and repeated query
variables applied as final filters.
"""

from __future__ import annotations

from typing import Optional

from ..budget import Budget, UNLIMITED
from ..datalog.atoms import Atom
from ..datalog.database import Database
from ..datalog.errors import BudgetExceeded, NotFullSelectionError
from ..datalog.joins import evaluate_body, instantiate_args
from ..datalog.programs import Program
from ..datalog.terms import ConstValue, Variable
from ..observability.tracer import live
from ..stats import EvaluationStats
from .analysis import EquivalenceClass, RecursionAnalysis
from .compiler import compile_plan, compile_selection
from .detection import require_separable
from .evaluator import execute_plan
from .plan import SeparablePlan
from .rewrite import choose_rewrite_class, program_without_class
from .selections import Selection, classify_selection

__all__ = [
    "evaluate_separable",
    "full_selection_from_extent",
    "full_selection_key",
]


def _assemble(
    arity: int,
    plan: SeparablePlan,
    fixed: dict[int, ConstValue],
    up_tuples: frozenset[tuple],
) -> set[tuple]:
    """Interleave fixed column values with ``seen_2`` tuples."""
    answers: set[tuple] = set()
    for ut in up_tuples:
        values: list[ConstValue | None] = [None] * arity
        for p, v in fixed.items():
            values[p] = v
        for col, p in enumerate(plan.up_positions):
            values[p] = ut[col]
        answers.add(tuple(values))
    return answers


def _matches_query(fact: tuple, query: Atom) -> bool:
    """Residual check: constants equal, repeated variables consistent."""
    seen_vars: dict[Variable, ConstValue] = {}
    for value, term in zip(fact, query.args):
        if isinstance(term, Variable):
            prior = seen_vars.setdefault(term, value)
            if prior != value:
                return False
        elif term.value != value:
            return False
    return True


def full_selection_key(
    analysis: RecursionAnalysis,
    selected_class: Optional[EquivalenceClass],
    selected_positions: tuple[int, ...],
    seed: tuple,
    order: str,
) -> tuple:
    """The memo key identifying one full-selection carry/seen run.

    A compiled plan is a pure function of the analysis and the selected
    component, and a run of it is additionally a function of the seed
    vector and the join order, so this tuple keys exactly the Lemma 2.1
    unit of work a cross-request memo may share.  The analysis object
    itself participates (it is a frozen dataclass), which keeps ``t``
    and its ``t_part`` rewrite -- same predicate name, different
    programs -- from colliding.  Callers scope the key to one database
    snapshot (the service adds the EDB fingerprint).
    """
    component = (
        ("class", selected_class.index)
        if selected_class is not None
        else ("pers", selected_positions)
    )
    return (analysis, component, tuple(seed), order)


def full_selection_from_extent(
    analysis: RecursionAnalysis,
    component: tuple,
    seed: tuple,
    extent,
) -> frozenset[tuple]:
    """Recompute one memoized full-selection value from a ``t`` extent.

    A cached carry/seen run for ``(component, seed)`` holds exactly
    ``σ_{component=seed}(t)`` projected onto the non-selected columns
    in ascending position order (the compiler's ``up_positions``).
    Given a maintained materialization of ``t``, the same value falls
    out of a projection -- this is how the service repairs a dirty memo
    entry after a mutation without re-running the carry loops.
    """
    from .selections import component_positions

    positions = component_positions(analysis, component)
    selected = set(positions)
    up_positions = tuple(
        p for p in range(analysis.arity) if p not in selected
    )
    seed = tuple(seed)
    return frozenset(
        tuple(fact[p] for p in up_positions)
        for fact in extent
        if tuple(fact[p] for p in positions) == seed
    )


def _run_plan(
    plan: SeparablePlan,
    key: Optional[tuple],
    db: Database,
    seed: tuple,
    stats: Optional[EvaluationStats],
    budget: Budget,
    order: str,
    tracer=None,
    memo=None,
    parallel=None,
) -> frozenset[tuple]:
    """Execute one full-selection plan, through the memo when given.

    The memo (see :class:`repro.service.FullSelectionMemo`) caches and
    coalesces on ``key``; each miss runs under a *fresh* branch
    :class:`EvaluationStats` so the cached entry carries exactly the
    work that one full selection cost, and every consumer -- first
    evaluator or cache hit -- merges that branch into its own
    accumulator.  A budget trip during the miss merges the partial
    branch into the caller's stats before propagating, so union-level
    handlers always see the complete picture.  ``parallel`` reaches
    :func:`~repro.core.evaluator.execute_plan` for intra-loop carry
    partitioning.
    """
    if memo is None or key is None:
        return execute_plan(
            plan, db, [seed], stats=stats, budget=budget,
            order=order, tracer=tracer, parallel=parallel,
        )

    def compute() -> tuple[frozenset[tuple], EvaluationStats]:
        branch = EvaluationStats()
        try:
            tuples = execute_plan(
                plan, db, [seed], stats=branch, budget=budget,
                order=order, tracer=tracer, parallel=parallel,
            )
        except BudgetExceeded as exc:
            if stats is not None:
                stats.merge(branch)
                exc.stats = stats
            raise
        return tuples, branch

    tuples, branch = memo.get_or_run(key, compute)
    if stats is not None:
        stats.merge(branch)
        # Branch misses are metered against a fresh accumulator, so the
        # union-level limits must be re-applied to the merged totals --
        # a cache hit still spends the caller's budget.
        budget.check_stats(stats)
    return tuples


def _evaluate_full(
    selection: Selection,
    db: Database,
    stats: Optional[EvaluationStats],
    budget: Budget,
    order: str,
    tracer=None,
    memo=None,
    parallel=None,
) -> set[tuple]:
    plan = compile_selection(selection)
    key = full_selection_key(
        selection.analysis, selection.selected_class,
        selection.selected_positions, selection.seed, order,
    )
    up_tuples = _run_plan(plan, key, db, selection.seed, stats, budget,
                          order, tracer, memo, parallel)
    fixed = {p: selection.bound[p] for p in plan.selected_positions}
    return _assemble(selection.analysis.arity, plan, fixed, up_tuples)


def _fanout_branches(
    plan: SeparablePlan,
    analysis: RecursionAnalysis,
    cls: EquivalenceClass,
    seeds: list[tuple],
    db: Database,
    stats: Optional[EvaluationStats],
    budget: Budget,
    order: str,
    memo,
    parallel,
    tracer=None,
) -> tuple[dict[tuple, frozenset[tuple]], Optional[BaseException]]:
    """Evaluate the Lemma 2.1 branches for ``seeds`` on the worker pool.

    Each branch runs on a parent thread that blocks on a worker-pool
    result; with a memo, the thread sits inside ``memo.get_or_run`` so
    in-flight coalescing across concurrent requests keeps its contract
    (followers wait on the leader's event, a leader failure caches
    nothing).  Branch stats merge into ``stats`` in *seed order* --
    merged counter totals are therefore deterministic across runs --
    with the union-level budget re-applied after every merge, exactly
    like the serial path.

    When tracing, each worker ships its branch span tree home as a
    :class:`~repro.observability.fragments.TraceFragment`.  The
    fragments are stripped off *before* the memo caches a value (memo
    entries stay ``(tuples, branch_stats)`` pairs, and a cached hit
    costs no trace) and stitched into ``tracer`` on this thread, in
    seed order, after every branch thread has joined -- ``Tracer`` is
    not thread-safe, so installation never happens on branch threads.

    Returns ``(seed_cache, failure)``: the completed branches' results
    plus the first failure in seed order (``None`` on success).  The
    caller assembles the completed answers before re-raising, so a
    budget trip still degrades into a well-formed partial answer set.
    """
    fragments: dict[tuple, object] = {}

    def branch(seed: tuple):
        def compute() -> tuple[frozenset[tuple], EvaluationStats]:
            if tracer is None:
                return parallel.run_plan_remote(
                    db, plan, [seed], order, budget
                )
            tuples, branch_stats, fragment = parallel.run_plan_remote(
                db, plan, [seed], order, budget, collect_fragment=True
            )
            if fragment is not None:
                fragments[seed] = fragment
            return tuples, branch_stats

        if memo is None:
            return compute()
        key = full_selection_key(analysis, cls, cls.positions, seed, order)
        return memo.get_or_run(key, compute)

    outcomes = parallel.map_threads(branch, seeds)
    if tracer is not None:
        for seed in seeds:
            fragment = fragments.get(seed)
            if fragment is not None:
                parallel.install_fragment(
                    tracer, fragment, task="branch", seed=list(seed)
                )
    seed_cache: dict[tuple, frozenset[tuple]] = {}
    failure: Optional[BaseException] = None
    for seed, (status, value) in zip(seeds, outcomes):
        if status == "error":
            if failure is None:
                failure = value
            continue
        tuples, branch_stats = value
        seed_cache[seed] = tuples
        if stats is not None:
            stats.merge(branch_stats)
            if failure is None:
                try:
                    budget.check_stats(stats)
                except BudgetExceeded as exc:
                    failure = exc
    if isinstance(failure, BudgetExceeded) and stats is not None:
        # Mirror the serial contract: the escaping trip carries the
        # union accumulator, with the failing branch's own partial
        # stats folded in first.
        branch_stats = failure.stats
        if (
            isinstance(branch_stats, EvaluationStats)
            and branch_stats is not stats
        ):
            stats.merge(branch_stats)
        failure.stats = stats
    return seed_cache, failure


def _evaluate_partial(
    selection: Selection,
    db: Database,
    stats: Optional[EvaluationStats],
    budget: Budget,
    order: str,
    allow_disconnected: bool = False,
    tracer=None,
    memo=None,
    parallel=None,
) -> set[tuple]:
    """Operational Lemma 2.1: ``t_part`` answers plus per-seed ``t_full``.

    The evaluation is a union of full selections.  When any branch
    raises :class:`BudgetExceeded`, the exception leaves here carrying
    the *merged* statistics of every completed branch (not just the
    failing one) and the answers assembled so far as
    :attr:`~repro.errors.BudgetExceeded.partial` -- the query service
    degrades those into a ``PartialResult`` instead of a bare error.

    The union branches are independent (Theorem 2.1), so with a
    :class:`~repro.parallel.ParallelExecutor` and enough distinct
    seeds they fan out across the worker pool
    (:func:`_fanout_branches`); answers and merged statistics stay
    deterministic because the merge happens in seed-discovery order.
    """
    analysis = selection.analysis
    cls = choose_rewrite_class(analysis, set(selection.bound))
    answers: set[tuple] = set()

    try:
        # t_part: the recursion without cls; the same query is full
        # there because cls's columns are persistent in t_part.
        part_program = program_without_class(analysis, cls)
        part_analysis = require_separable(
            part_program, analysis.predicate,
            allow_disconnected=allow_disconnected,
        )
        part_selection = classify_selection(part_analysis, selection.query)
        if part_selection.is_full:
            answers |= _evaluate_full(part_selection, db, stats, budget,
                                      order, tracer, memo, parallel)
        else:  # pragma: no cover - cannot happen: bound cls cols are pers
            answers |= _evaluate_partial(
                part_selection, db, stats, budget, order,
                allow_disconnected=allow_disconnected, tracer=tracer,
                memo=memo, parallel=parallel,
            )

        # t_full: sideways pass through each rule of cls produces fully
        # bound seeds; evaluate the original recursion once per seed.
        plan = compile_plan(analysis, selected_class=cls)
        head_vars = analysis.head_vars
        init = {
            head_vars[p]: selection.bound[p]
            for p in cls.positions
            if p in selection.bound
        }
        seed_terms = {
            a.index: tuple(a.recursive_atom.args[p] for p in cls.positions)
            for a in analysis.rules_of_class(cls)
        }
        head_terms = tuple(head_vars[p] for p in cls.positions)
        rows: list[tuple[tuple, tuple]] = []
        for a in analysis.rules_of_class(cls):
            for bindings in evaluate_body(
                db, a.nonrecursive_atoms, initial_bindings=init,
                stats=stats, order=order, tracer=tracer,
            ):
                rows.append((
                    instantiate_args(seed_terms[a.index], bindings),
                    instantiate_args(head_terms, bindings),
                ))
        seeds: list[tuple] = []
        seen_seeds: set[tuple] = set()
        for seed, _ in rows:
            if seed not in seen_seeds:
                seen_seeds.add(seed)
                seeds.append(seed)

        seed_cache: dict[tuple, frozenset[tuple]] = {}
        failure: Optional[BaseException] = None
        if (
            parallel is not None
            and parallel.active
            and len(seeds) >= parallel.config.min_branch_tasks
        ):
            seed_cache, failure = _fanout_branches(
                plan, analysis, cls, seeds, db, stats, budget, order,
                memo, parallel, tracer=tracer,
            )
        for seed, fixed_values in rows:
            cached = seed_cache.get(seed)
            if cached is None:
                if failure is not None:
                    continue  # branch never completed before the trip
                key = full_selection_key(
                    analysis, cls, cls.positions, seed, order,
                )
                cached = _run_plan(plan, key, db, seed, stats,
                                   budget, order, tracer, memo, parallel)
                seed_cache[seed] = cached
            fixed = dict(zip(cls.positions, fixed_values))
            answers |= _assemble(analysis.arity, plan, fixed, cached)
        if failure is not None:
            raise failure
    except BudgetExceeded as exc:
        # The failing branch attached only its own stats; replace them
        # with the union accumulator (which the completed branches
        # already merged into) and keep the answers assembled so far.
        if stats is not None:
            exc.stats = stats
        if exc.partial is None:
            exc.partial = frozenset(
                f for f in answers if _matches_query(f, selection.query)
            )
        raise
    return answers


def evaluate_separable(
    program: Program,
    db: Database,
    query: Atom,
    analysis: Optional[RecursionAnalysis] = None,
    stats: Optional[EvaluationStats] = None,
    budget: Budget = UNLIMITED,
    order: str = "greedy",
    allow_disconnected: bool = False,
    tracer=None,
    memo=None,
    parallel=None,
) -> frozenset[tuple]:
    """Answer a selection query on a separable recursion.

    Parameters
    ----------
    program:
        Must contain the definition of ``query.predicate``; used for
        detection when ``analysis`` is not supplied.
    db:
        Extents for every base predicate the recursion mentions.  If
        base predicates are themselves IDB, materialize them first (the
        engine does this automatically).
    query:
        The query atom; at least one argument must be a constant.
    analysis:
        A pre-computed :class:`RecursionAnalysis` to skip re-detection.
    memo:
        An optional full-selection memo (anything with ``get_or_run(key,
        compute)``, e.g. :class:`repro.service.FullSelectionMemo`):
        every carry/seen run -- the direct one for a full selection, and
        each branch of the Lemma 2.1 union for a partial one -- is
        served from it when already answered, and computed once under a
        fresh branch ``EvaluationStats`` otherwise.  The caller must
        scope the memo (or the keys) to this exact ``db`` snapshot.
    parallel:
        An optional :class:`~repro.parallel.ParallelExecutor`.  Partial
        selections fan their Lemma 2.1 union branches across the worker
        pool, and large carry iterations hash-partition within a loop;
        answers are byte-identical to the serial run (see
        ``docs/parallelism.md``).  ``None`` (or an inactive executor)
        keeps everything in-process.

    Returns the full-arity answer tuples matching the query atom.
    """
    tracer = live(tracer)
    if analysis is None:
        analysis = require_separable(
            program, query.predicate,
            allow_disconnected=allow_disconnected,
        )
    if stats is not None and not stats.strategy:
        stats.strategy = "separable"
    selection = classify_selection(analysis, query)
    if not selection.has_constants:
        raise NotFullSelectionError(
            f"query {query} has no selection constants; the Separable "
            f"algorithm evaluates selections (use semi-naive "
            f"materialization for all-free queries)"
        )
    if selection.is_full:
        answers = _evaluate_full(selection, db, stats, budget, order,
                                 tracer, memo, parallel)
    else:
        answers = _evaluate_partial(
            selection, db, stats, budget, order,
            allow_disconnected=allow_disconnected, tracer=tracer,
            memo=memo, parallel=parallel,
        )
    result = frozenset(
        fact for fact in answers if _matches_query(fact, query)
    )
    if stats is not None:
        stats.record_relation("ans", len(result))
    return result
