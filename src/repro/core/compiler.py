"""Instantiating the Separable evaluation schema (Section 3.3).

:func:`compile_plan` turns a :class:`~repro.core.analysis.RecursionAnalysis`
plus a choice of selected component into a
:class:`~repro.core.plan.SeparablePlan`:

* **class-driven** (the selection constants fully bind some equivalence
  class ``e_1``): the down loop applies the rules of ``e_1`` head-to-body
  (computing every value the ``t|e_1`` columns take at recursive call
  sites -- the paper's ``seen_1``); the up loop applies the rules of all
  other classes body-to-head.
* **pers-driven** (a constant sits in ``t|pers``): lines 1-7 collapse to
  ``seen_1 := {x_0}`` and *every* class runs in the up loop, exactly the
  paper's "dummy equivalence class" construction.

The asymmetry mirrors the left-to-right string evaluation of Section
3.4: predicate instances produced by ``e_1`` sit left of ``t_0`` and are
evaluated top-down from the constants; instances of the other classes
sit right of ``t_0`` and are evaluated bottom-up from its tuples.
"""

from __future__ import annotations

from typing import Sequence

from ..datalog.atoms import Atom
from ..datalog.errors import NotFullSelectionError
from ..datalog.terms import Term, Variable
from .analysis import EquivalenceClass, RecursionAnalysis, RuleAnalysis
from .plan import CARRY, SEEN, CarryJoin, SeparablePlan
from .selections import Selection

__all__ = ["compile_plan", "compile_selection"]


def _down_join(a: RuleAnalysis, positions: tuple[int, ...]) -> CarryJoin:
    """``f_1`` term for one rule of the selected class.

    The carry holds values of the *head* variables at the class columns;
    joining the rule's nonrecursive atoms yields the corresponding
    *body*-instance values -- the bindings passed down to the next
    recursion level (compare Figure 3's
    ``carry_1(W) := carry_1(X) & f(X, W)``).
    """
    head_terms = tuple(a.rule.head.args[p] for p in positions)
    carry_atom = Atom(CARRY, head_terms)
    output = tuple(a.recursive_atom.args[p] for p in positions)
    return CarryJoin(
        label=f"r{a.index + 1}",
        body=(carry_atom,) + a.nonrecursive_atoms,
        output=output,
        rule_index=a.index,
    )


def _up_join(
    a: RuleAnalysis,
    up_positions: tuple[int, ...],
) -> CarryJoin:
    """``f_2`` term for one rule of a non-selected class.

    The carry holds values of the *body*-instance terms at every answer
    column; the rule's own class columns get joined through its
    nonrecursive atoms to produce the *head* values, while columns of
    other classes and persistent columns pass through unchanged
    (their body terms equal their head terms by Conditions 1-2).
    """
    carry_terms = tuple(a.recursive_atom.args[p] for p in up_positions)
    carry_atom = Atom(CARRY, carry_terms)
    output = tuple(a.rule.head.args[p] for p in up_positions)
    return CarryJoin(
        label=f"r{a.index + 1}",
        body=(carry_atom,) + a.nonrecursive_atoms,
        output=output,
        rule_index=a.index,
    )


def _exit_join(
    exit_rule,
    exit_index: int,
    selected_positions: tuple[int, ...],
    up_positions: tuple[int, ...],
) -> CarryJoin:
    """``carry_2`` initialization term for one exit rule (line 8).

    Joins the exit rule's body with ``seen_1`` on the selected columns
    and projects the answer columns (compare
    ``carry_2(W) := seen_1(X) & t_0(X, W)``).
    """
    seen_terms = tuple(exit_rule.head.args[p] for p in selected_positions)
    seen_atom = Atom(SEEN, seen_terms)
    output = tuple(exit_rule.head.args[p] for p in up_positions)
    return CarryJoin(
        label=f"exit{exit_index + 1}",
        body=(seen_atom,) + tuple(exit_rule.body),
        output=output,
        rule_index=exit_index,
    )


def compile_plan(
    analysis: RecursionAnalysis,
    selected_class: EquivalenceClass | None = None,
    pers_positions: Sequence[int] = (),
) -> SeparablePlan:
    """Instantiate the schema for one selected component.

    Exactly one of ``selected_class`` / ``pers_positions`` must be
    given: a fully bound equivalence class, or the bound persistent
    columns for the dummy-class case.
    """
    if (selected_class is None) == (not pers_positions):
        raise ValueError(
            "provide exactly one of selected_class or pers_positions"
        )

    if selected_class is not None:
        selected_positions = selected_class.positions
        down_rules = analysis.rules_of_class(selected_class)
        up_classes = tuple(
            c for c in analysis.classes if c.index != selected_class.index
        )
        selected_index: int | None = selected_class.index
    else:
        bad = [p for p in pers_positions if p not in analysis.pers_positions]
        if bad:
            raise ValueError(
                f"positions {bad} are not persistent columns of "
                f"{analysis.predicate}"
            )
        selected_positions = tuple(sorted(pers_positions))
        down_rules = ()
        up_classes = analysis.classes
        selected_index = None

    up_positions = tuple(
        p for p in range(analysis.arity) if p not in selected_positions
    )

    down_joins = tuple(
        _down_join(a, selected_positions) for a in down_rules
    )
    up_joins = tuple(
        _up_join(a, up_positions)
        for cls in up_classes
        for a in analysis.rules_of_class(cls)
    )
    exit_joins = tuple(
        _exit_join(r, i, selected_positions, up_positions)
        for i, r in enumerate(analysis.exit_rules)
    )
    return SeparablePlan(
        predicate=analysis.predicate,
        arity=analysis.arity,
        selected_positions=selected_positions,
        up_positions=up_positions,
        down_joins=down_joins,
        exit_joins=exit_joins,
        up_joins=up_joins,
        selected_class_index=selected_index,
    )


def compile_selection(selection: Selection) -> SeparablePlan:
    """Compile a plan for a classified *full* selection."""
    if not selection.is_full:
        raise NotFullSelectionError(
            f"query {selection.query} is not a full selection; use the "
            f"Lemma 2.1 rewrite (repro.core.rewrite) first"
        )
    if selection.selected_class is not None:
        return compile_plan(
            selection.analysis, selected_class=selection.selected_class
        )
    return compile_plan(
        selection.analysis, pers_positions=selection.selected_positions
    )
