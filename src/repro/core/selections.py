"""Selections on a separable recursion and the full-selection test.

A query like ``buys(tom, Y)?`` is a *selection*: some argument positions
of the query predicate carry constants.  Definition 2.7 calls a
selection *full* when either

* some persistent column (``t|pers``) carries a constant, or
* every column of at least one equivalence class ``e_i`` carries one.

The Separable evaluation schema (Figure 2) handles full selections
directly; partial selections go through the Lemma 2.1 rewrite
(:mod:`repro.core.rewrite`).  This module classifies a query against a
:class:`~repro.core.analysis.RecursionAnalysis` and picks the *selected
component* -- the dummy pers class or a fully bound equivalence class --
the compiler will drive the first carry loop with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..datalog.atoms import Atom
from ..datalog.errors import NotFullSelectionError
from ..datalog.terms import Constant, ConstValue, Variable
from .analysis import EquivalenceClass, RecursionAnalysis

__all__ = [
    "Selection",
    "SelectionDirtiness",
    "classify_selection",
    "component_positions",
]


@dataclass(frozen=True)
class Selection:
    """A classified selection query on a separable recursion.

    Attributes
    ----------
    query:
        The original query atom.
    bound:
        ``{position: constant value}`` for every constant in the query.
    selected_class:
        The fully bound equivalence class driving the first carry loop,
        or ``None`` when the selection is driven by persistent columns
        (the paper's "dummy equivalence class" case) -- or when the
        selection is not full.
    selected_positions:
        The seed columns: the selected class's positions, or the bound
        persistent positions for a pers-driven selection.
    """

    query: Atom
    analysis: RecursionAnalysis
    bound: dict[int, ConstValue]
    selected_class: Optional[EquivalenceClass]
    selected_positions: tuple[int, ...]

    @property
    def is_full(self) -> bool:
        """Definition 2.7."""
        return bool(self.selected_positions)

    @property
    def has_constants(self) -> bool:
        return bool(self.bound)

    @property
    def seed(self) -> tuple[ConstValue, ...]:
        """The vector ``x_0`` of selection constants, in seed-column order."""
        return tuple(self.bound[p] for p in self.selected_positions)

    def residual_bound(self) -> dict[int, ConstValue]:
        """Constants outside the selected component.

        Definition 2.7 only needs one component fully bound; any other
        constants in the query are applied as a final filter on the
        answers (they cannot seed a second carry loop).
        """
        return {
            p: v
            for p, v in self.bound.items()
            if p not in self.selected_positions
        }

    def partially_bound_classes(self) -> tuple[EquivalenceClass, ...]:
        """Classes with at least one but not all columns bound.

        Nonempty exactly when a Lemma 2.1 rewrite is needed (assuming
        the selection has constants but is not full).
        """
        result = []
        for cls in self.analysis.classes:
            bound = sum(1 for p in cls.positions if p in self.bound)
            if 0 < bound < len(cls.positions):
                result.append(cls)
        return tuple(result)


def classify_selection(
    analysis: RecursionAnalysis, query: Atom
) -> Selection:
    """Classify ``query`` against the analysis (Definition 2.7).

    Picks the selected component with this preference order:

    1. bound persistent columns, if any (the dummy-class case -- always
       full, and the cheapest since it skips the first loop entirely);
    2. otherwise, the fully bound equivalence class with the most
       columns (most selective seed).
    """
    if query.predicate != analysis.predicate:
        raise ValueError(
            f"query {query} does not match predicate {analysis.predicate}"
        )
    if query.arity != analysis.arity:
        raise ValueError(
            f"query {query} has arity {query.arity}, expected "
            f"{analysis.arity}"
        )
    bound: dict[int, ConstValue] = {
        p: t.value
        for p, t in enumerate(query.args)
        if isinstance(t, Constant)
    }
    # Repeated query variables (e.g. t(X, X)?) add an implicit equality;
    # they do not affect fullness and are filtered by the caller.

    pers_bound = tuple(
        p for p in analysis.pers_positions if p in bound
    )
    if pers_bound:
        return Selection(
            query=query,
            analysis=analysis,
            bound=bound,
            selected_class=None,
            selected_positions=pers_bound,
        )

    best: Optional[EquivalenceClass] = None
    for cls in analysis.classes:
        if all(p in bound for p in cls.positions):
            if best is None or cls.width > best.width:
                best = cls
    if best is not None:
        return Selection(
            query=query,
            analysis=analysis,
            bound=bound,
            selected_class=best,
            selected_positions=best.positions,
        )
    return Selection(
        query=query,
        analysis=analysis,
        bound=bound,
        selected_class=None,
        selected_positions=(),
    )


def component_positions(
    analysis: RecursionAnalysis, component: tuple
) -> tuple[int, ...]:
    """Argument positions of a memo-key component.

    ``component`` is the discriminated pair a
    :func:`repro.core.api.full_selection_key` carries: ``("class", i)``
    for equivalence class ``e_i`` or ``("pers", positions)`` for a
    pers-driven (dummy class) selection.
    """
    kind, payload = component
    if kind == "class":
        for cls in analysis.classes:
            if cls.index == payload:
                return cls.positions
        raise ValueError(
            f"analysis of {analysis.predicate} has no class {payload}"
        )
    if kind == "pers":
        return tuple(payload)
    raise ValueError(f"unknown selection component kind {kind!r}")


class SelectionDirtiness:
    """Which full-selection keys a set of changed ``t`` facts dirties.

    Theorem 2.1 makes the equivalence classes independent: the answers
    of the full selection ``(component, seed)`` are exactly the ``t``
    facts whose projection onto the component's positions equals the
    seed, so a mutation dirties the key iff some changed fact projects
    onto it.  Projections are computed once per distinct position set
    and shared across every key the memo holds for this analysis.
    """

    def __init__(self, analysis: RecursionAnalysis, changed_facts) -> None:
        self.analysis = analysis
        self._changed = tuple(changed_facts)
        self._seen: dict[tuple[int, ...], frozenset[tuple]] = {}

    def dirty(self, component: tuple, seed: tuple) -> bool:
        positions = component_positions(self.analysis, component)
        seen = self._seen.get(positions)
        if seen is None:
            seen = frozenset(
                tuple(fact[p] for p in positions) for fact in self._changed
            )
            self._seen[positions] = seen
        return tuple(seed) in seen


def require_full(selection: Selection) -> Selection:
    """Return the selection, or raise if it is not full (Definition 2.7)."""
    if not selection.is_full:
        raise NotFullSelectionError(
            f"query {selection.query} is not a full selection on "
            f"{selection.analysis.predicate}: no persistent column is "
            f"bound and no equivalence class is fully bound"
        )
    return selection
