"""Generalized Magic Sets [BMSU86, BR87], as compared against in Section 4.

Given a program and a selection query, the rewrite produces:

* a seed fact ``magic_p__a(c...)`` from the query constants,
* one *magic rule* per IDB body occurrence, passing bindings sideways:
  ``magic_q__a'(bound args of q) :- magic_p__a(bound head args) &
  preceding body atoms``,
* one *modified rule* per adorned rule, guarded by its magic predicate:
  ``p__a(head) :- magic_p__a(bound head args) & body`` with IDB body
  atoms replaced by their adorned copies.

This is the non-supplementary variant -- exactly the rules the paper
displays for Example 1.2::

    magic(tom).
    magic(W) :- magic(X) & friend(X, W).
    buys(X, Y) :- magic(X) & perfectFor(X, Y).
    buys(X, Y) :- magic(X) & friend(X, W) & buys(W, Y).
    buys(X, Y) :- magic(X) & buys(X, Z) & cheaper(Z, Y).

The rewritten program is evaluated semi-naively; the relations the
method "generates" (Definition 4.2) are the ``magic_*`` relations plus
the adorned IDB relations, and Lemma 4.2 / the Example 1.2 analysis
concern their sizes.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Optional

from ..budget import Budget, UNLIMITED
from ..datalog.atoms import Atom
from ..datalog.database import Database
from ..datalog.errors import UnknownPredicateError
from ..datalog.programs import Program
from ..datalog.rules import Rule
from ..datalog.seminaive import seminaive_evaluate
from ..datalog.terms import Constant
from ..observability.tracer import live
from ..stats import EvaluationStats
from .adornment import (
    AdornedAtom,
    AdornedRule,
    Adornment,
    adorn_program,
    adorned_name,
)

__all__ = ["magic_rewrite", "MagicRewrite", "evaluate_magic"]


def _magic_name(predicate: str, adornment: Adornment) -> str:
    return f"magic_{adorned_name(predicate, adornment)}"


def _replace_idb(item: object) -> Atom:
    """Body atom as it appears in the rewritten program."""
    if isinstance(item, AdornedAtom):
        return Atom(
            adorned_name(item.atom.predicate, item.adornment),
            item.atom.args,
        )
    assert isinstance(item, Atom)
    return item


class MagicRewrite:
    """The result of a Magic Sets rewrite, ready to evaluate.

    Attributes
    ----------
    program:
        The rewritten Datalog program (magic rules + modified rules).
    seed:
        The seed fact, e.g. ``magic_buys__bf(tom)``.
    answer_predicate:
        The adorned copy of the query predicate, whose relation holds
        the answers after evaluation.
    generated_predicates:
        Every relation the method generates (all magic and adorned
        predicates) -- the Definition 4.2 measure.
    """

    def __init__(
        self,
        program: Program,
        seed: Atom,
        answer_predicate: str,
        generated_predicates: frozenset[str],
        query: Atom,
    ) -> None:
        self.program = program
        self.seed = seed
        self.answer_predicate = answer_predicate
        self.generated_predicates = generated_predicates
        self.query = query

    def __repr__(self) -> str:
        return (
            f"MagicRewrite({len(self.program)} rules, "
            f"seed={self.seed}, answers in {self.answer_predicate})"
        )


def _needed_after(
    ar: AdornedRule, index: int
) -> frozenset:
    """Variables required by atoms after position ``index`` or the head."""
    needed = set(ar.rule.head.variable_set())
    for item in ar.body[index:]:
        atom_obj = item.atom if isinstance(item, AdornedAtom) else item
        needed |= atom_obj.variable_set()
    return frozenset(needed)


def _supplementary_rules(
    predicate: str,
    adornment: Adornment,
    rule_index: int,
    ar: AdornedRule,
) -> list[Rule]:
    """The supplementary-magic rewrite of one adorned rule [BR87].

    Emits ``sup_{r,0} :- magic``, ``sup_{r,i} :- sup_{r,i-1} & q_i``,
    one magic rule per IDB subgoal fed from the preceding supplementary,
    and the final ``p^a :- sup_{r,n}``.
    """
    prefix = f"sup__{adorned_name(predicate, adornment)}__{rule_index}"
    magic_atom = Atom(
        _magic_name(predicate, adornment), ar.bound_head_terms()
    )

    bound_vars = {
        t for t in ar.bound_head_terms() if not isinstance(t, Constant)
    }
    sup_vars = tuple(
        v for v in sorted(bound_vars, key=str) if v in _needed_after(ar, 0)
    )
    rules = [Rule(Atom(f"{prefix}__0", sup_vars), (magic_atom,))]
    previous = Atom(f"{prefix}__0", sup_vars)

    known = set(bound_vars)
    for i, item in enumerate(ar.body, start=1):
        atom_obj = item.atom if isinstance(item, AdornedAtom) else item
        if isinstance(item, AdornedAtom):
            rules.append(
                Rule(
                    Atom(
                        _magic_name(item.atom.predicate, item.adornment),
                        item.bound_terms(),
                    ),
                    (previous,),
                )
            )
        known |= atom_obj.variable_set()
        needed = _needed_after(ar, i)
        sup_vars = tuple(
            v for v in sorted(known, key=str) if v in needed
        )
        target = Atom(f"{prefix}__{i}", sup_vars)
        rules.append(Rule(target, (previous, _replace_idb(item))))
        previous = target

    head = Atom(adorned_name(predicate, adornment), ar.rule.head.args)
    rules.append(Rule(head, (previous,)))
    return rules


def magic_rewrite(
    program: Program, query: Atom, style: str = "basic"
) -> MagicRewrite:
    """Rewrite ``program`` for ``query`` with Generalized Magic Sets.

    ``style="basic"`` (default) emits the non-supplementary rules the
    paper displays in Section 4; ``style="supplementary"`` emits the
    supplementary-magic variant of [BR87], which factors each rule
    through ``sup_{r,i}`` relations (same answers, same asymptotic
    shapes, different constants -- compared in the tests).
    """
    if style not in ("basic", "supplementary"):
        raise ValueError(f"unknown magic style {style!r}")
    if query.predicate not in program.idb_predicates:
        raise UnknownPredicateError(
            f"{query.predicate} is not an IDB predicate"
        )
    adorned, query_adornment = adorn_program(program, query)

    if style == "supplementary":
        rules: list[Rule] = []
        for (predicate, adornment), adorned_rules in sorted(adorned.items()):
            for rule_index, ar in enumerate(adorned_rules):
                rules.extend(
                    _supplementary_rules(
                        predicate, adornment, rule_index, ar
                    )
                )
        seed = Atom(
            _magic_name(query.predicate, query_adornment),
            tuple(t for t in query.args if isinstance(t, Constant)),
        )
        rewritten_program = Program(rules)
        generated = frozenset(
            p
            for p in rewritten_program.idb_predicates
        )
        return MagicRewrite(
            rewritten_program,
            seed,
            adorned_name(query.predicate, query_adornment),
            generated,
            query,
        )

    rules = []
    for (predicate, adornment), adorned_rules in sorted(adorned.items()):
        for ar in adorned_rules:
            magic_head_args = ar.bound_head_terms()
            magic_atom = Atom(
                _magic_name(predicate, adornment), magic_head_args
            )
            guard = (magic_atom,)

            # Magic rules: one per IDB body occurrence.
            preceding: list[Atom] = []
            for item in ar.body:
                if isinstance(item, AdornedAtom):
                    target = Atom(
                        _magic_name(item.atom.predicate, item.adornment),
                        item.bound_terms(),
                    )
                    # Skip trivial self-implications such as
                    # ``magic_p(X) :- magic_p(X).`` (arises when a rule
                    # passes its binding to the recursive call unchanged).
                    if not (target == magic_atom and not preceding):
                        rules.append(
                            Rule(target, guard + tuple(preceding))
                        )
                preceding.append(_replace_idb(item))

            # Modified rule: guard the original rule with its magic atom.
            new_head = Atom(
                adorned_name(predicate, adornment), ar.rule.head.args
            )
            rules.append(Rule(new_head, guard + tuple(preceding)))

    seed = Atom(
        _magic_name(query.predicate, query_adornment),
        tuple(t for t in query.args if isinstance(t, Constant)),
    )
    generated = frozenset(
        name
        for (p, a) in adorned
        for name in (adorned_name(p, a), _magic_name(p, a))
    )
    return MagicRewrite(
        Program(rules),
        seed,
        adorned_name(query.predicate, query_adornment),
        generated,
        query,
    )


def evaluate_magic(
    program: Program,
    edb: Database,
    query: Atom,
    stats: Optional[EvaluationStats] = None,
    budget: Budget = UNLIMITED,
    order: str = "greedy",
    style: str = "basic",
    tracer=None,
) -> frozenset[tuple]:
    """Answer ``query`` by Magic Sets: rewrite, evaluate, select.

    Relation sizes of every generated (magic / adorned / supplementary)
    predicate are recorded in ``stats`` under their rewritten names.
    """
    tracer = live(tracer)
    if stats is not None and not stats.strategy:
        stats.strategy = "magic"
    rewrite_cm = (
        tracer.span("magic.rewrite", style=style)
        if tracer is not None
        else nullcontext()
    )
    with rewrite_cm as rewrite_span:
        rewrite = magic_rewrite(program, query, style=style)
        if rewrite_span is not None:
            rewrite_span.attrs["rules"] = len(rewrite.program)
    db = edb.copy()
    db.add_ground_atom(rewrite.seed)
    result = seminaive_evaluate(
        rewrite.program, db, stats=stats, budget=budget, order=order,
        tracer=tracer,
    )
    answers: set[tuple] = set()
    constants = [
        (i, t.value)
        for i, t in enumerate(query.args)
        if isinstance(t, Constant)
    ]
    variable_groups: dict[object, list[int]] = {}
    for i, t in enumerate(query.args):
        if not isinstance(t, Constant):
            variable_groups.setdefault(t, []).append(i)
    for fact in result.tuples(rewrite.answer_predicate):
        if any(fact[i] != v for i, v in constants):
            continue
        if any(
            len({fact[i] for i in positions}) != 1
            for positions in variable_groups.values()
        ):
            continue
        answers.add(fact)
    if stats is not None:
        stats.record_relation("ans", len(answers))
    return frozenset(answers)
