"""Ablation: the Separable schema *without* the seen-difference dedup.

Lines 5 and 12 of Figure 2 (``carry := carry - seen``) are what make
the Separable algorithm terminate on cyclic data (Lemma 3.4) and touch
each tuple at most once.  This evaluator runs the same compiled plan
with those lines removed, in the spirit of iterative algorithms like
Henschen-Naqvi [HN84] that track levels without global duplicate
elimination -- and, like them, it fails on cyclic data.

Behaviour:

* on acyclic data it returns the same answers as the real evaluator,
  but ``tuples_produced`` grows with the number of distinct derivation
  paths rather than distinct tuples (quantified in benchmark E8);
* on cyclic data the carry sequence revisits a previous state, which is
  detected and surfaced as
  :class:`~repro.datalog.errors.CyclicDataError` (the paper: "the
  general Henschen and Naqvi algorithm fails for cyclic data").
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Iterable, Optional

from ..budget import Budget, UNLIMITED
from ..core.plan import CARRY, SEEN, SeparablePlan
from ..datalog.database import Database, Relation
from ..datalog.errors import CyclicDataError
from ..observability.tracer import live
from ..stats import EvaluationStats
from ..core.evaluator import _apply_joins, _with_pseudo

__all__ = ["execute_plan_nodedup"]


def _carry_loop_nodedup(
    joins,
    initial: set[tuple],
    arity: int,
    db: Database,
    carry_name: str,
    seen_name: str,
    stats: Optional[EvaluationStats],
    budget: Budget,
    order: str,
    tracer=None,
) -> set[tuple]:
    """A Figure 2 loop with lines 5/12 removed (no set difference).

    Terminates when the carry empties (acyclic data) or raises
    :class:`CyclicDataError` when a carry state repeats.  Traced under
    ``nodedup.loop`` -- deliberately *not* ``separable.loop``, since
    without the set difference the carries are not disjoint and the
    Lemma 3.4 carry invariants do not hold for this ablation.
    """
    seen: set[tuple] = set(initial)
    carry: set[tuple] = set(initial)
    visited_states: set[frozenset[tuple]] = {frozenset(carry)}
    if stats is not None:
        stats.record_relation(carry_name, len(carry))
        stats.record_relation(seen_name, len(seen))
    span_cm = (
        tracer.span("nodedup.loop", relation=seen_name,
                    seed=len(initial))
        if tracer is not None
        else nullcontext()
    )
    with span_cm:
        while carry:
            budget.check_wall(stats)
            if stats is not None:
                stats.bump_iterations()
            if tracer is not None:
                tracer.count("iterations")
            view = _with_pseudo(db, CARRY, Relation(CARRY, arity, carry))
            carry = _apply_joins(joins, view, stats, order, tracer,
                                 label=seen_name)
            seen |= carry
            if tracer is not None:
                tracer.record("carry", len(carry))
            if stats is not None:
                stats.record_relation(carry_name, len(carry))
                stats.record_relation(seen_name, len(seen))
                budget.check_relation(seen_name, len(seen), stats)
                budget.check_stats(stats)
            state = frozenset(carry)
            if carry and state in visited_states:
                raise CyclicDataError(
                    f"carry state of {carry_name} repeated without the "
                    f"seen-difference; the data is cyclic and the "
                    f"no-dedup iteration diverges",
                    stats=stats,
                )
            visited_states.add(state)
    return seen


def execute_plan_nodedup(
    plan: SeparablePlan,
    db: Database,
    seeds: Iterable[tuple],
    stats: Optional[EvaluationStats] = None,
    budget: Budget = UNLIMITED,
    order: str = "greedy",
    tracer=None,
) -> frozenset[tuple]:
    """Run a compiled Separable plan without duplicate elimination."""
    tracer = live(tracer)
    if stats is not None and not stats.strategy:
        stats.strategy = "nodedup"
    seed_set = {tuple(s) for s in seeds}
    seen_1 = _carry_loop_nodedup(
        plan.down_joins, seed_set, plan.seed_arity, db,
        "carry_1", "seen_1", stats, budget, order, tracer,
    )
    view = _with_pseudo(db, SEEN, Relation(SEEN, plan.seed_arity, seen_1))
    carry_2 = _apply_joins(plan.exit_joins, view, stats, order, tracer)
    seen_2 = _carry_loop_nodedup(
        plan.up_joins, carry_2, plan.answer_arity, db,
        "carry_2", "seen_2", stats, budget, order, tracer,
    )
    if stats is not None:
        stats.record_relation("ans", len(seen_2))
    return frozenset(seen_2)
