"""The Generalized Counting Method [BMSU86, BR87, SZ86], path-indexed.

Section 4 of the paper displays the counting rules it compares against,
e.g. for Example 1.1::

    count(1, 1, 1, tom).
    count(i+1, 2j,   2k, W) :- count(i, j, k, X) & friend(X, W).
    count(i+1, 2j+1, 2k, W) :- count(i, j, k, X) & idol(X, W).

The third index encodes *which sequence of rules* was applied -- the
derivation path -- so the ``count`` relation holds one tuple per
(level, path, value), which is what makes the method Omega(2^n) on
Example 1.1 and Omega(p^n) on the Lemma 4.3 family: it tracks exactly
the per-derivation information that Theorem 2.1 proves irrelevant for
separable recursions.

We implement the method as a direct two-phase evaluator rather than a
rule rewrite (the arithmetic on the indices is not Datalog):

* **descent**: from the query constants, apply every recursive rule's
  *down part* (the nonrecursive atoms connected to the bound columns),
  extending the path by the rule index; ``count`` is the set of
  ``(level, path, bound-column values)`` triples.
* **ascent**: seed per-(level, path) answer sets from the exit rules,
  then replay each path backwards, applying each rule's *up part* (the
  nonrecursive atoms connected to the free columns) in reverse order.

As in the literature, the method requires acyclic data: on cyclic
databases the descent never terminates, which we surface as
:class:`~repro.datalog.errors.CyclicDataError` once the level exceeds
the pigeonhole bound (a path longer than the number of distinct
bound-column vectors must repeat one).  Rules whose down part cannot
bind the next level's bound columns, or whose nonrecursive atoms mix
bound- and free-column variables in one connected component, make the
method inapplicable (:class:`CountingNotApplicable`).
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Optional

from ..budget import Budget, UNLIMITED
from ..datalog.atoms import Atom, connected_components
from ..datalog.database import Database, Relation
from ..datalog.errors import CyclicDataError, EvaluationError
from ..datalog.joins import evaluate_body_project
from ..datalog.programs import Program
from ..datalog.rectify import rectify_definition
from ..datalog.rules import Rule
from ..datalog.terms import Constant, ConstValue, Variable
from ..observability.tracer import live
from ..stats import EvaluationStats

__all__ = [
    "CountingNotApplicable",
    "CountingPlan",
    "compile_counting",
    "counting_rules_text",
    "evaluate_counting",
]

_CARRY = "__count_carry__"


class CountingNotApplicable(EvaluationError):
    """The recursion/query shape is outside the counting method's class."""


@dataclass(frozen=True)
class _CountingRule:
    """Per-rule split into down and up parts for one binding pattern."""

    index: int
    down_atoms: tuple[Atom, ...]
    up_atoms: tuple[Atom, ...]
    #: head-variable terms at bound positions (join the carry here).
    down_input: tuple[Variable, ...]
    #: recursive-atom terms at bound positions (next level's values).
    down_output: tuple[Variable, ...]
    #: recursive-atom terms at free positions (join ascent carry here).
    up_input: tuple[Variable, ...]
    #: head terms at free positions (the ascended values).
    up_output: tuple[Variable, ...]


@dataclass(frozen=True)
class CountingPlan:
    """A compiled counting evaluation for one binding pattern."""

    predicate: str
    arity: int
    bound_positions: tuple[int, ...]
    free_positions: tuple[int, ...]
    rules: tuple[_CountingRule, ...]
    exit_rules: tuple[Rule, ...]
    head_vars: tuple[Variable, ...]


def compile_counting(program: Program, query: Atom) -> CountingPlan:
    """Split each recursive rule into down/up parts for ``query``.

    Raises :class:`CountingNotApplicable` when some rule cannot be
    split: a connected component of its nonrecursive atoms touches both
    bound-side and free-side variables, or the bound columns of the
    recursive call are not determined by the down part.
    """
    definition = program.definition(query.predicate)
    definition.check_linear()
    if not definition.exit_rules:
        raise CountingNotApplicable(
            f"{query.predicate} has no exit rule"
        )
    all_rules = rectify_definition(
        list(definition.recursive_rules) + list(definition.exit_rules)
    )
    n_rec = len(definition.recursive_rules)
    rec_rules, exit_rules = all_rules[:n_rec], all_rules[n_rec:]

    bound_positions = tuple(
        i for i, t in enumerate(query.args) if isinstance(t, Constant)
    )
    if not bound_positions:
        raise CountingNotApplicable(
            "counting requires at least one bound argument in the query"
        )
    free_positions = tuple(
        i for i in range(query.arity) if i not in bound_positions
    )

    head_vars = tuple(rec_rules[0].head.args) if rec_rules else tuple(
        exit_rules[0].head.args
    )

    counting_rules: list[_CountingRule] = []
    for index, r in enumerate(rec_rules):
        recursive = r.recursive_atom(query.predicate)
        assert recursive is not None
        if any(isinstance(t, Constant) for t in recursive.args):
            raise CountingNotApplicable(
                f"rule {r}: constant in recursive body instance"
            )
        nonrec = r.nonrecursive_body(query.predicate)

        bound_side: set[Variable] = set()
        free_side: set[Variable] = set()
        for p in range(r.head.arity):
            head_term = r.head.args[p]
            body_term = recursive.args[p]
            side = bound_side if p in bound_positions else free_side
            if isinstance(head_term, Variable):
                side.add(head_term)
            if isinstance(body_term, Variable):
                side.add(body_term)
        if bound_side & free_side:
            raise CountingNotApplicable(
                f"rule {r}: variable(s) "
                f"{sorted(v.name for v in bound_side & free_side)} shift "
                f"between bound and free columns"
            )

        down_atoms: list[Atom] = []
        up_atoms: list[Atom] = []
        for component in connected_components(list(nonrec)):
            component_vars: set[Variable] = set()
            for a in component:
                component_vars |= a.variable_set()
            touches_bound = bool(component_vars & bound_side)
            touches_free = bool(component_vars & free_side)
            if touches_bound and touches_free:
                raise CountingNotApplicable(
                    f"rule {r}: a connected component of nonrecursive "
                    f"subgoals touches both bound and free columns; "
                    f"counting cannot split it"
                )
            if touches_free:
                up_atoms.extend(component)
            else:
                # Components touching neither side act as existence
                # filters; they join the descent.
                down_atoms.extend(component)

        down_vars: set[Variable] = set()
        for a in down_atoms:
            down_vars |= a.variable_set()
        head_bound_vars = {
            r.head.args[p]
            for p in bound_positions
            if isinstance(r.head.args[p], Variable)
        }
        for p in bound_positions:
            term = recursive.args[p]
            if term not in down_vars and term not in head_bound_vars:
                raise CountingNotApplicable(
                    f"rule {r}: bound column {p + 1} of the recursive "
                    f"call is not determined by the down part"
                )
        up_vars: set[Variable] = set()
        for a in up_atoms:
            up_vars |= a.variable_set()
        body_free_vars = {
            recursive.args[p]
            for p in free_positions
            if isinstance(recursive.args[p], Variable)
        }
        for p in free_positions:
            term = r.head.args[p]
            if term not in up_vars and term not in body_free_vars:
                raise CountingNotApplicable(
                    f"rule {r}: free column {p + 1} of the head is not "
                    f"determined by the up part"
                )

        if all(
            recursive.args[p] == r.head.args[p] for p in bound_positions
        ):
            raise CountingNotApplicable(
                f"rule {r}: every bound column passes through the "
                f"recursive call unchanged, so the counting descent "
                f"makes no progress on this rule (it would self-loop); "
                f"the method does not apply to this binding pattern"
            )

        counting_rules.append(
            _CountingRule(
                index=index,
                down_atoms=tuple(down_atoms),
                up_atoms=tuple(up_atoms),
                down_input=tuple(r.head.args[p] for p in bound_positions),
                down_output=tuple(recursive.args[p] for p in bound_positions),
                up_input=tuple(recursive.args[p] for p in free_positions),
                up_output=tuple(r.head.args[p] for p in free_positions),
            )
        )

    return CountingPlan(
        predicate=query.predicate,
        arity=query.arity,
        bound_positions=bound_positions,
        free_positions=free_positions,
        rules=tuple(counting_rules),
        exit_rules=tuple(exit_rules),
        head_vars=head_vars,
    )


def counting_rules_text(program: Program, query: Atom) -> str:
    """The Section 4 style ``count`` rule listing for one query.

    Renders the rules the paper displays, e.g. for Example 1.1::

        count(0, 0, 0, tom).
        count(I+1, J, 3*K+1, W) :- count(I, J, K, X) & friend(X, W).
        count(I+1, J, 3*K+2, W) :- count(I, J, K, X) & idol(X, W).

    (the paper writes the two-rule case with factor 2; the general form
    uses ``(p+1)*K + i`` so every rule sequence gets a distinct path
    index).  Purely for display -- the evaluator computes the same
    relation directly.
    """
    plan = compile_counting(program, query)
    p = len(plan.rules)
    seed = ", ".join(
        str(query.args[pos]) for pos in plan.bound_positions
    )
    lines = [f"count(0, 0, 0, {seed})."]
    for cr in plan.rules:
        head_vars = ", ".join(str(v) for v in cr.down_input)
        next_vars = ", ".join(str(v) for v in cr.down_output)
        down = " & ".join(str(a) for a in cr.down_atoms)
        body = f"count(I, J, K, {head_vars})"
        if down:
            body += f" & {down}"
        lines.append(
            f"count(I+1, J, {p + 1}*K+{cr.index + 1}, {next_vars}) "
            f":- {body}."
        )
    return "\n".join(lines)


def _with_carry(db: Database, carry: Relation) -> Database:
    view = Database()
    for pred in db.predicates():
        rel = db.relation(pred)
        assert rel is not None
        view.attach(rel, pred)
    view.attach(carry, _CARRY)
    return view


def evaluate_counting(
    program: Program,
    edb: Database,
    query: Atom,
    stats: Optional[EvaluationStats] = None,
    budget: Budget = UNLIMITED,
    order: str = "greedy",
    max_levels: Optional[int] = None,
    tracer=None,
) -> frozenset[tuple]:
    """Answer ``query`` by the Generalized Counting Method.

    Records the ``count`` relation size and the path-indexed answer
    relation (``count_ans``) in ``stats`` -- the Definition 4.2 measure
    for this method.  Raises :class:`CyclicDataError` when the descent
    exceeds the pigeonhole level bound (cyclic data), and
    :class:`~repro.datalog.errors.BudgetExceeded` when ``budget`` trips
    first.
    """
    tracer = live(tracer)
    if stats is not None and not stats.strategy:
        stats.strategy = "counting"
    plan = compile_counting(program, query)
    seed = tuple(
        query.args[p].value  # type: ignore[union-attr]
        for p in plan.bound_positions
    )
    if max_levels is None:
        n_constants = max(len(edb.distinct_constants()), 1)
        max_levels = n_constants ** len(plan.bound_positions) + 1

    # -- descent: count = {(level, path) -> set of bound-column tuples} --
    # One shared carry relation is refilled per (path) group; rebuilding
    # the view database per group would dominate the runtime once the
    # path count grows exponentially.
    count: dict[tuple[int, tuple[int, ...]], set[tuple]] = {
        (0, ()): {seed}
    }
    count_size = 1
    frontier: list[tuple[tuple[int, ...], set[tuple]]] = [((), {seed})]
    level = 0
    down_carry = Relation(_CARRY, len(plan.bound_positions))
    down_view = _with_carry(edb, down_carry)
    down_bodies = {
        cr.index: (Atom(_CARRY, cr.down_input),) + cr.down_atoms
        for cr in plan.rules
    }
    descent_cm = (
        tracer.span("counting.descent", seed=list(seed))
        if tracer is not None
        else nullcontext()
    )
    with descent_cm as descent_span:
        while frontier:
            budget.check_wall(stats)
            if level >= max_levels:
                raise CyclicDataError(
                    f"counting descent exceeded {max_levels} levels; the "
                    f"data reachable from {seed} is cyclic (or a rule has "
                    f"an empty down part)",
                    stats=stats,
                )
            level += 1
            if stats is not None:
                stats.bump_iterations()
            if tracer is not None:
                tracer.count("iterations")
            new_frontier: list[tuple[tuple[int, ...], set[tuple]]] = []
            for path, values in frontier:
                down_carry.clear()
                down_carry.add_all(values)
                for cr in plan.rules:
                    produced: set[tuple] = set()
                    for fact in evaluate_body_project(
                        down_view, down_bodies[cr.index], cr.down_output,
                        stats=stats, order=order, tracer=tracer,
                    ):
                        if stats is not None:
                            stats.bump_produced()
                        produced.add(fact)
                    if tracer is not None:
                        tracer.count(f"rule_apps:down#{cr.index}")
                        if produced:
                            tracer.count(
                                f"rule_out:down#{cr.index}", len(produced)
                            )
                    if produced:
                        new_path = path + (cr.index,)
                        count[(level, new_path)] = produced
                        count_size += len(produced)
                        new_frontier.append((new_path, produced))
                if budget is not UNLIMITED:
                    budget.check_relation("count", count_size, stats)
            if tracer is not None:
                tracer.record("frontier_paths", len(new_frontier))
                tracer.record("count_size", count_size)
            if stats is not None:
                stats.record_relation("count", count_size)
                budget.check_relation("count", count_size, stats)
                budget.check_stats(stats)
            frontier = new_frontier
        if descent_span is not None:
            descent_span.attrs["levels"] = level
            descent_span.attrs["count_size"] = count_size

    # -- ascent: seed per-(level, path) answers from the exit rules ----
    answers_at: dict[tuple[int, tuple[int, ...]], set[tuple]] = {}
    answers_size = 0
    ascent_cm = (
        tracer.span("counting.ascent", paths=len(count))
        if tracer is not None
        else nullcontext()
    )
    with ascent_cm as ascent_span:
        exit_carry = Relation(_CARRY, len(plan.bound_positions))
        exit_view = _with_carry(edb, exit_carry)
        exit_bodies = []
        for exit_rule in plan.exit_rules:
            carry_atom = Atom(
                _CARRY,
                tuple(exit_rule.head.args[p] for p in plan.bound_positions),
            )
            output = tuple(
                exit_rule.head.args[p] for p in plan.free_positions
            )
            exit_bodies.append(
                ((carry_atom,) + tuple(exit_rule.body), output)
            )
        for (lvl, path), values in count.items():
            budget.check_wall(stats)
            exit_carry.clear()
            exit_carry.add_all(values)
            produced: set[tuple] = set()
            for ei, (body, output) in enumerate(exit_bodies):
                before = len(produced)
                for fact in evaluate_body_project(exit_view, body, output,
                                                  stats=stats, order=order,
                                                  tracer=tracer):
                    if stats is not None:
                        stats.bump_produced()
                    produced.add(fact)
                if tracer is not None:
                    tracer.count(f"rule_apps:exit#{ei}")
                    if len(produced) > before:
                        tracer.count(
                            f"rule_out:exit#{ei}", len(produced) - before
                        )
            if produced:
                answers_at[(lvl, path)] = produced
                answers_size += len(produced)

        # Replay each path backwards, deepest level first.
        up_carry = Relation(_CARRY, len(plan.free_positions))
        up_view = _with_carry(edb, up_carry)
        up_bodies = {
            cr.index: (Atom(_CARRY, cr.up_input),) + cr.up_atoms
            for cr in plan.rules
        }
        by_level: dict[int, list[tuple[int, tuple[int, ...]]]] = {}
        for key in count:
            by_level.setdefault(key[0], []).append(key)
        for lvl in range(max(by_level, default=0), 0, -1):
            budget.check_wall(stats)
            for key in by_level.get(lvl, ()):
                if key not in answers_at:
                    continue
                _, path = key
                cr = plan.rules[path[-1]]
                parent = (lvl - 1, path[:-1])
                up_carry.clear()
                up_carry.add_all(answers_at[key])
                produced = set()
                for fact in evaluate_body_project(
                    up_view, up_bodies[cr.index], cr.up_output,
                    stats=stats, order=order, tracer=tracer,
                ):
                    if stats is not None:
                        stats.bump_produced()
                    produced.add(fact)
                if produced:
                    target = answers_at.setdefault(parent, set())
                    before = len(target)
                    target |= produced
                    answers_size += len(target) - before
            if stats is not None:
                stats.record_relation("count_ans", answers_size)
                budget.check_relation("count_ans", answers_size, stats)
                budget.check_stats(stats)
        if ascent_span is not None:
            ascent_span.attrs["answers_size"] = answers_size

    free_answers = answers_at.get((0, ()), set())
    results: set[tuple] = set()
    constants = {p: query.args[p].value for p in plan.bound_positions}  # type: ignore[union-attr]
    variable_groups: dict[object, list[int]] = {}
    for i, t in enumerate(query.args):
        if not isinstance(t, Constant):
            variable_groups.setdefault(t, []).append(i)
    for fa in free_answers:
        values: list[ConstValue] = [None] * plan.arity  # type: ignore[list-item]
        for p, v in constants.items():
            values[p] = v
        for col, p in enumerate(plan.free_positions):
            values[p] = fa[col]
        fact = tuple(values)
        if all(
            len({fact[i] for i in positions}) == 1
            for positions in variable_groups.values()
        ):
            results.add(fact)
    if stats is not None:
        stats.record_relation("count", count_size)
        stats.record_relation("count_ans", answers_size)
        stats.record_relation("ans", len(results))
    return frozenset(results)
