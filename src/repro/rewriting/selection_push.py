"""Selection pushing into fixpoints, after Aho and Ullman [AU79].

The paper's related-work section: "Aho and Ullman present a technique
of pushing selections into fixpoints that, when combined with
semi-naive evaluation, produces an instance of our algorithm if the
selection is on a 'stable' variable and the recursion is separable."

A query column is *stable* when no rule of the predicate ever changes
it: the head term at that position reappears, unchanged, at the same
position of every occurrence of the predicate in every rule body.  For
such columns, selection commutes with the least fixpoint, so the
constant can be substituted into the rules themselves::

    t(X, Y) :- friend(X, W) & t(W, Y).        σ_{2=camera}
    t(X, Y) :- perfectFor(X, Y).              ==================>

    t_sigma(X, camera) :- friend(X, W) & t_sigma(W, camera).
    t_sigma(X, camera) :- perfectFor(X, camera).

On separable recursions, stable columns are exactly the persistent
columns ``t|pers``, and this rewrite coincides with the Separable
algorithm's dummy-class case -- which is why [AU79] and Separable are
"incommensurate": pushing also applies to some *non-separable*
recursions (any rule shape, including nonlinear ones, qualifies if the
column is stable), while Separable also handles selections on class
columns, which are never stable.
"""

from __future__ import annotations

from typing import Optional

from ..budget import Budget, UNLIMITED
from ..datalog.atoms import Atom
from ..datalog.database import Database
from ..datalog.errors import EvaluationError, UnknownPredicateError
from ..datalog.programs import Program
from ..datalog.rules import Rule
from ..datalog.seminaive import seminaive_evaluate
from ..datalog.terms import Constant, ConstValue, Variable
from ..observability.tracer import live
from ..stats import EvaluationStats

__all__ = [
    "StablePushNotApplicable",
    "stable_positions",
    "push_selection",
    "evaluate_pushed",
]


class StablePushNotApplicable(EvaluationError):
    """No bound query column is stable, so [AU79] pushing cannot apply."""


def stable_positions(program: Program, predicate: str) -> tuple[int, ...]:
    """Columns of ``predicate`` that no rule ever changes.

    Position ``p`` is stable when, in every rule for ``predicate``, the
    head term at ``p`` equals the term at ``p`` of *every* body
    occurrence of ``predicate`` (vacuously for nonrecursive rules).
    Nonlinear rules are allowed -- each occurrence is checked.
    """
    rules = program.rules_for(predicate)
    if not rules:
        raise UnknownPredicateError(
            f"{predicate} is not an IDB predicate"
        )
    arity = program.arity(predicate)
    stable = set(range(arity))
    for r in rules:
        for occurrence in r.occurrences_of(predicate):
            for p in list(stable):
                if r.head.args[p] != occurrence.args[p]:
                    stable.discard(p)
    return tuple(sorted(stable))


def _sigma_name(predicate: str, pushed: dict[int, ConstValue]) -> str:
    key = "_".join(f"{p}_{v}" for p, v in sorted(pushed.items()))
    return f"{predicate}__sigma_{key}"


def push_selection(
    program: Program, query: Atom
) -> tuple[Program, str, dict[int, ConstValue]]:
    """Push the stable part of ``query``'s selection into the rules.

    Returns ``(rewritten program, answer predicate, pushed constants)``.
    The rewritten program defines ``answer predicate`` with the pushed
    constants substituted into every rule (rules whose head carries a
    conflicting constant are dropped); rules of other predicates are
    carried over unchanged.  Raises :class:`StablePushNotApplicable`
    when no bound column is stable.
    """
    predicate = query.predicate
    stable = set(stable_positions(program, predicate))
    pushed = {
        p: t.value
        for p, t in enumerate(query.args)
        if isinstance(t, Constant) and p in stable
    }
    if not pushed:
        raise StablePushNotApplicable(
            f"query {query} binds no stable column of {predicate}; "
            f"stable columns are {sorted(p + 1 for p in stable)}"
        )
    sigma = _sigma_name(predicate, pushed)

    rewritten: list[Rule] = []
    for r in program.rules:
        if r.head.predicate != predicate:
            rewritten.append(r)
            continue
        substitution: dict[Variable, Constant] = {}
        conflict = False
        for p, value in pushed.items():
            term = r.head.args[p]
            if isinstance(term, Constant):
                if term.value != value:
                    conflict = True
                    break
            else:
                prior = substitution.get(term)
                if prior is not None and prior.value != value:
                    conflict = True
                    break
                substitution[term] = Constant(value)
        if conflict:
            continue  # this rule can never produce matching tuples
        grounded = r.substitute(substitution)
        new_head = Atom(sigma, grounded.head.args)
        new_body = tuple(
            Atom(sigma, a.args) if a.predicate == predicate else a
            for a in grounded.body
        )
        rewritten.append(Rule(new_head, new_body))
    return Program(rewritten), sigma, pushed


def evaluate_pushed(
    program: Program,
    edb: Database,
    query: Atom,
    stats: Optional[EvaluationStats] = None,
    budget: Budget = UNLIMITED,
    order: str = "greedy",
    tracer=None,
) -> frozenset[tuple]:
    """Answer ``query`` by [AU79] selection pushing + semi-naive.

    Constants on non-stable columns (not pushable) are applied as a
    final filter.  The generated relation recorded in ``stats`` is the
    sigma predicate's extent -- for a pers-column selection on a
    separable recursion this matches Separable's ``seen_2``-side sizes.
    """
    tracer = live(tracer)
    if stats is not None and not stats.strategy:
        stats.strategy = "pushdown"
    rewritten, sigma, pushed = push_selection(program, query)
    result = seminaive_evaluate(
        rewritten, edb, stats=stats, budget=budget, order=order,
        tracer=tracer,
    )
    residual = {
        p: t.value
        for p, t in enumerate(query.args)
        if isinstance(t, Constant) and p not in pushed
    }
    variable_groups: dict[Variable, list[int]] = {}
    for p, t in enumerate(query.args):
        if isinstance(t, Variable):
            variable_groups.setdefault(t, []).append(p)
    answers: set[tuple] = set()
    for fact in result.tuples(sigma):
        if any(fact[p] != v for p, v in residual.items()):
            continue
        if any(
            len({fact[p] for p in group}) != 1
            for group in variable_groups.values()
        ):
            continue
        answers.add(fact)
    if stats is not None:
        stats.record_relation("ans", len(answers))
    return frozenset(answers)
