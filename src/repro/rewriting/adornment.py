"""Adornments and sideways information passing (SIP) for Magic Sets.

An *adornment* annotates each argument position of a predicate with
``b`` (bound) or ``f`` (free).  The Generalized Magic Sets rewrite
works on the *adorned program*: starting from the query's adornment, a
left-to-right sideways information pass through each rule body
determines the adornment of every IDB subgoal, and new (predicate,
adornment) pairs are processed breadth-first until closure [BMSU86,
BR87] -- exactly the rewrite the paper's Section 4 displays for
Example 1.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..datalog.atoms import Atom
from ..datalog.joins import EQ
from ..datalog.programs import Program
from ..datalog.rules import Rule
from ..datalog.terms import Constant, Variable

__all__ = [
    "Adornment",
    "adornment_from_query",
    "adorned_name",
    "AdornedAtom",
    "AdornedRule",
    "adorn_program",
]

#: An adornment is a string over {'b', 'f'}, one character per position.
Adornment = str


def adornment_from_query(query: Atom) -> Adornment:
    """``b`` where the query has a constant, ``f`` where it has a variable."""
    return "".join(
        "b" if isinstance(t, Constant) else "f" for t in query.args
    )


def adorned_name(predicate: str, adornment: Adornment) -> str:
    """Name of the adorned copy of a predicate, e.g. ``buys__bf``."""
    return f"{predicate}__{adornment}"


@dataclass(frozen=True)
class AdornedAtom:
    """A body atom together with its adornment (IDB atoms only)."""

    atom: Atom
    adornment: Adornment

    def bound_terms(self) -> tuple:
        return tuple(
            t for t, a in zip(self.atom.args, self.adornment) if a == "b"
        )


@dataclass(frozen=True)
class AdornedRule:
    """One rule of the adorned program.

    ``head_adornment`` annotates the head; ``body`` keeps the original
    atom order, with IDB atoms wrapped in :class:`AdornedAtom` and EDB
    atoms left as plain :class:`Atom`.
    """

    rule: Rule
    head_adornment: Adornment
    body: tuple[object, ...]  # Atom | AdornedAtom

    def bound_head_terms(self) -> tuple:
        return tuple(
            t
            for t, a in zip(self.rule.head.args, self.head_adornment)
            if a == "b"
        )


def _bound_head_variables(head: Atom, adornment: Adornment) -> set[Variable]:
    return {
        t
        for t, a in zip(head.args, adornment)
        if a == "b" and isinstance(t, Variable)
    }


def _adorn_rule(
    r: Rule, head_adornment: Adornment, idb: frozenset[str]
) -> AdornedRule:
    """Left-to-right SIP through one rule body.

    A body position is bound if its term is a constant or a variable
    already bound (by the head's bound positions or any earlier body
    atom).  After an atom is processed, all its variables become bound:
    EDB atoms and built-in ``eq`` bind by lookup, IDB atoms by the magic
    evaluation of their adorned version.
    """
    bound = _bound_head_variables(r.head, head_adornment)
    adorned_body: list[object] = []
    for a in r.body:
        if a.predicate in idb:
            adornment = "".join(
                "b"
                if isinstance(t, Constant) or t in bound
                else "f"
                for t in a.args
            )
            adorned_body.append(AdornedAtom(a, adornment))
        else:
            adorned_body.append(a)
        bound |= a.variable_set()
    return AdornedRule(r, head_adornment, tuple(adorned_body))


def adorn_program(
    program: Program, query: Atom
) -> tuple[dict[tuple[str, Adornment], tuple[AdornedRule, ...]], Adornment]:
    """The adorned program reachable from the query's adornment.

    Returns ``(adorned rules grouped by (predicate, adornment), the
    query adornment)``.  Processing is breadth-first over (predicate,
    adornment) pairs, so exactly the reachable adorned copies are
    produced.
    """
    if query.predicate not in program.idb_predicates:
        raise ValueError(
            f"{query.predicate} is not an IDB predicate of the program"
        )
    idb = program.idb_predicates
    query_adornment = adornment_from_query(query)
    result: dict[tuple[str, Adornment], tuple[AdornedRule, ...]] = {}
    pending: list[tuple[str, Adornment]] = [
        (query.predicate, query_adornment)
    ]
    while pending:
        key = pending.pop()
        if key in result:
            continue
        predicate, adornment = key
        adorned_rules = tuple(
            _adorn_rule(r, adornment, idb)
            for r in program.rules_for(predicate)
        )
        result[key] = adorned_rules
        for ar in adorned_rules:
            for item in ar.body:
                if isinstance(item, AdornedAtom):
                    next_key = (item.atom.predicate, item.adornment)
                    if next_key not in result:
                        pending.append(next_key)
    return result, query_adornment
