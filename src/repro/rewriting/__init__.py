"""Baseline evaluation strategies the paper compares against.

* :mod:`adornment` -- adornments + sideways information passing;
* :mod:`magic` -- Generalized Magic Sets [BMSU86, BR87];
* :mod:`counting` -- the Generalized Counting Method [BMSU86, BR87,
  SZ86], path-indexed as in the paper's Section 4 rules;
* :mod:`nodedup` -- the Figure 2 schema without the seen-difference
  (Henschen-Naqvi-style ablation; fails on cyclic data);
* :mod:`selection_push` -- Aho-Ullman [AU79] selection pushing into
  fixpoints for stable query columns.
"""

from .adornment import (
    AdornedAtom,
    AdornedRule,
    adorn_program,
    adorned_name,
    adornment_from_query,
)
from .counting import (
    CountingNotApplicable,
    CountingPlan,
    compile_counting,
    evaluate_counting,
)
from .magic import MagicRewrite, evaluate_magic, magic_rewrite
from .nodedup import execute_plan_nodedup
from .selection_push import (
    StablePushNotApplicable,
    evaluate_pushed,
    push_selection,
    stable_positions,
)

__all__ = [
    "AdornedAtom",
    "AdornedRule",
    "adorn_program",
    "adorned_name",
    "adornment_from_query",
    "CountingNotApplicable",
    "CountingPlan",
    "compile_counting",
    "evaluate_counting",
    "MagicRewrite",
    "evaluate_magic",
    "magic_rewrite",
    "execute_plan_nodedup",
    "StablePushNotApplicable",
    "evaluate_pushed",
    "push_selection",
    "stable_positions",
]
