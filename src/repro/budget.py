"""Tuple and iteration budgets for evaluation strategies.

The exponential baselines (Generalized Counting, the Henschen-Naqvi-style
levelwise method) generate relations of size Omega(2^n) on the paper's
worst cases, and diverge outright on cyclic data.  A :class:`Budget`
bounds how much work any strategy may do so benchmarks and property
tests terminate; exceeding it raises
:class:`repro.datalog.errors.BudgetExceeded` with the partial statistics
attached, which the benches report as "exceeded budget at n = ...".
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import BudgetExceeded
from .stats import EvaluationStats

__all__ = ["Budget", "UNLIMITED"]


@dataclass(frozen=True)
class Budget:
    """Limits on one query evaluation.

    Attributes
    ----------
    max_relation_tuples:
        Cap on the size of any single generated relation.
    max_total_tuples:
        Cap on the sum of generated relation sizes.
    max_iterations:
        Cap on total fixpoint iterations (guards divergence on cyclic
        data for level-tracking methods).
    """

    max_relation_tuples: int = 10_000_000
    max_total_tuples: int = 50_000_000
    max_iterations: int = 1_000_000

    def check_relation(self, name: str, size: int,
                       stats: EvaluationStats | None = None) -> None:
        """Raise :class:`BudgetExceeded` if one relation is over budget."""
        if size > self.max_relation_tuples:
            raise BudgetExceeded(
                f"relation {name} reached {size} tuples "
                f"(budget {self.max_relation_tuples})",
                stats=stats,
            )

    def check_stats(self, stats: EvaluationStats) -> None:
        """Raise :class:`BudgetExceeded` on aggregate overruns."""
        if stats.total_relation_size > self.max_total_tuples:
            raise BudgetExceeded(
                f"total generated tuples reached {stats.total_relation_size} "
                f"(budget {self.max_total_tuples})",
                stats=stats,
            )
        if stats.iterations > self.max_iterations:
            raise BudgetExceeded(
                f"iteration count reached {stats.iterations} "
                f"(budget {self.max_iterations})",
                stats=stats,
            )


#: A budget that is large enough to never trip in ordinary use.
UNLIMITED = Budget(
    max_relation_tuples=2**62,
    max_total_tuples=2**62,
    max_iterations=2**62,
)
