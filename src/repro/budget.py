"""Tuple, iteration and wall-clock budgets for evaluation strategies.

The exponential baselines (Generalized Counting, the Henschen-Naqvi-style
levelwise method) generate relations of size Omega(2^n) on the paper's
worst cases, and diverge outright on cyclic data.  A :class:`Budget`
bounds how much work any strategy may do so benchmarks and property
tests terminate; exceeding it raises
:class:`repro.datalog.errors.BudgetExceeded` with the partial statistics
attached (and a :attr:`~repro.errors.BudgetExceeded.limit` tag naming
the limit that tripped), which the benches report as "exceeded budget at
n = ...".

Wall-clock limits (:attr:`Budget.max_wall_seconds`) serve a different
master: a query *service* cannot let one divergent request pin a worker
thread forever, whatever its tuple counts look like.  The clock is
explicit -- :meth:`Budget.start_clock` returns a copy with an absolute
monotonic deadline stamped in, so one immutable base budget can be
shared by many concurrent requests, each with its own deadline.  Every
fixpoint loop calls :meth:`Budget.check_wall` once per iteration
alongside :meth:`check_stats`; the check is a single ``is None`` test
when no deadline is armed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

from .errors import BudgetExceeded
from .stats import EvaluationStats

__all__ = ["Budget", "UNLIMITED"]


@dataclass(frozen=True)
class Budget:
    """Limits on one query evaluation.

    Attributes
    ----------
    max_relation_tuples:
        Cap on the size of any single generated relation.
    max_total_tuples:
        Cap on the sum of generated relation sizes.
    max_iterations:
        Cap on total fixpoint iterations (guards divergence on cyclic
        data for level-tracking methods).
    max_wall_seconds:
        Cap on elapsed wall-clock time (``None`` = unlimited).  Only
        enforced once :meth:`start_clock` has armed a deadline -- the
        engine arms one per query, the service one per request attempt.
    deadline:
        Absolute ``time.monotonic()`` instant after which
        :meth:`check_wall` raises; set by :meth:`start_clock`, not by
        hand.
    """

    max_relation_tuples: int = 10_000_000
    max_total_tuples: int = 50_000_000
    max_iterations: int = 1_000_000
    max_wall_seconds: float | None = None
    deadline: float | None = None

    def with_wall_limit(self, seconds: float | None) -> "Budget":
        """A copy with :attr:`max_wall_seconds` replaced (clock unarmed)."""
        return replace(self, max_wall_seconds=seconds, deadline=None)

    def start_clock(self, now: float | None = None) -> "Budget":
        """Arm the wall-clock deadline; a no-op without a wall limit.

        Returns a copy whose :attr:`deadline` is ``now +
        max_wall_seconds`` on the monotonic clock.  Each query (or each
        service request attempt) should arm its own copy so a shared
        base budget never leaks one caller's deadline into another's.
        """
        if self.max_wall_seconds is None:
            return self
        if now is None:
            now = time.monotonic()
        return replace(self, deadline=now + self.max_wall_seconds)

    def remaining_seconds(self, now: float | None = None) -> float | None:
        """Seconds until the armed deadline (``None`` when unarmed)."""
        if self.deadline is None:
            return None
        if now is None:
            now = time.monotonic()
        return self.deadline - now

    def check_wall(self, stats: EvaluationStats | None = None) -> None:
        """Raise :class:`BudgetExceeded` once the armed deadline passes."""
        if self.deadline is None:
            return
        now = time.monotonic()
        if now > self.deadline:
            overrun = now - self.deadline
            raise BudgetExceeded(
                f"wall clock exceeded the {self.max_wall_seconds:.3f}s "
                f"budget (over by {overrun:.3f}s)",
                stats=stats,
                limit="wall_clock",
            )

    def check_relation(self, name: str, size: int,
                       stats: EvaluationStats | None = None) -> None:
        """Raise :class:`BudgetExceeded` if one relation is over budget."""
        if size > self.max_relation_tuples:
            raise BudgetExceeded(
                f"relation {name} reached {size} tuples "
                f"(budget {self.max_relation_tuples})",
                stats=stats,
                limit="relation_tuples",
            )

    def check_stats(self, stats: EvaluationStats) -> None:
        """Raise :class:`BudgetExceeded` on aggregate overruns.

        Also enforces the wall-clock deadline so the many existing
        per-iteration ``check_stats`` call sites pick up deadlines
        without each loop naming :meth:`check_wall` explicitly.
        """
        if stats.total_relation_size > self.max_total_tuples:
            raise BudgetExceeded(
                f"total generated tuples reached {stats.total_relation_size} "
                f"(budget {self.max_total_tuples})",
                stats=stats,
                limit="total_tuples",
            )
        if stats.iterations > self.max_iterations:
            raise BudgetExceeded(
                f"iteration count reached {stats.iterations} "
                f"(budget {self.max_iterations})",
                stats=stats,
                limit="iterations",
            )
        self.check_wall(stats)


#: A budget that is large enough to never trip in ordinary use.
UNLIMITED = Budget(
    max_relation_tuples=2**62,
    max_total_tuples=2**62,
    max_iterations=2**62,
)
