"""Task functions executed inside pool worker processes.

Everything here is module-level because "spawn" workers re-import this
module by qualified name; every argument and return value is picklable.
Each worker keeps a small FIFO registry of installed databases keyed by
parent-assigned tokens, so a (possibly large) snapshot crosses the
process boundary once per install broadcast, not once per task.  The
parent mirrors the FIFO eviction policy; a task that names an evicted
token raises :class:`WorkerStateMissing` and the parent reinstalls and
retries once.

Workers deliberately share *nothing* else with the parent: "spawn"
re-imports the package, so the module-global
:data:`~repro.datalog.plan_cache.PLAN_CACHE` starts empty per process
(per-process plan warmup), and :meth:`Database.__setstate__` restores
no observers -- the isolation the regression tests in
``tests/parallel/`` pin down.
"""

from __future__ import annotations

import os
import time
from dataclasses import replace
from typing import Optional

from ..budget import Budget, UNLIMITED
from ..core.evaluator import _with_pseudo, execute_plan
from ..datalog.database import Database, Relation
from ..datalog.joins import evaluate_body_project
from ..errors import EvaluationError
from ..observability.fragments import capture_fragment
from ..observability.tracer import Tracer
from ..stats import EvaluationStats

__all__ = ["STATE_SLOTS", "WorkerStateMissing"]

#: How many installed databases a worker retains (FIFO by install
#: order; the parent mirrors this so evictions stay in lockstep).
STATE_SLOTS = 4

#: Broadcast rendezvous: generous, but bounded so a dead worker turns
#: into a BrokenBarrierError instead of a silent hang.
_BARRIER_TIMEOUT_S = 120.0

_BARRIER = None
_STATE: dict[int, Database] = {}
_STATE_ORDER: list[int] = []


class WorkerStateMissing(EvaluationError):
    """A task referenced a database token this worker no longer holds."""

    def __init__(self, token: int) -> None:
        self.token = token
        super().__init__(
            f"worker {os.getpid()} holds no database for token {token}"
        )

    def __reduce__(self):
        # Default Exception pickling replays ``args`` (the message
        # string) into ``__init__``, which expects the token.
        return (WorkerStateMissing, (self.token,))


def _init_worker(barrier) -> None:
    """Pool initializer: stash the install-broadcast barrier."""
    global _BARRIER
    _BARRIER = barrier


def _database_for(token: int) -> Database:
    db = _STATE.get(token)
    if db is None:
        raise WorkerStateMissing(token)
    return db


def _rearm(budget: Budget, remaining: Optional[float]) -> Budget:
    """Re-arm a deadline-stripped budget on this worker's own clock.

    Monotonic-clock instants are not portable across processes, so the
    parent ships ``deadline=None`` plus the seconds it had left; the
    worker turns that back into an armed deadline locally.
    """
    if remaining is None:
        return budget
    return replace(
        budget, max_wall_seconds=max(remaining, 0.0), deadline=None
    ).start_clock()


def _install_task(args) -> int:
    """Install one database under a token (barrier-broadcast).

    The parent maps one of these per worker with ``chunksize=1``; each
    worker blocks on the barrier until every worker holds exactly one
    install task, which is what guarantees the broadcast reaches all of
    them instead of one worker draining the whole batch.
    """
    token, db = args
    if _BARRIER is not None:
        _BARRIER.wait(timeout=_BARRIER_TIMEOUT_S)
    _STATE[token] = db
    _STATE_ORDER.append(token)
    while len(_STATE_ORDER) > STATE_SLOTS:
        _STATE.pop(_STATE_ORDER.pop(0), None)
    return os.getpid()


def _branch_task(args):
    """One Lemma 2.1 union branch: run a compiled plan start to finish.

    Returns ``(answer tuples, branch EvaluationStats, fragment)``.
    When the parent is tracing it sets ``trace`` and the branch runs
    under a real per-task :class:`Tracer`, shipping the closed span
    tree home as a :class:`~repro.observability.fragments.TraceFragment`
    (``None`` otherwise -- the untraced path allocates no tracer at
    all, preserving the zero-overhead default).  A budget trip raises
    :class:`~repro.errors.BudgetExceeded` carrying the branch stats;
    its ``__reduce__`` preserves them across the pickle back to the
    parent.
    """
    token, plan, seeds, order, budget, remaining, ignore_budget, trace = args
    db = _database_for(token)
    budget = UNLIMITED if ignore_budget else _rearm(budget, remaining)
    stats = EvaluationStats()
    if not trace:
        tuples = execute_plan(
            plan, db, seeds, stats=stats, budget=budget, order=order
        )
        return tuples, stats, None
    tracer = Tracer()
    with tracer.span("worker.branch", seeds=len(seeds)):
        tuples = execute_plan(
            plan,
            db,
            seeds,
            stats=stats,
            budget=budget,
            order=order,
            tracer=tracer,
        )
    return tuples, stats, capture_fragment(tracer, pid=os.getpid())


def _apply_joins_task(args):
    """One carry partition's share of a union-of-joins iteration.

    Returns ``(per-join output frozensets, worker EvaluationStats,
    fragment)``.  The per-join split lets the parent replay the serial
    evaluator's dedup-in-join-order accounting exactly (``rule_out:``
    counters), while the stats carry the raw produced/examined counts,
    which sum to the serial totals because every output row uses
    exactly one carry tuple and the partitions are disjoint.

    Under ``trace`` the join work runs inside a per-task tracer span
    (shipped home as a fragment); the worker records *no* per-rule
    counters -- the parent's replay in ``ParallelExecutor.apply_joins``
    stays the single source of ``rule_apps:``/``rule_out:`` truth, so
    stitched totals never double-count.
    """
    token, joins, pseudo, arity, part, order, trace = args
    db = _database_for(token)
    view = _with_pseudo(db, pseudo, Relation(pseudo, arity, part))
    stats = EvaluationStats()
    tracer = Tracer() if trace else None
    per_join: list[frozenset] = []

    def run() -> None:
        for join in joins:
            out: set[tuple] = set()
            for fact in evaluate_body_project(
                view,
                join.body,
                join.output,
                stats=stats,
                order=order,
                tracer=tracer,
            ):
                stats.bump_produced()
                out.add(fact)
            per_join.append(frozenset(out))

    if tracer is None:
        run()
        return per_join, stats, None
    with tracer.span(
        "worker.partition", pseudo=pseudo, tuples=len(part)
    ):
        run()
    return per_join, stats, capture_fragment(tracer, pid=os.getpid())


def _probe_task(args) -> dict:
    """Report this worker's private state (barrier-broadcast).

    The isolation regression tests assert on this: the worker's
    module-global plan cache is its own (fresh under "spawn" until the
    worker itself compiles something), and installed relations carry no
    observers across the pickle.
    """
    del args
    if _BARRIER is not None:
        _BARRIER.wait(timeout=_BARRIER_TIMEOUT_S)
    from ..datalog.plan_cache import PLAN_CACHE

    observer_counts: dict[int, int] = {}
    for token in _STATE_ORDER:
        db = _STATE[token]
        observer_counts[token] = sum(
            len(db.relation(name)._observers) for name in db.predicates()
        )
    return {
        "pid": os.getpid(),
        "plan_cache": PLAN_CACHE.stats(),
        "installed_tokens": list(_STATE_ORDER),
        "relation_observers": observer_counts,
    }


def _sleep_task(args) -> float:
    """Test hook: a worker that stalls, ignoring every budget."""
    (seconds,) = args
    time.sleep(seconds)
    return seconds


def _raise_task(args):
    """Test hook: a worker that fails with an arbitrary exception."""
    exc_type, message = args
    raise exc_type(message)
