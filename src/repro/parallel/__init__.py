"""Parallel class-independent evaluation (Theorem 2.1 as a scheduler).

The paper's structural insight -- equivalence classes of a separable
recursion evaluate independently -- is also a parallel decomposition:
the Lemma 2.1 union of full selections fans across a worker pool, and
within one carry/seen loop the carry relation hash-partitions exactly
whenever every join term consumes it exactly once.  This package holds
the spawn-based pool (:mod:`~repro.parallel.executor`), the picklable
task functions that run inside workers (:mod:`~repro.parallel.worker`),
and :func:`resolve_parallel`, the front door behind
``Engine.query(parallel=...)`` and ``ServiceConfig.parallel``.

See ``docs/parallelism.md`` for the design, the determinism argument,
and when the in-thread fallback triggers.
"""

from .executor import (
    ENV_WORKERS,
    ParallelConfig,
    ParallelExecutor,
    get_executor,
    resolve_parallel,
    shutdown_executors,
)
from .worker import WorkerStateMissing

__all__ = [
    "ENV_WORKERS",
    "ParallelConfig",
    "ParallelExecutor",
    "WorkerStateMissing",
    "get_executor",
    "resolve_parallel",
    "shutdown_executors",
]
