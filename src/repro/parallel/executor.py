"""The parent-side worker-pool executor for parallel Separable evaluation.

Theorem 2.1 makes equivalence classes of a separable recursion
independent, which exposes two safe axes of parallelism:

* **branch fan-out** -- the Lemma 2.1 union of full selections runs one
  carry/seen evaluation per distinct sideways seed; each is a pure
  function of ``(plan, db, seed, order)`` and ships whole to a worker
  (:meth:`ParallelExecutor.run_plan_remote`);
* **carry partitioning** -- inside one carry loop, when every join term
  touches the carry pseudo-relation exactly once, every output row is
  derived from exactly one carry tuple, so hash-partitioning the carry
  across workers partitions the outputs exactly
  (:meth:`ParallelExecutor.apply_joins`).

Pools use the explicit ``"spawn"`` start method: ``fork`` under a
threaded parent (the query service) inherits locks in unknown states,
and spawn's re-import is precisely what keeps the module-global
:data:`~repro.datalog.plan_cache.PLAN_CACHE` and ``Relation`` observers
from leaking between parent and workers.

Executors are shared process-wide through :func:`get_executor` (keyed
by :class:`ParallelConfig`) so the ~quarter-second spawn cost of a pool
is paid once per configuration, not once per query; :func:`atexit`
tears them down.  :func:`resolve_parallel` maps the public
``parallel=`` knob (``None``/``False``/``True``/int/config/executor)
onto that registry, honoring ``REPRO_PARALLEL_WORKERS``.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import threading
import time
import weakref
import zlib
from dataclasses import dataclass, replace
from typing import Iterable, Optional, Sequence

from ..budget import Budget, UNLIMITED
from ..core.plan import CARRY
from ..datalog.database import Database
from ..errors import BudgetExceeded
from ..observability import fragments as _fragments
from ..stats import EvaluationStats
from . import worker as _worker

__all__ = [
    "ENV_WORKERS",
    "ParallelConfig",
    "ParallelExecutor",
    "get_executor",
    "resolve_parallel",
    "shutdown_executors",
]

#: Environment knob consulted by ``parallel=True``.
ENV_WORKERS = "REPRO_PARALLEL_WORKERS"

#: Grace added to a worker's own wall budget before the parent-side
#: wait gives up -- the worker should trip its re-armed deadline first;
#: the parent timeout only fires when a worker genuinely stalls.
_WAIT_GRACE_S = 0.25


@dataclass(frozen=True)
class ParallelConfig:
    """One executor configuration (also the registry key).

    ``workers <= 1`` is the in-thread fallback: the executor is a
    passthrough that never spawns a pool and every evaluation runs
    serially in the calling thread -- same code path, zero IPC.  The
    thresholds gate the two parallel axes so tiny inputs, where a
    pickle round-trip costs more than the join, stay serial.
    """

    workers: int = 0
    #: Carry partitions per iteration (default: one per worker).
    partitions: Optional[int] = None
    #: Fan union branches out only with at least this many distinct seeds.
    min_branch_tasks: int = 2
    #: Partition a carry only when it holds at least this many tuples.
    min_partition_tuples: int = 2048
    start_method: str = "spawn"

    @classmethod
    def eager(cls, workers: int, partitions: int = 3) -> "ParallelConfig":
        """Thresholds floored so every eligible site goes parallel.

        The differential oracle and the test suites use this: corpus
        inputs are tiny, and the point there is exercising the remote
        paths, not saving wall-clock time.
        """
        return cls(
            workers=workers,
            partitions=partitions,
            min_branch_tasks=2,
            min_partition_tuples=1,
        )


def _stable_hash(t: tuple) -> int:
    # Builtin ``hash`` is PYTHONHASHSEED-randomized per process; crc32
    # of the repr is stable across runs and machines, which is what
    # makes partition membership (and therefore every counter the
    # partitioned path produces) deterministic.
    return zlib.crc32(repr(t).encode())


class ParallelExecutor:
    """A spawn-based process pool specialized for Separable evaluation.

    Thread-safe: the query service calls into one executor from many
    request threads.  Databases install once per snapshot (fingerprint-
    checked token, broadcast to every worker behind a barrier) and are
    then referenced by token per task.
    """

    def __init__(self, config: ParallelConfig) -> None:
        if config.workers < 0:
            raise ValueError(f"workers must be >= 0, got {config.workers}")
        if config.start_method != "spawn":
            raise ValueError(
                "only the explicit 'spawn' start method is supported: "
                "fork under a threaded parent inherits locks in unknown "
                "states and silently shares the module-global plan cache"
            )
        self.config = config
        self._lock = threading.RLock()
        self._pool = None
        self._barrier = None
        # db -> (token, fingerprint at install); weak so the executor
        # never pins a snapshot the service's LRU dropped.
        self._tokens: "weakref.WeakKeyDictionary[Database, tuple]" = (
            weakref.WeakKeyDictionary()
        )
        # Mirrors the workers' FIFO state registry (insertion-ordered).
        self._installed: dict[int, None] = {}
        self._next_token = 0
        self._closed = False
        # Trace stitching: one parent-clock offset per worker pid so
        # every fragment from the same worker lands on a consistent
        # timeline lane, plus a tally of fragments ever installed (the
        # bench zero-overhead gate reads its delta across untraced
        # repeats -- it must stay flat when tracer=None).
        self._clock_offsets: dict[int, float] = {}
        self._fragments_received = 0

    # -- lifecycle ---------------------------------------------------------

    @property
    def workers(self) -> int:
        return self.config.workers

    @property
    def active(self) -> bool:
        """Whether remote execution is in play (vs in-thread fallback)."""
        return self.config.workers >= 2 and not self._closed

    @property
    def closed(self) -> bool:
        return self._closed

    def _ensure_pool(self):
        with self._lock:
            if self._closed:
                raise RuntimeError("parallel executor is closed")
            if self._pool is None:
                ctx = multiprocessing.get_context(self.config.start_method)
                self._barrier = ctx.Barrier(self.config.workers)
                self._pool = ctx.Pool(
                    processes=self.config.workers,
                    initializer=_worker._init_worker,
                    initargs=(self._barrier,),
                )
            return self._pool

    def close(self) -> None:
        with self._lock:
            self._closed = True
            if self._pool is not None:
                self._pool.terminate()
                self._pool.join()
                self._pool = None

    # -- database installation --------------------------------------------

    def ensure_installed(self, db: Database) -> int:
        """Broadcast ``db`` to every worker once; return its token.

        Re-broadcasts when the database mutated since the last install
        (fingerprint change mints a fresh token) or when the workers'
        FIFO registry evicted it.
        """
        with self._lock:
            fp = db.fingerprint()
            entry = self._tokens.get(db)
            if entry is not None and entry[1] == fp:
                token = entry[0]
                if token in self._installed:
                    return token
            else:
                token = self._next_token
                self._next_token += 1
                self._tokens[db] = (token, fp)
            self._install(token, db)
            return token

    def _install(self, token: int, db: Database) -> None:
        # chunksize=1 + the worker-side barrier = exactly one install
        # task lands on each worker; see _worker._install_task.
        pool = self._ensure_pool()
        pool.map(
            _worker._install_task,
            [(token, db)] * self.config.workers,
            chunksize=1,
        )
        self._installed[token] = None
        while len(self._installed) > _worker.STATE_SLOTS:
            del self._installed[next(iter(self._installed))]

    def _forget(self, token: int) -> None:
        with self._lock:
            self._installed.pop(token, None)

    # -- waiting -----------------------------------------------------------

    def _wait(self, async_result, remaining: Optional[float]):
        """Collect one task result, enforcing the caller's wall budget.

        The worker re-arms the same budget on its own clock and should
        trip first; the parent-side timeout is the backstop for a
        worker that stalls outright.  The abandoned task keeps running
        in its worker until it finishes (its result is discarded), but
        the pool itself stays healthy -- "deadline fires even when a
        worker stalls" is exactly this path.
        """
        if remaining is None:
            return async_result.get()
        try:
            return async_result.get(timeout=max(remaining, 0.0)
                                    + _WAIT_GRACE_S)
        except multiprocessing.TimeoutError:
            raise BudgetExceeded(
                f"wall clock budget exhausted after waiting "
                f"{max(remaining, 0.0):.3f}s for a parallel worker "
                f"(the worker task was abandoned, the pool stays up)",
                limit="wall_clock",
            ) from None

    # -- branch fan-out ----------------------------------------------------

    def run_plan_remote(
        self,
        db: Database,
        plan,
        seeds: Iterable[tuple],
        order: str,
        budget: Budget,
        _test_ignore_budget: bool = False,
        collect_fragment: bool = False,
    ):
        """Run one compiled plan in a worker process.

        Returns ``(answer tuples, branch EvaluationStats)`` exactly as
        a serial ``_run_plan`` miss would produce under a fresh branch
        accumulator.  With ``collect_fragment`` the worker additionally
        runs the branch under a real tracer and the return grows a
        third element: the shipped
        :class:`~repro.observability.fragments.TraceFragment` (or
        ``None`` if the branch recorded nothing).  The caller installs
        it -- fan-out runs on many threads and ``Tracer`` is not
        thread-safe, so installation must happen on whichever single
        thread owns the parent tracer.  ``_test_ignore_budget`` makes
        the worker discard its re-armed budget -- the fault suite's
        stand-in for a stalled worker.
        """
        seeds = [tuple(s) for s in seeds]
        shipped, remaining = _ship_budget(budget)
        for attempt in (0, 1):
            token = self.ensure_installed(db)
            result = self._ensure_pool().apply_async(
                _worker._branch_task,
                ((token, plan, seeds, order, shipped, remaining,
                  _test_ignore_budget, collect_fragment),),
            )
            try:
                tuples, stats, fragment = self._wait(result, remaining)
            except _worker.WorkerStateMissing:
                if attempt:
                    raise
                self._forget(token)
                continue
            if fragment is not None:
                fragment.recv_s = time.perf_counter()
            if collect_fragment:
                return tuples, stats, fragment
            return tuples, stats

    def map_threads(self, fn, items: Sequence):
        """Run ``fn(item)`` per item on parent threads.

        The threads exist to block on pool results concurrently (and to
        let each branch sit inside ``memo.get_or_run`` so cross-request
        coalescing keeps working); they do no CPU work themselves.
        Returns outcomes aligned with ``items``: ``("ok", value)`` or
        ``("error", exception)`` -- never raises, so the caller merges
        deterministically in item order.
        """
        items = list(items)
        results: list = [None] * len(items)

        def run(i: int, item) -> None:
            try:
                results[i] = ("ok", fn(item))
            except BaseException as exc:  # noqa: BLE001 - relayed whole
                results[i] = ("error", exc)

        threads = [
            threading.Thread(target=run, args=(i, item), daemon=True)
            for i, item in enumerate(items)
        ]
        wave = max(2, self.config.workers * 4)
        for start in range(0, len(threads), wave):
            batch = threads[start:start + wave]
            for t in batch:
                t.start()
            for t in batch:
                t.join()
        return results

    # -- trace stitching ---------------------------------------------------

    @property
    def fragments_received(self) -> int:
        """How many trace fragments this executor has ever installed."""
        with self._lock:
            return self._fragments_received

    def _anchor_for(self, fragment) -> float:
        """Parent-clock anchor for a fragment, stable per worker pid.

        The first fragment from a pid fixes that worker's clock offset
        ("the fragment ended when its result arrived"); later fragments
        from the same pid reuse it, so spans on one worker's lane keep
        their true relative spacing and never overlap -- a pool worker
        runs its tasks sequentially.
        """
        recv = (
            fragment.recv_s
            if fragment.recv_s is not None
            else time.perf_counter()
        )
        with self._lock:
            offset = self._clock_offsets.get(fragment.pid)
            if offset is None:
                offset = recv - (fragment.origin_s + fragment.extent_s)
                self._clock_offsets[fragment.pid] = offset
        return fragment.origin_s + offset

    def install_fragment(self, tracer, fragment, **attrs):
        """Stitch one shipped fragment into the parent tracer.

        Must run on the thread that owns ``tracer``.  Dispatches to
        :func:`repro.observability.fragments.install_fragment` with a
        per-pid clock anchor; metrics facades absorb aggregates
        instead.  Returns the host span (or ``None``).
        """
        if fragment is None or tracer is None:
            return None
        with self._lock:
            self._fragments_received += 1
        return _fragments.install_fragment(
            tracer,
            fragment,
            anchor_s=self._anchor_for(fragment),
            **attrs,
        )

    # -- carry partitioning ------------------------------------------------

    def should_partition(self, joins, carry_size: int,
                         pseudo: str = CARRY) -> bool:
        """Is this union-of-joins iteration safely partitionable?

        Requires every join body to touch the carry pseudo-relation
        exactly once: then each output row consumes exactly one carry
        tuple, so disjoint carry partitions produce disjoint (exact)
        output shares.  Zero mentions would duplicate the join's full
        output per partition; two would need a cross-partition product.
        """
        if not self.active:
            return False
        if carry_size < max(self.config.min_partition_tuples, 2):
            return False
        joins = tuple(joins)
        if not joins:
            return False
        for join in joins:
            mentions = sum(
                1 for atom in join.body if atom.predicate == pseudo
            )
            if mentions != 1:
                return False
        return True

    def partition(self, tuples_: Iterable[tuple]) -> list[list[tuple]]:
        """Deterministic hash partitions (empty shares dropped)."""
        k = self.config.partitions or self.config.workers
        parts: list[list[tuple]] = [[] for _ in range(k)]
        for t in tuples_:
            parts[_stable_hash(t) % k].append(t)
        return [p for p in parts if p]

    def apply_joins(
        self,
        db: Database,
        joins,
        carry: Iterable[tuple],
        arity: int,
        pseudo: str,
        stats: Optional[EvaluationStats],
        order: str,
        budget: Budget = UNLIMITED,
        tracer=None,
        label: Optional[str] = None,
    ) -> set[tuple]:
        """One partitioned union-of-joins iteration, merged in the parent.

        Matches the serial ``_apply_joins`` contract: same produced
        set, same ``tuples_produced`` total (partitions are exact), and
        the same ``rule_apps:``/``rule_out:`` tracer attribution -- the
        per-join output sets come back split so the parent can replay
        the dedup-in-join-order accounting.
        """
        joins = tuple(joins)
        parts = self.partition(carry)
        remaining = budget.remaining_seconds()
        trace = tracer is not None
        results = None
        for attempt in (0, 1):
            token = self.ensure_installed(db)
            pool = self._ensure_pool()
            pending = [
                pool.apply_async(
                    _worker._apply_joins_task,
                    ((token, joins, pseudo, arity, tuple(part), order,
                      trace),),
                )
                for part in parts
            ]
            try:
                results = [self._wait(a, remaining) for a in pending]
                break
            except _worker.WorkerStateMissing:
                if attempt:
                    raise
                self._forget(token)
        recv = time.perf_counter()
        produced: set[tuple] = set()
        for ji in range(len(joins)):
            before = len(produced)
            for per_join, _, _ in results:
                produced |= per_join[ji]
            if tracer is not None and label is not None:
                tracer.count(f"rule_apps:{label}#{ji}")
                out = len(produced) - before
                if out:
                    tracer.count(f"rule_out:{label}#{ji}", out)
        if stats is not None:
            for _, worker_stats, _ in results:
                stats.merge(worker_stats)
        if trace:
            # apply_joins runs on the thread that owns the tracer, and
            # the carry-loop span is still open -- fragments nest as
            # its children, one lane host per shipped partition.
            for pi, (_, _, fragment) in enumerate(results):
                if fragment is not None:
                    if fragment.recv_s is None:
                        fragment.recv_s = recv
                    self.install_fragment(
                        tracer, fragment, task="partition", index=pi
                    )
        return produced

    # -- introspection and fault injection ---------------------------------

    def probe(self) -> list[dict]:
        """One state report per worker (see ``_worker._probe_task``)."""
        pool = self._ensure_pool()
        with self._lock:
            return pool.map(
                _worker._probe_task,
                [None] * self.config.workers,
                chunksize=1,
            )

    def debug_call(self, fn, args, timeout: Optional[float] = None):
        """Run one raw worker task (fault-injection test hook)."""
        result = self._ensure_pool().apply_async(fn, (args,))
        return result.get(timeout) if timeout else result.get()

    def __repr__(self) -> str:
        state = "closed" if self._closed else (
            "live" if self._pool is not None else "cold"
        )
        return f"ParallelExecutor(workers={self.config.workers}, {state})"


def _ship_budget(budget: Budget) -> tuple[Budget, Optional[float]]:
    """Split a budget into a portable copy plus the seconds it has left.

    Monotonic deadlines mean nothing in another process, so the worker
    receives ``deadline=None`` and re-arms from ``remaining`` on its
    own clock (:func:`repro.parallel.worker._rearm`).
    """
    remaining = budget.remaining_seconds()
    if budget.deadline is None:
        return budget, None
    return replace(budget, deadline=None), remaining


# -- the shared registry -----------------------------------------------------

_REGISTRY: dict[ParallelConfig, ParallelExecutor] = {}
_REGISTRY_LOCK = threading.Lock()


def get_executor(spec) -> ParallelExecutor:
    """The process-wide shared executor for a config (or worker count)."""
    if isinstance(spec, ParallelExecutor):
        return spec
    if isinstance(spec, int) and not isinstance(spec, bool):
        spec = ParallelConfig(workers=spec)
    if not isinstance(spec, ParallelConfig):
        raise TypeError(
            f"expected ParallelConfig, int, or ParallelExecutor; "
            f"got {spec!r}"
        )
    with _REGISTRY_LOCK:
        executor = _REGISTRY.get(spec)
        if executor is None or executor.closed:
            executor = ParallelExecutor(spec)
            _REGISTRY[spec] = executor
        return executor


def shutdown_executors() -> None:
    """Close every registry executor (atexit; also test teardown)."""
    with _REGISTRY_LOCK:
        for executor in _REGISTRY.values():
            executor.close()
        _REGISTRY.clear()


atexit.register(shutdown_executors)


def resolve_parallel(parallel) -> Optional[ParallelExecutor]:
    """Map the public ``parallel=`` knob onto an executor (or None).

    ``None``/``False``/``0`` mean serial.  ``True`` reads
    ``REPRO_PARALLEL_WORKERS`` (falling back to ``os.cpu_count()``).
    An ``int`` asks for a shared pool of that size, a
    :class:`ParallelConfig` for a shared pool with those thresholds,
    and a :class:`ParallelExecutor` is used as-is.  A resolved executor
    with fewer than two workers is the documented in-thread fallback:
    callers keep it but every ``should_partition``/fan-out check says
    no, so evaluation stays in the calling thread.
    """
    if parallel is None or parallel is False:
        return None
    if parallel is True:
        raw = os.environ.get(ENV_WORKERS, "").strip()
        workers = int(raw) if raw else (os.cpu_count() or 1)
        if workers <= 0:
            return None
        return get_executor(ParallelConfig(workers=workers))
    if isinstance(parallel, bool):  # pragma: no cover - handled above
        return None
    if isinstance(parallel, int):
        if parallel <= 0:
            return None
        return get_executor(ParallelConfig(workers=parallel))
    if isinstance(parallel, (ParallelConfig, ParallelExecutor)):
        return get_executor(parallel)
    raise TypeError(
        f"parallel must be None, a bool, an int worker count, a "
        f"ParallelConfig, or a ParallelExecutor; got {parallel!r}"
    )
