"""Command-line interface: run programs, answer queries, explain recursions.

Subcommands::

    repro-datalog run PROGRAM.dl [--query 'p(c, X)?'] [--strategy auto]
        Load a program file (rules + facts + optional inline queries),
        answer the queries, print answers and the generated-relation
        statistics.

    repro-datalog detect PROGRAM.dl [--predicate t]
        Print the separability report (Definition 2.4 diagnostics,
        equivalence classes, persistent columns) for one or all IDB
        predicates.

    repro-datalog plan PROGRAM.dl --query 'p(c, X)?'
        Compile and print the Separable plan for a query (the Figure 3/4
        style listing), without executing it.

    repro-datalog advise PROGRAM.dl --query 'p(c, X)?'
        Show which strategies apply to a query and why, plus the
        Section 3.2 regular-expression view of the expansion.

    repro-datalog profile PROGRAM.dl ['p(c, X)?'] [--strategy auto]
                          [--format text|json|chrome-trace]
                          [--events trace.jsonl] [--out FILE]
                          [--no-timings]
        Profile one query end to end: run it with a live tracer and
        print an EXPLAIN ANALYZE-style report (plan, strategy advice,
        span tree with wall-clock shares, per-rule work, generated
        relation sizes, per-iteration deltas).  ``--format
        chrome-trace`` emits a Perfetto/chrome://tracing-loadable JSON
        trace instead; ``--events`` additionally streams the raw event
        log to a JSONL file replayable with
        ``repro.observability.replay_file`` (see docs/observability.md).

    repro-datalog report
        Rerun the paper's experiment sweeps (no timing calibration) and
        print the measured series as Markdown tables.

    repro-datalog fuzz [--iterations 200] [--seed 0] [--strategy s ...]
                       [--corpus DIR] [--no-shrink]
        Differential fuzzing: generate random separable recursions and
        near-miss mutants, evaluate each query under every applicable
        strategy, diff answer sets / detection verdicts / statistics
        invariants, and shrink any disagreement to a minimal replayable
        repro file (see docs/differential_testing.md).

    repro-datalog serve PROGRAM.dl [--query 'p(c, X)?' ...]
                        [--workers 4] [--repeat 1] [--deadline SECS]
                        [--strategy auto] [--metrics-out FILE]
                        [--events FILE] [--stats]
        Batch driver for the concurrent query service: serve the given
        queries (times --repeat) from a thread pool over a
        snapshot-isolated EDB view with full-selection memoization and
        per-request deadlines, then print a serving summary (statuses,
        p50/p99 latency, memo hit rate).  ``--metrics-out`` writes the
        service metrics as Prometheus text (or JSON with a .json
        suffix); ``--events`` streams per-request records to a JSONL
        event log (see docs/serving.md).

    repro-datalog bench [--families e1,e2,e5] [--sizes 8,16,32]
                        [--repeats 5] [--out-dir .] [--check]
                        [--baseline-dir DIR] [--time-tolerance 1.6]
                        [--counter-tolerance 0.0] [--budget 200000]
        Calibrated wall-clock sweeps over the paper's experiment
        families, writing schema-versioned BENCH_<family>.json reports
        with per-strategy timings, tracer counters and fitted growth
        exponents; ``--check`` instead diffs a fresh run against the
        committed baselines and exits 1 on regression (see
        docs/benchmarking.md).

Also usable as ``python -m repro ...``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .core.compiler import compile_selection
from .core.detection import analyze_recursion, require_separable
from .core.selections import classify_selection
from .datalog.errors import ReproError
from .datalog.parser import parse_program, parse_query
from .datalog.plan_cache import ORDERS
from .datalog.pretty import answers_to_text
from .engine import STRATEGIES, Engine

__all__ = ["main", "build_parser"]


def _nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _worker_list(text: str) -> tuple[int, ...]:
    """Comma-separated positive worker counts, e.g. ``1,2,4``."""
    try:
        values = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {text!r}"
        )
    if not values or any(v < 1 for v in values):
        raise argparse.ArgumentTypeError(
            f"worker counts must be >= 1, got {text!r}"
        )
    return values


def _order_list(text: str) -> tuple[str, ...]:
    """Comma-separated join orders, e.g. ``cost,adaptive``."""
    values = tuple(part.strip() for part in text.split(",") if part.strip())
    unknown = [v for v in values if v not in ORDERS]
    if not values or unknown:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated orders from {ORDERS}, got {text!r}"
        )
    return values


def _backend_spec(text: str) -> str:
    """A storage backend spec: ``memory``, ``sqlite``, ``sqlite:<path>``."""
    from .storage import BACKENDS

    if text in BACKENDS or text.startswith("sqlite:"):
        return text
    raise argparse.ArgumentTypeError(
        f"expected one of {', '.join(BACKENDS)} or 'sqlite:<path>', "
        f"got {text!r}"
    )


def _backend_list(text: str) -> tuple[str, ...]:
    """Comma-separated backend names, e.g. ``sqlite``."""
    from .storage import BACKENDS

    values = tuple(part.strip() for part in text.split(",") if part.strip())
    unknown = [v for v in values if v not in BACKENDS]
    if not values or unknown:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated backends from {BACKENDS}, "
            f"got {text!r}"
        )
    return values


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-datalog",
        description=(
            "Datalog engine with the Separable-recursion compiler of "
            "Naughton (SIGMOD 1988)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="evaluate queries over a program file")
    run.add_argument("program", type=Path, help="Datalog source file")
    run.add_argument(
        "--query",
        action="append",
        default=[],
        help="query text, e.g. 'buys(tom, Y)?' (repeatable; defaults to "
        "the queries found in the file)",
    )
    run.add_argument(
        "--strategy",
        choices=STRATEGIES,
        default="auto",
        help="evaluation strategy (default: auto)",
    )
    run.add_argument(
        "--order",
        choices=ORDERS,
        default="greedy",
        help="join order for compiled bodies (default: greedy); cost "
        "uses the selectivity-aware planner, adaptive adds "
        "mid-fixpoint re-planning (docs/planning.md)",
    )
    run.add_argument(
        "--stats",
        action="store_true",
        help="print the generated-relation statistics after each query",
    )
    run.add_argument(
        "--backend",
        type=_backend_spec,
        default=None,
        help="relation storage backend: memory (default), sqlite "
        "(out-of-core temporary tables), or sqlite:<path> (durable "
        "file; see docs/storage.md)",
    )

    detect = sub.add_parser(
        "detect", help="print separability reports (Definition 2.4)"
    )
    detect.add_argument("program", type=Path)
    detect.add_argument(
        "--predicate",
        default=None,
        help="only report this predicate (default: every IDB predicate)",
    )

    plan = sub.add_parser(
        "plan", help="compile and print the Separable plan for a query"
    )
    plan.add_argument("program", type=Path)
    plan.add_argument("--query", required=True, help="query text")

    advise = sub.add_parser(
        "advise",
        help="show which strategies apply to a query, and why",
    )
    advise.add_argument("program", type=Path)
    advise.add_argument("--query", required=True, help="query text")

    profile = sub.add_parser(
        "profile",
        help="run one query under a tracer and print an EXPLAIN "
        "ANALYZE-style report",
    )
    profile.add_argument("program", type=Path, help="Datalog source file")
    profile.add_argument(
        "query",
        nargs="?",
        default=None,
        help="query text, e.g. 'buys(tom, Y)?' (default: the single "
        "query found in the file)",
    )
    profile.add_argument(
        "--strategy",
        choices=STRATEGIES,
        default="auto",
        help="evaluation strategy to profile (default: auto)",
    )
    profile.add_argument(
        "--order",
        choices=ORDERS,
        default="greedy",
        help="join order for compiled bodies (default: greedy); with "
        "cost or adaptive the report gains a planner "
        "estimate-vs-observed section",
    )
    profile.add_argument(
        "--format",
        choices=("text", "json", "chrome-trace"),
        default="text",
        help="report format (default: text); chrome-trace emits a "
        "Perfetto-loadable trace-event JSON",
    )
    profile.add_argument(
        "--events",
        type=Path,
        default=None,
        help="also stream the raw event log to this JSONL file "
        "(schema repro-events/1, replayable offline)",
    )
    profile.add_argument(
        "--out",
        type=Path,
        default=None,
        help="write the report here instead of stdout",
    )
    profile.add_argument(
        "--no-timings",
        action="store_true",
        help="omit wall-clock figures from the text report (makes the "
        "output deterministic for a given program and query)",
    )
    profile.add_argument(
        "--parallel",
        type=_nonnegative_int,
        default=0,
        metavar="N",
        help="run Separable strategies on an N-worker process pool; "
        "remote spans are stitched back in, so the trace shows one "
        "lane per worker pid (default: 0 = serial)",
    )
    profile.add_argument(
        "--backend",
        type=_backend_spec,
        default=None,
        help="relation storage backend: memory (default), sqlite, or "
        "sqlite:<path> (docs/storage.md)",
    )

    sub.add_parser(
        "report",
        help="rerun the paper's experiments and print Markdown tables",
    )

    fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing across all evaluation strategies",
    )
    fuzz.add_argument(
        "--iterations",
        type=_nonnegative_int,
        default=200,
        help="number of random cases to generate (default: 200; 0 "
        "replays the corpus only)",
    )
    fuzz.add_argument(
        "--seed",
        type=int,
        default=0,
        help="PRNG seed; a campaign is reproducible from it (default: 0)",
    )
    fuzz.add_argument(
        "--strategy",
        action="append",
        default=[],
        choices=STRATEGIES,
        help="restrict to these strategies (repeatable; default: all "
        "applicable per case)",
    )
    fuzz.add_argument(
        "--corpus",
        type=Path,
        default=None,
        help="corpus directory: existing *.dl repro files are replayed "
        "first, and new shrunk failures are written there",
    )
    fuzz.add_argument(
        "--no-shrink",
        action="store_true",
        help="report raw failing cases without delta-debugging them",
    )
    fuzz.add_argument(
        "--parallel-workers",
        type=_worker_list,
        default=None,
        metavar="W[,W...]",
        help="also run the Separable strategy under the worker-pool "
        "executor at these worker counts (comma-separated, e.g. "
        "'1,2,4'), cross-checking each run against the reference",
    )
    fuzz.add_argument(
        "--orders",
        type=_order_list,
        default=None,
        metavar="O[,O...]",
        help="also run semi-naive evaluation under these join orders "
        "(comma-separated, e.g. 'cost,adaptive'), cross-checking each "
        "run against the reference",
    )
    fuzz.add_argument(
        "--backends",
        type=_backend_list,
        default=None,
        metavar="B[,B...]",
        help="also run every applicable strategy (and every --orders "
        "order) over each case migrated onto these storage backends "
        "(comma-separated, e.g. 'sqlite'), cross-checking each run "
        "against the in-memory reference",
    )

    serve = sub.add_parser(
        "serve",
        help="batch-serve queries concurrently with snapshot isolation, "
        "memoization and deadlines",
    )
    serve.add_argument("program", type=Path, help="Datalog source file")
    serve.add_argument(
        "--query",
        action="append",
        default=[],
        help="query text (repeatable; defaults to the queries found in "
        "the file)",
    )
    serve.add_argument(
        "--workers",
        type=_nonnegative_int,
        default=4,
        help="thread-pool size (default: 4)",
    )
    serve.add_argument(
        "--parallel",
        type=_nonnegative_int,
        default=0,
        metavar="N",
        help="evaluate Separable queries on an N-worker process pool "
        "(default: 0 = serial; see docs/parallelism.md)",
    )
    serve.add_argument(
        "--repeat",
        type=_nonnegative_int,
        default=1,
        help="serve each query this many times (default: 1); repeats "
        "exercise the full-selection memo",
    )
    serve.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="per-request wall-clock deadline in seconds "
        "(default: none)",
    )
    serve.add_argument(
        "--strategy",
        choices=STRATEGIES,
        default="auto",
        help="evaluation strategy (default: auto)",
    )
    serve.add_argument(
        "--metrics-out",
        type=Path,
        default=None,
        help="write service metrics here: Prometheus text, or a JSON "
        "snapshot when the suffix is .json",
    )
    serve.add_argument(
        "--events",
        type=Path,
        default=None,
        help="stream per-request service events to this JSONL file "
        "(schema repro-events/1)",
    )
    serve.add_argument(
        "--stats",
        action="store_true",
        help="print per-request answers and status lines, not just the "
        "summary",
    )
    serve.add_argument(
        "--incremental",
        action="store_true",
        help="maintain the IDB incrementally under mutation instead of "
        "invalidating snapshots and memo entries per fingerprint",
    )
    serve.add_argument(
        "--mutations",
        type=_nonnegative_int,
        default=0,
        help="interleave this many deterministic synthetic base-table "
        "mutations with the request stream (default: 0)",
    )
    serve.add_argument(
        "--http-port",
        type=_nonnegative_int,
        default=None,
        metavar="PORT",
        help="serve live telemetry over HTTP on this port (0 = pick an "
        "ephemeral port): /metrics (Prometheus text), /healthz, "
        "/slowlog?n=K",
    )
    serve.add_argument(
        "--http-host",
        default="127.0.0.1",
        help="bind address for --http-port (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--linger",
        type=float,
        default=0.0,
        metavar="SECS",
        help="keep the service (and its HTTP endpoint) up this many "
        "seconds after the batch completes, so scrapers can read the "
        "final state (default: 0)",
    )
    serve.add_argument(
        "--trace-sample",
        type=float,
        default=0.0,
        metavar="RATE",
        help="trace this fraction of requests under a full recording "
        "tracer and log each as a repro-slowlog/1 record "
        "(deterministic over the request sequence; default: 0)",
    )
    serve.add_argument(
        "--slow-threshold",
        type=float,
        default=None,
        metavar="SECS",
        help="also slowlog any request at least this slow (implies "
        "tracing every request; default: off)",
    )
    serve.add_argument(
        "--backend",
        type=_backend_spec,
        default=None,
        help="relation storage backend for the live EDB: memory "
        "(default), sqlite, or sqlite:<path> (docs/storage.md)",
    )
    serve.add_argument(
        "--db-path",
        type=Path,
        default=None,
        metavar="PATH",
        help="durable SQLite file for the live EDB (implies the sqlite "
        "backend): facts already in the file are loaded and mutations "
        "persist across restarts",
    )

    bench = sub.add_parser(
        "bench",
        help="calibrated wall-clock sweeps over the experiment families",
    )
    bench.add_argument(
        "--families",
        default="all",
        help="comma-separated family keys (e1..e9, incremental-write, "
        "parallel-scaling, skewed-join, out-of-core) or 'all' "
        "(default: all)",
    )
    bench.add_argument(
        "--sizes",
        default="8,16,32",
        help="comma-separated size sweep (default: 8,16,32)",
    )
    bench.add_argument(
        "--repeats",
        type=_nonnegative_int,
        default=5,
        help="timed repetitions per cell; the median is reported "
        "(default: 5)",
    )
    bench.add_argument(
        "--out-dir",
        type=Path,
        default=Path("."),
        help="directory for BENCH_<family>.json reports (default: .)",
    )
    bench.add_argument(
        "--check",
        action="store_true",
        help="regression mode: rerun and diff against the baselines in "
        "--baseline-dir instead of writing reports; exits 1 on any "
        "finding, 2 when a baseline is missing",
    )
    bench.add_argument(
        "--baseline-dir",
        type=Path,
        default=None,
        help="where committed BENCH_*.json baselines live "
        "(default: --out-dir)",
    )
    bench.add_argument(
        "--time-tolerance",
        type=float,
        default=None,
        help="max allowed current/baseline normalized-time ratio "
        "(default: 1.6)",
    )
    bench.add_argument(
        "--counter-tolerance",
        type=float,
        default=0.0,
        help="relative slack for tracer counters / deterministic "
        "measures (default: 0 = exact)",
    )
    bench.add_argument(
        "--budget",
        type=_nonnegative_int,
        default=None,
        help="max tuples per generated relation before a run is "
        "recorded as outcome=budget (default: 200000)",
    )
    bench.add_argument(
        "--backend",
        type=_backend_spec,
        default=None,
        help="run every cell with the workload database on this "
        "storage backend: memory | sqlite | sqlite:<path> (default: "
        "plain in-memory; --check then needs a baseline generated "
        "with the same backend)",
    )
    bench.add_argument(
        "--trace-dir",
        type=Path,
        default=None,
        help="write one chrome-trace JSON per cell here and record its "
        "path in the report (default: <out-dir>/traces when writing "
        "reports; off under --check)",
    )
    return parser


def _load(path: Path):
    try:
        text = path.read_text()
    except OSError as exc:
        raise SystemExit(f"cannot read {path}: {exc}")
    return parse_program(text)


def _cmd_run(args: argparse.Namespace) -> int:
    parsed = _load(args.program)
    queries = [parse_query(q) for q in args.query] or list(parsed.queries)
    if not queries:
        print("no queries given (use --query or put 'p(c, X)?' in the file)")
        return 1
    engine = Engine(parsed.program, parsed.database, order=args.order,
                    backend=args.backend)
    for query in queries:
        result = engine.query(query, strategy=args.strategy)
        print(f"% strategy: {result.strategy}")
        print(answers_to_text(query, result.answers))
        if args.stats:
            print(result.stats.format_table())
        print()
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    parsed = _load(args.program)
    predicates = (
        [args.predicate]
        if args.predicate
        else sorted(parsed.program.idb_predicates)
    )
    status = 0
    for predicate in predicates:
        if predicate not in parsed.program.idb_predicates:
            print(f"{predicate}: not an IDB predicate")
            status = 1
            continue
        report = analyze_recursion(parsed.program, predicate)
        print(report.explain())
        print()
        if not report.separable:
            status = 1
    return status


def _cmd_plan(args: argparse.Namespace) -> int:
    parsed = _load(args.program)
    query = parse_query(args.query)
    analysis = require_separable(parsed.program, query.predicate)
    selection = classify_selection(analysis, query)
    if not selection.is_full:
        print(
            f"{query} is not a full selection; it would be evaluated "
            f"through the Lemma 2.1 rewrite. Plans for its full parts:"
        )
        from .core.rewrite import choose_rewrite_class, program_without_class

        cls = choose_rewrite_class(analysis, set(selection.bound))
        print(f"\n-- t_full (seeds via sideways pass through class "
              f"e_{cls.index}):")
        from .core.compiler import compile_plan

        print(compile_plan(analysis, selected_class=cls).describe())
        part = program_without_class(analysis, cls)
        part_analysis = require_separable(part, query.predicate)
        part_selection = classify_selection(part_analysis, query)
        print("\n-- t_part (class dropped; selection now persistent):")
        print(compile_selection(part_selection).describe())
        return 0
    print(compile_selection(selection).describe())
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    parsed = _load(args.program)
    engine = Engine(parsed.program, parsed.database)
    query = parse_query(args.query)
    print(engine.advise(query).explain())
    report = engine.report(query.predicate)
    if report.analysis is not None:
        print(f"\nexpansion: {report.analysis.expansion_regex()}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import json

    from .observability import JsonlFileSink

    parsed = _load(args.program)
    if args.query is not None:
        query = parse_query(args.query)
    else:
        file_queries = list(parsed.queries)
        if len(file_queries) != 1:
            print(
                f"error: {args.program} has {len(file_queries)} queries; "
                f"pass one explicitly, e.g. 'p(c, X)?'",
                file=sys.stderr,
            )
            return 2
        query = file_queries[0]

    engine = Engine(parsed.program, parsed.database, order=args.order,
                    backend=args.backend)
    sink = JsonlFileSink(args.events) if args.events is not None else None
    executor = None
    if args.parallel:
        from .parallel import ParallelConfig, ParallelExecutor

        executor = ParallelExecutor(ParallelConfig(workers=args.parallel))
    try:
        prof = engine.profile(
            query, strategy=args.strategy, sink=sink, parallel=executor
        )
    finally:
        if executor is not None:
            executor.close()
        if sink is not None:
            sink.close()

    if args.format == "text":
        output = prof.render_text(timings=not args.no_timings)
    elif args.format == "json":
        output = json.dumps(prof.to_json(), indent=2, sort_keys=True)
    else:  # chrome-trace
        output = json.dumps(prof.to_chrome_trace(), sort_keys=True)

    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(output + "\n")
        print(f"wrote {args.out}")
    else:
        print(output)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .reporting import main as report_main

    return report_main()


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .differential import FuzzConfig, run_fuzz

    if args.corpus is not None and not args.corpus.is_dir():
        # A typo'd path would otherwise silently replay nothing.
        print(f"error: corpus directory {args.corpus} does not exist",
              file=sys.stderr)
        return 2
    config = FuzzConfig(
        iterations=args.iterations,
        seed=args.seed,
        strategies=tuple(args.strategy) or None,
        corpus_dir=args.corpus,
        shrink=not args.no_shrink,
        parallel_workers=args.parallel_workers,
        orders=args.orders,
        backends=args.backends,
    )
    report = run_fuzz(config)
    print(report.summary())
    return 0 if report.ok else 1


def _serve_mutation_stream(database, program, count: int) -> list[tuple]:
    """A deterministic insert/delete stream over the program's EDB.

    Round-robins inserts of fresh synthetic facts across the base
    predicates, deleting an earlier synthetic insert every third step,
    so the write-heavy smoke run exercises both the counting insert
    path and DRed deletion without depending on the input data.
    """
    names = sorted(
        n for n in program.edb_predicates
        if database.relation(n) is not None
    )
    if not names:
        return []
    ops: list[tuple] = []
    pending: list[tuple[str, tuple]] = []
    for i in range(count):
        if i % 3 == 2 and pending:
            name, fact = pending.pop(0)
            ops.append(("del", name, fact))
        else:
            name = names[i % len(names)]
            arity = database.arity(name) or 1
            fact = tuple(f"mut{i}c{j}" for j in range(arity))
            ops.append(("add", name, fact))
            pending.append((name, fact))
    return ops


def _cmd_serve(args: argparse.Namespace) -> int:
    import json

    from .observability import JsonlFileSink
    from .service import QueryService, ServiceConfig

    parsed = _load(args.program)
    queries = [parse_query(q) for q in args.query] or list(parsed.queries)
    if not queries:
        print("no queries given (use --query or put 'p(c, X)?' in the file)")
        return 1
    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    if args.repeat < 1:
        print("error: --repeat must be >= 1", file=sys.stderr)
        return 2

    if not 0.0 <= args.trace_sample <= 1.0:
        print("error: --trace-sample must be in [0, 1]", file=sys.stderr)
        return 2
    if args.db_path is not None and args.backend not in (None, "sqlite"):
        print("error: --db-path requires --backend sqlite (or no "
              "--backend)", file=sys.stderr)
        return 2

    requests = [q for q in queries for _ in range(args.repeat)]
    config = ServiceConfig(
        workers=args.workers,
        default_deadline_s=args.deadline,
        incremental=args.incremental,
        parallel=args.parallel or None,
        trace_sample=args.trace_sample,
        slow_query_threshold_s=args.slow_threshold,
        backend=args.backend,
        db_path=str(args.db_path) if args.db_path is not None else None,
    )
    mutations = _serve_mutation_stream(
        parsed.database, parsed.program, args.mutations
    )
    sink = JsonlFileSink(args.events) if args.events is not None else None
    httpd = None
    try:
        with QueryService(
            parsed.program, parsed.database, config, sink=sink
        ) as service:
            if args.http_port is not None:
                from .service import ServiceHTTPD

                httpd = ServiceHTTPD(
                    service, host=args.http_host, port=args.http_port
                ).start()
                # The CI smoke parses this exact line to find the
                # ephemeral port; keep the format stable.
                print(f"telemetry listening on {httpd.url}", flush=True)
            if mutations:
                stride = max(1, len(requests) // (len(mutations) + 1))
                futures = []
                stream = iter(mutations)
                for i, q in enumerate(requests):
                    if i and i % stride == 0:
                        op = next(stream, None)
                        if op is not None:
                            kind, name, fact = op
                            if kind == "add":
                                service.mutate(
                                    lambda db, n=name, f=fact:
                                    db.add_fact(n, f)
                                )
                            else:
                                service.mutate(
                                    lambda db, n=name, f=fact:
                                    db.remove_fact(n, f)
                                )
                    futures.append(
                        service.submit(q, strategy=args.strategy)
                    )
                for kind, name, fact in stream:
                    if kind == "add":
                        service.mutate(
                            lambda db, n=name, f=fact: db.add_fact(n, f)
                        )
                    else:
                        service.mutate(
                            lambda db, n=name, f=fact:
                            db.remove_fact(n, f)
                        )
                results = [f.result() for f in futures]
            else:
                results = service.batch(requests, strategy=args.strategy)
            metrics = service.metrics_dict()
            metrics_text = service.metrics_text()
            slow_records = service.slowlog()
            if httpd is not None and args.linger > 0:
                # Scrape window: the batch is done, the service is
                # still open (healthz says ok), metrics are final.
                import time as _time

                _time.sleep(args.linger)
    finally:
        if httpd is not None:
            httpd.stop()
        if sink is not None:
            sink.close()

    if args.stats:
        for result in results:
            line = (
                f"{result.query}  status={result.status} "
                f"answers={len(result.answers)} "
                f"strategy={result.strategy} "
                f"latency={result.latency_s * 1e3:.1f}ms"
            )
            if result.error:
                line += f"  ({result.error})"
            print(line)
        print()

    by_status = metrics["by_status"]
    lat = metrics["latency_s"]
    memo = metrics.get("memo", {})
    lookups = memo.get("hits", 0) + memo.get("misses", 0)
    hit_rate = memo.get("hits", 0) / lookups if lookups else 0.0
    print(f"served {len(results)} requests on {args.workers} workers")
    print(
        "  statuses: "
        + ", ".join(f"{k}={by_status[k]}" for k in sorted(by_status))
    )
    print(
        f"  latency: p50={lat['p50'] * 1e3:.1f}ms "
        f"p99={lat['p99'] * 1e3:.1f}ms max={lat['max'] * 1e3:.1f}ms"
    )
    print(
        f"  memo: {memo.get('hits', 0)} hits / {lookups} lookups "
        f"({hit_rate:.0%}), {memo.get('coalesced', 0)} coalesced, "
        f"{memo.get('size', 0)} resident"
    )
    print(
        f"  snapshots={metrics['snapshots_created']} "
        f"retries={metrics['retries']} "
        f"deadline_trips={metrics['deadline_trips']}"
    )
    if args.incremental:
        print(
            f"  incremental: view_repairs={metrics['view_repairs']} "
            f"view_rebuilds={metrics['view_rebuilds']} "
            f"snapshots_repaired={metrics['snapshots_repaired']} "
            f"memo_survived={memo.get('survived', 0)} "
            f"memo_repaired={memo.get('repaired', 0)}"
        )
    if args.trace_sample or args.slow_threshold is not None:
        sampled = sum(
            1 for r in slow_records if "sampled" in r["reason"]
        )
        slow = sum(1 for r in slow_records if "slow" in r["reason"])
        print(
            f"  slowlog: {len(slow_records)} records "
            f"({sampled} sampled, {slow} over threshold)"
        )

    if args.metrics_out is not None:
        args.metrics_out.parent.mkdir(parents=True, exist_ok=True)
        if args.metrics_out.suffix == ".json":
            args.metrics_out.write_text(
                json.dumps(metrics, indent=2, sort_keys=True) + "\n"
            )
        else:
            args.metrics_out.write_text(metrics_text)
        print(f"wrote {args.metrics_out}")

    failed = sum(1 for r in results if r.status == "error")
    return 0 if failed == 0 else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from .bench import (
        BENCH_BUDGET,
        DEFAULT_TIME_TOLERANCE,
        calibrate,
        compare_reports,
        report_path,
        resolve_families,
        run_family,
        summarize,
        write_report,
    )
    from .budget import Budget

    try:
        families = resolve_families(args.families)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        sizes = [int(s) for s in str(args.sizes).split(",") if s.strip()]
    except ValueError:
        print(f"error: bad --sizes {args.sizes!r}", file=sys.stderr)
        return 2
    if not sizes or any(n <= 0 for n in sizes):
        print("error: --sizes needs positive integers", file=sys.stderr)
        return 2
    budget = (
        Budget(max_relation_tuples=args.budget)
        if args.budget is not None
        else BENCH_BUDGET
    )
    baseline_dir = args.baseline_dir or args.out_dir
    time_tolerance = (
        args.time_tolerance
        if args.time_tolerance is not None
        else DEFAULT_TIME_TOLERANCE
    )

    # Baselines are loaded before any (slow) run so a missing one fails
    # fast, and so --out-dir may equal --baseline-dir.
    baselines: dict[str, dict] = {}
    if args.check:
        for family in families:
            path = report_path(baseline_dir, family.key)
            if not path.is_file():
                print(
                    f"error: no baseline {path}; run bench without "
                    f"--check first and commit the report",
                    file=sys.stderr,
                )
                return 2
            baselines[family.key] = json.loads(path.read_text())

    # Traces only make sense when writing reports; in --check mode the
    # run is a throwaway comparison, so tracing stays off unless asked.
    trace_dir = args.trace_dir
    if trace_dir is None and not args.check:
        trace_dir = args.out_dir / "traces"

    calibration = calibrate()
    findings = []
    for family in families:
        report = run_family(
            family, sizes, repeats=args.repeats, budget=budget,
            calibration=calibration, trace_dir=trace_dir,
            backend=args.backend,
        )
        print(summarize(report))
        if args.check:
            family_findings = compare_reports(
                baselines[family.key],
                report,
                time_tolerance=time_tolerance,
                counter_tolerance=args.counter_tolerance,
            )
            findings.extend(family_findings)
        else:
            args.out_dir.mkdir(parents=True, exist_ok=True)
            print(f"  wrote {write_report(report, args.out_dir)}")
        print()

    if args.check:
        if findings:
            print(f"REGRESSIONS ({len(findings)}):")
            for finding in findings:
                print(f"  {finding}")
            return 1
        print("bench --check: no regressions against baseline")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "detect": _cmd_detect,
        "plan": _cmd_plan,
        "advise": _cmd_advise,
        "profile": _cmd_profile,
        "report": _cmd_report,
        "fuzz": _cmd_fuzz,
        "serve": _cmd_serve,
        "bench": _cmd_bench,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
