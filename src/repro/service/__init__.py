"""Concurrent query serving over the Separable evaluator.

The paper closes (Section 5) by casting the compiled Separable method
as "a useful component of a recursive query processor".  This package
is that component grown to service shape: a thread pool answering many
selections at once over a mutating EDB, with snapshot isolation
(:meth:`~repro.datalog.database.Database.fingerprint`-keyed immutable
copies), cross-request full-selection memoization (the Lemma 2.1 cache
unit, with in-flight coalescing), and per-request wall-clock deadline
budgets with graceful degradation to partial union results.

Entry points: :class:`QueryService` (the server),
:class:`ServiceConfig` (tunables), :class:`ServiceResult` /
:class:`PartialResult` (responses), :class:`FullSelectionMemo` (the
cache), :class:`ServiceMetrics` / :class:`MetricsTracer` (aggregated
observability, exportable as Prometheus text or JSON),
:class:`ServiceHTTPD` (live ``/metrics`` + ``/healthz`` + ``/slowlog``
exposition), and the ``repro-slowlog/1`` record helpers
(:data:`SLOWLOG_SCHEMA`, :func:`build_slowlog_record`,
:func:`validate_slowlog_record`, :class:`SlowlogRing`).
"""

from .httpd import ServiceHTTPD
from .memo import FullSelectionMemo
from .metrics import MetricsTracer, ServiceMetrics
from .service import (
    PartialResult,
    QueryService,
    ServiceConfig,
    ServiceResult,
)
from .slowlog import (
    SLOWLOG_SCHEMA,
    SlowlogRing,
    build_slowlog_record,
    validate_slowlog_record,
)

__all__ = [
    "QueryService",
    "ServiceConfig",
    "ServiceResult",
    "PartialResult",
    "FullSelectionMemo",
    "ServiceMetrics",
    "MetricsTracer",
    "ServiceHTTPD",
    "SLOWLOG_SCHEMA",
    "SlowlogRing",
    "build_slowlog_record",
    "validate_slowlog_record",
]
