"""Service metrics: thread-safe counters, latency quantiles, exports.

Two pieces:

:class:`MetricsTracer`
    A thread-safe tracer facade satisfying the evaluator tracer
    protocol (``span`` / ``count`` / ``record``; see
    :mod:`repro.observability.tracer`).  The service hands one shared
    instance to every worker's evaluation, so the per-loop counters the
    evaluators already emit -- ``iterations``, ``tuples_examined``,
    ``plan_cache_hits``, per-loop ``separable.loop`` span opens --
    aggregate across all requests with no per-request tracer objects.
    Spans are counted (``span:<name>``), not materialized: a service
    cannot keep an unbounded forest.  The stress test's "the carry loop
    ran exactly once for K coalesced duplicates" assertion reads
    ``span:separable.loop`` here.

:class:`ServiceMetrics`
    Request-level aggregates -- queue depth, per-status request counts,
    retries, deadline trips, latency reservoir with p50/p99 -- plus the
    exporters: :meth:`ServiceMetrics.to_metrics_text` renders the
    Prometheus text format (same conventions as
    :func:`repro.observability.export.to_metrics_text`, so one scrape
    pipeline handles traces and the service alike), and
    :meth:`ServiceMetrics.as_dict` the JSON shape the CLI batch driver
    writes as its artifact.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Iterator, Optional

from ..observability.export import (
    MetricFamilies,
    _metric_name,
    escape_label_value,
)

__all__ = ["MetricsTracer", "ServiceMetrics"]


class MetricsTracer:
    """Aggregating, thread-safe stand-in for a recording tracer.

    Every counter bump and span open lands in one flat dict under a
    lock; series observations are dropped (unbounded per-iteration data
    has no place in service-lifetime aggregates).  Satisfies
    :func:`repro.observability.tracer.live` via ``enabled = True``.

    Spans are counted (``span:<name>``) *and* timed: the wall-clock
    width of every span accumulates per name in :meth:`span_seconds`,
    which is what lets :meth:`ServiceMetrics.as_dict` report where
    evaluator time actually goes (loop vs. exit vs. sideways pass)
    without materializing a single span object.

    Two absorption hooks fold external trace material in: a finished
    per-request :class:`~repro.observability.Tracer` via
    :meth:`absorb_tracer` (the service's sampled-request path), and a
    worker-shipped
    :class:`~repro.observability.fragments.TraceFragment` via
    :meth:`absorb_fragment` (what
    :func:`repro.observability.fragments.install_fragment` dispatches
    to when the parallel executor's tracer is this facade).
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._span_seconds: dict[str, float] = {}

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[None]:
        self.count(f"span:{name}")
        start = time.perf_counter()
        try:
            yield None
        finally:
            elapsed = time.perf_counter() - start
            with self._lock:
                self._span_seconds[name] = (
                    self._span_seconds.get(name, 0.0) + elapsed
                )

    def count(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def record(self, name: str, value) -> None:
        pass

    def counter_total(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def counters(self) -> dict[str, int]:
        """A snapshot of every aggregated counter."""
        with self._lock:
            return dict(self._counters)

    def span_seconds(self) -> dict[str, float]:
        """Accumulated wall-clock seconds per span name."""
        with self._lock:
            return dict(self._span_seconds)

    def absorb_tracer(self, tracer) -> None:
        """Fold a finished recording tracer's spans into the aggregates.

        Every span bumps ``span:<name>``, adds its wall-clock width to
        the per-name duration sum, and contributes its counters --
        exactly what would have landed here had the evaluation run
        against this facade directly (minus the dropped series).
        """
        with self._lock:
            for span in tracer.spans():
                name = f"span:{span.name}"
                self._counters[name] = self._counters.get(name, 0) + 1
                if span.end_s is not None:
                    self._span_seconds[span.name] = (
                        self._span_seconds.get(span.name, 0.0)
                        + (span.end_s - span.start_s)
                    )
                for cname, value in span.counters.items():
                    self._counters[cname] = (
                        self._counters.get(cname, 0) + value
                    )

    def absorb_fragment(self, fragment) -> None:
        """Fold a worker trace fragment into the aggregates.

        Packed spans carry portable counters only;
        ``fragment.cache_warmup`` (the per-process plan/index warmup
        the fragment stripped) is folded back in here because a service
        aggregate *wants* total work done, wherever it happened.
        """
        with self._lock:
            for packed in fragment.iter_spans():
                name = f"span:{packed['name']}"
                self._counters[name] = self._counters.get(name, 0) + 1
                self._span_seconds[packed["name"]] = (
                    self._span_seconds.get(packed["name"], 0.0)
                    + (packed["end"] - packed["start"])
                )
                for cname, value in packed["counters"].items():
                    self._counters[cname] = (
                        self._counters.get(cname, 0) + value
                    )
            for cname, value in fragment.cache_warmup.items():
                self._counters[cname] = (
                    self._counters.get(cname, 0) + value
                )

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._span_seconds.clear()


def _quantile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank quantile of an already-sorted nonempty list."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      round(q * (len(sorted_values) - 1))))
    return sorted_values[rank]


class ServiceMetrics:
    """Request-level aggregates for one :class:`~repro.service.QueryService`.

    All methods are thread-safe.  ``latency_capacity`` bounds the
    latency reservoir (most recent completions win), keeping a
    long-lived service's memory flat while the quantiles track current
    behaviour.
    """

    def __init__(self, latency_capacity: int = 65_536) -> None:
        self._lock = threading.Lock()
        self.tracer = MetricsTracer()
        self._submitted = 0
        self._started = 0
        self._completed = 0
        self._by_status: dict[str, int] = {}
        self._retries = 0
        self._deadline_trips = 0
        self._snapshots_created = 0
        self._snapshots_repaired = 0
        self._view_repairs = 0
        self._view_rebuilds = 0
        self._latencies: deque[float] = deque(maxlen=latency_capacity)

    # -- recording (called by the service) --------------------------------

    def request_submitted(self) -> None:
        with self._lock:
            self._submitted += 1

    def request_started(self) -> None:
        with self._lock:
            self._started += 1

    def request_completed(self, status: str, latency_s: float) -> None:
        with self._lock:
            self._completed += 1
            self._by_status[status] = self._by_status.get(status, 0) + 1
            self._latencies.append(latency_s)

    def retry(self) -> None:
        with self._lock:
            self._retries += 1

    def deadline_trip(self) -> None:
        with self._lock:
            self._deadline_trips += 1

    def snapshot_created(self) -> None:
        with self._lock:
            self._snapshots_created += 1

    def snapshot_repaired(self) -> None:
        with self._lock:
            self._snapshots_repaired += 1

    def view_repair(self) -> None:
        with self._lock:
            self._view_repairs += 1

    def view_rebuild(self) -> None:
        with self._lock:
            self._view_rebuilds += 1

    # -- reading ------------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Requests submitted but not yet picked up by a worker."""
        with self._lock:
            return self._submitted - self._started

    @property
    def in_flight(self) -> int:
        """Requests currently being evaluated."""
        with self._lock:
            return self._started - self._completed

    def latency_quantile(self, q: float) -> float:
        with self._lock:
            values = sorted(self._latencies)
        return _quantile(values, q)

    def as_dict(
        self,
        memo_stats: Optional[dict] = None,
        snapshot_stats: Optional[dict] = None,
        plan_cache_stats: Optional[dict] = None,
    ) -> dict:
        """JSON-ready snapshot (the batch driver's artifact payload)."""
        with self._lock:
            values = sorted(self._latencies)
            out: dict = {
                "requests_submitted": self._submitted,
                "requests_completed": self._completed,
                "queue_depth": self._submitted - self._started,
                "in_flight": self._started - self._completed,
                "by_status": dict(self._by_status),
                "retries": self._retries,
                "deadline_trips": self._deadline_trips,
                "snapshots_created": self._snapshots_created,
                "snapshots_repaired": self._snapshots_repaired,
                "view_repairs": self._view_repairs,
                "view_rebuilds": self._view_rebuilds,
                "latency_s": {
                    "count": len(values),
                    "p50": _quantile(values, 0.50),
                    "p99": _quantile(values, 0.99),
                    "max": values[-1] if values else 0.0,
                },
            }
        counters = self.tracer.counters()
        out["evaluator_counters"] = counters
        seconds = self.tracer.span_seconds()
        total = sum(seconds.values())
        out["evaluator_phases"] = {
            name: {
                "seconds": seconds[name],
                "count": counters.get(f"span:{name}", 0),
                "share": seconds[name] / total if total else 0.0,
            }
            for name in sorted(seconds)
        }
        if memo_stats is not None:
            out["memo"] = dict(memo_stats)
        if snapshot_stats is not None:
            out["snapshot_cache"] = dict(snapshot_stats)
        if plan_cache_stats is not None:
            out["plan_cache"] = dict(plan_cache_stats)
        return out

    def to_metrics_text(
        self,
        memo_stats: Optional[dict] = None,
        snapshot_stats: Optional[dict] = None,
        plan_cache_stats: Optional[dict] = None,
    ) -> str:
        """Prometheus text exposition of the service's current state.

        ``repro_service_*`` gauges/counters/summary plus every
        aggregated evaluator counter under the same
        ``repro_<counter>_total`` names
        :func:`repro.observability.export.to_metrics_text` uses -- one
        scrape config covers offline traces and the live service.
        ``# HELP``/``# TYPE`` are emitted once per family and label
        values are escaped per the exposition format.
        """
        snap = self.as_dict(
            memo_stats=memo_stats,
            snapshot_stats=snapshot_stats,
            plan_cache_stats=plan_cache_stats,
        )
        lines: list[str] = []
        families = MetricFamilies(lines)

        def gauge(name: str, help_text: str, value) -> None:
            metric = f"repro_service_{name}"
            families.declare(metric, help_text, kind="gauge")
            lines.append(f"{metric} {value}")

        gauge("queue_depth", "Requests waiting for a worker.",
              snap["queue_depth"])
        gauge("in_flight", "Requests currently evaluating.",
              snap["in_flight"])

        families.declare(
            "repro_service_requests_total",
            "Completed requests by status.",
        )
        for status in sorted(snap["by_status"]):
            lines.append(
                f"repro_service_requests_total"
                f'{{status="{escape_label_value(status)}"}} '
                f"{snap['by_status'][status]}"
            )
        for name, help_text in (
            ("retries_total", "Attempts retried after a transient trip."),
            ("deadline_trips_total", "Wall-clock budget trips."),
            ("snapshots_total", "EDB snapshots materialized."),
            ("snapshots_repaired_total",
             "Snapshots rebuilt by structural sharing after a mutation."),
            ("view_repairs_total",
             "Incremental IDB repairs applied by the maintained view."),
            ("view_rebuilds_total",
             "Full view rebuilds after a delta-capture overflow."),
        ):
            key = {
                "retries_total": "retries",
                "deadline_trips_total": "deadline_trips",
                "snapshots_total": "snapshots_created",
                "snapshots_repaired_total": "snapshots_repaired",
                "view_repairs_total": "view_repairs",
                "view_rebuilds_total": "view_rebuilds",
            }[name]
            metric = f"repro_service_{name}"
            families.declare(metric, help_text)
            lines.append(f"{metric} {snap[key]}")

        lat = snap["latency_s"]
        families.declare(
            "repro_service_latency_seconds",
            "Request latency quantiles over the recent reservoir.",
            kind="summary",
        )
        lines.append(
            f'repro_service_latency_seconds{{quantile="0.5"}} '
            f"{lat['p50']:.6f}"
        )
        lines.append(
            f'repro_service_latency_seconds{{quantile="0.99"}} '
            f"{lat['p99']:.6f}"
        )
        lines.append(f"repro_service_latency_seconds_count {lat['count']}")

        if memo_stats is not None:
            families.declare(
                "repro_service_memo_events_total",
                "Full-selection memo events by kind.",
            )
            for kind in ("hits", "misses", "coalesced", "evictions",
                         "repaired", "survived"):
                lines.append(
                    f'repro_service_memo_events_total{{kind="{kind}"}} '
                    f"{memo_stats.get(kind, 0)}"
                )
            gauge("memo_size", "Entries resident in the memo.",
                  memo_stats.get("size", 0))
            lookups = memo_stats.get("hits", 0) + memo_stats.get(
                "misses", 0
            )
            gauge(
                "memo_hit_ratio",
                "Memo hits over lookups (0 when idle).",
                f"{memo_stats.get('hits', 0) / lookups:.6f}"
                if lookups else "0.000000",
            )

        if snapshot_stats is not None:
            gauge(
                "snapshot_cache_entries",
                "EDB snapshots currently resident in the LRU.",
                snapshot_stats.get("entries", 0),
            )
            gauge(
                "snapshot_cache_capacity",
                "Configured snapshot LRU bound.",
                snapshot_stats.get("capacity", 0),
            )

        if plan_cache_stats is not None:
            gauge(
                "plan_cache_entries",
                "Compiled join plans resident process-wide.",
                plan_cache_stats.get("size", 0),
            )
            plan_lookups = plan_cache_stats.get(
                "hits", 0
            ) + plan_cache_stats.get("misses", 0)
            gauge(
                "plan_cache_hit_ratio",
                "Join-plan cache hits over lookups (0 when idle).",
                f"{plan_cache_stats.get('hits', 0) / plan_lookups:.6f}"
                if plan_lookups else "0.000000",
            )
            metric = "repro_service_plan_cache_evictions_total"
            families.declare(
                metric, "Compiled join plans evicted by the size bound."
            )
            lines.append(
                f"{metric} {plan_cache_stats.get('evictions', 0)}"
            )
            orders = plan_cache_stats.get("orders") or {}
            if orders:
                metric = "repro_service_plan_requests_total"
                families.declare(
                    metric, "Join-plan lookups by requested order."
                )
                for order in sorted(orders):
                    lines.append(
                        f'{metric}{{order="{escape_label_value(order)}"}} '
                        f"{orders[order]}"
                    )

        phases = snap["evaluator_phases"]
        if phases:
            families.declare(
                "repro_service_span_seconds_total",
                "Evaluator wall-clock seconds by span name.",
            )
            for name in sorted(phases):
                lines.append(
                    f"repro_service_span_seconds_total"
                    f'{{span="{escape_label_value(name)}"}} '
                    f"{phases[name]['seconds']:.6f}"
                )

        plain: dict[str, int] = {}
        labelled: dict[str, dict[str, int]] = {}
        for name, value in snap["evaluator_counters"].items():
            if ":" in name:
                metric, _, label = name.partition(":")
                labelled.setdefault(metric, {})[label] = value
            else:
                plain[name] = value
        for name in sorted(plain):
            metric = _metric_name(name)
            families.declare(
                metric,
                f"Evaluator counter {name!r} summed over all requests.",
            )
            lines.append(f"{metric} {plain[name]}")
        for name in sorted(labelled):
            metric = _metric_name(name)
            families.declare(
                metric, f"Evaluator counter {name!r} by label."
            )
            for label in sorted(labelled[name]):
                lines.append(
                    f'{metric}{{rule="{escape_label_value(label)}"}} '
                    f"{labelled[name][label]}"
                )
        return "\n".join(lines) + "\n"
