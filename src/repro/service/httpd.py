"""Live telemetry over HTTP: /metrics, /healthz, /slowlog.

A stdlib :class:`http.server.ThreadingHTTPServer` on a daemon thread,
bound to a :class:`~repro.service.QueryService`:

``/metrics``
    The service's Prometheus text exposition (exactly
    :meth:`QueryService.metrics_text` -- the same bytes ``repro-datalog
    serve --metrics-out`` writes), content type
    ``text/plain; version=0.0.4``.

``/healthz``
    ``200 ok`` while the service accepts work, ``503 closed`` after
    :meth:`QueryService.close` -- the liveness/readiness answer a
    probe wants, JSON body with queue depth and in-flight count.

``/slowlog?n=K``
    The most recent ``K`` slow-query records (``repro-slowlog/1``
    JSON array, oldest first; default: the whole ring).

Bind with ``port=0`` for an ephemeral port (tests and the CI smoke do)
and read the chosen one back from :attr:`ServiceHTTPD.port`.  The
server serves each request from its own thread, so a scrape never
blocks the query workers -- the exporters only take the metrics locks.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlparse

__all__ = ["ServiceHTTPD"]

#: The Prometheus text exposition content type (scrapers sniff this).
_METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _Handler(BaseHTTPRequestHandler):
    # The bound service is attached to the *server* (one handler
    # instance exists per request, the server persists).
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args) -> None:
        # Probes hit /healthz every few seconds; stderr noise helps
        # nobody.  Errors still surface through the response codes.
        pass

    def _reply(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        service = self.server.service  # type: ignore[attr-defined]
        url = urlparse(self.path)
        if url.path == "/metrics":
            body = service.metrics_text().encode("utf-8")
            self._reply(200, body, _METRICS_CONTENT_TYPE)
            return
        if url.path == "/healthz":
            closed = getattr(service, "_closed", False)
            payload = {
                "status": "closed" if closed else "ok",
                "queue_depth": service.metrics.queue_depth,
                "in_flight": service.metrics.in_flight,
            }
            body = (json.dumps(payload, sort_keys=True) + "\n").encode(
                "utf-8"
            )
            self._reply(
                503 if closed else 200, body, "application/json"
            )
            return
        if url.path == "/slowlog":
            n: Optional[int] = None
            raw = parse_qs(url.query).get("n", [])
            if raw:
                try:
                    n = max(0, int(raw[0]))
                except ValueError:
                    self._reply(
                        400,
                        b'{"error": "n must be an integer"}\n',
                        "application/json",
                    )
                    return
            body = (
                json.dumps(service.slowlog(n), sort_keys=True) + "\n"
            ).encode("utf-8")
            self._reply(200, body, "application/json")
            return
        self._reply(404, b'{"error": "not found"}\n', "application/json")


class ServiceHTTPD:
    """One telemetry HTTP server bound to one query service.

    Use as a context manager or call :meth:`start`/:meth:`stop`.  The
    serving thread is a daemon, so a process exiting mid-scrape does
    not hang; :meth:`stop` shuts the listener down cleanly.
    """

    def __init__(
        self,
        service,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.daemon_threads = True
        self._server.service = service  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (the ephemeral one when constructed with 0)."""
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServiceHTTPD":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name="repro-service-httpd",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "ServiceHTTPD":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
