"""Slow-query log: schema-versioned records for sampled/slow requests.

Every served request gets a trace id; a deterministic sampler (and an
optional latency threshold) decides which requests run under a real
recording :class:`~repro.observability.Tracer` and land here as one
JSONL record each -- the ``EXPLAIN ANALYZE`` the operator wishes they
had run, captured after the fact.

Records follow the ``repro-slowlog/1`` schema: query text, strategy,
latency, why the record exists (``sampled`` / ``slow`` / both), the
trace's reconciled counter totals, memo and plan-cache disposition over
the request, and the worker fan-out (how many trace fragments pool
workers shipped home).  They travel through the service's existing
event sink (interleaved with ``service_request`` events; replay skips
unknown types) and a bounded in-memory ring serves the HTTP
``/slowlog`` endpoint.
"""

from __future__ import annotations

import threading
from typing import Optional

__all__ = [
    "SLOWLOG_SCHEMA",
    "SlowlogRing",
    "build_slowlog_record",
    "validate_slowlog_record",
]

#: Version stamp carried by every slow-query record.
SLOWLOG_SCHEMA = "repro-slowlog/1"

#: Field -> required type(s) for schema validation.
_REQUIRED: dict[str, tuple] = {
    "type": (str,),
    "schema": (str,),
    "trace_id": (str,),
    "query": (str,),
    "strategy": (str,),
    "status": (str,),
    "reason": (list,),
    "latency_s": (int, float),
    "answers": (int,),
    "attempts": (int,),
    "counter_totals": (dict,),
    "memo": (dict,),
    "worker_fragments": (int,),
    "spans": (int,),
}


def build_slowlog_record(
    *,
    trace_id: str,
    query: str,
    strategy: str,
    status: str,
    reason: list[str],
    latency_s: float,
    answers: int,
    attempts: int,
    counter_totals: dict,
    memo: dict,
    worker_fragments: int,
    spans: int,
    error: Optional[str] = None,
) -> dict:
    """Assemble one ``repro-slowlog/1`` record (plain JSON-ready dict).

    ``reason`` says why the record exists: ``["sampled"]``,
    ``["slow"]``, or both.  ``memo`` is the request's memo disposition
    -- the delta of :meth:`FullSelectionMemo.stats` across the request
    (hits/misses/coalesced the request itself caused).
    ``worker_fragments`` counts the trace fragments pool workers
    shipped home (0 on a serial evaluation).
    """
    record = {
        "type": "slow_query",
        "schema": SLOWLOG_SCHEMA,
        "trace_id": trace_id,
        "query": query,
        "strategy": strategy,
        "status": status,
        "reason": list(reason),
        "latency_s": latency_s,
        "answers": answers,
        "attempts": attempts,
        "counter_totals": dict(counter_totals),
        "memo": dict(memo),
        "worker_fragments": worker_fragments,
        "spans": spans,
    }
    if error is not None:
        record["error"] = error
    return record


def validate_slowlog_record(record: dict) -> list[str]:
    """Problems with a record against ``repro-slowlog/1`` (empty = valid)."""
    problems: list[str] = []
    if not isinstance(record, dict):
        return [f"record is {type(record).__name__}, not dict"]
    for field, types in _REQUIRED.items():
        if field not in record:
            problems.append(f"missing field {field!r}")
        elif not isinstance(record[field], types):
            problems.append(
                f"field {field!r} is {type(record[field]).__name__}, "
                f"expected {'/'.join(t.__name__ for t in types)}"
            )
    if not problems:
        if record["type"] != "slow_query":
            problems.append(f"type is {record['type']!r}")
        if record["schema"] != SLOWLOG_SCHEMA:
            problems.append(
                f"schema is {record['schema']!r}, "
                f"expected {SLOWLOG_SCHEMA!r}"
            )
        bad = [r for r in record["reason"]
               if r not in ("sampled", "slow")]
        if bad or not record["reason"]:
            problems.append(f"bad reason list {record['reason']!r}")
        for key, value in record["counter_totals"].items():
            if not isinstance(key, str) or not isinstance(value, int):
                problems.append(
                    f"counter_totals entry {key!r}: {value!r}"
                )
                break
    return problems


class SlowlogRing:
    """Thread-safe bounded ring of recent slow-query records.

    The HTTP ``/slowlog`` endpoint reads from here; the sink (when the
    service has one) gets every record regardless, so the ring bounds
    memory, not durability.
    """

    def __init__(self, capacity: int = 256) -> None:
        self._lock = threading.Lock()
        self._capacity = max(1, capacity)
        self._records: list[dict] = []
        self._total = 0

    def append(self, record: dict) -> None:
        with self._lock:
            self._records.append(record)
            self._total += 1
            if len(self._records) > self._capacity:
                del self._records[: -self._capacity]

    def recent(self, n: Optional[int] = None) -> list[dict]:
        """The most recent ``n`` records, oldest first (all if ``None``)."""
        with self._lock:
            records = list(self._records)
        if n is not None and n >= 0:
            records = records[len(records) - min(n, len(records)):]
        return records

    @property
    def total(self) -> int:
        """Records ever appended (survives ring eviction)."""
        with self._lock:
            return self._total

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)
