"""A concurrent query service over one program and one mutable EDB.

:class:`QueryService` is the deployment shape the paper's Section 5
sketches ("a useful component of a recursive query processor") grown to
serving size: a thread pool answers many queries at once while the EDB
keeps changing underneath, with three guarantees no bare
:class:`~repro.engine.Engine` call gives:

**Snapshot isolation.**  Each request is served against an immutable
copy of the EDB captured at dequeue time, keyed on
:meth:`~repro.datalog.database.Database.fingerprint`.  Capture and
mutation are serialized on one lock (mutations go through
:meth:`QueryService.mutate`), so a fingerprint can never be torn --
every answer is exactly the serial answer for *some* database state the
service actually passed through.  Snapshots are shared by every request
that sees the same fingerprint and a small LRU keeps recent ones warm
across a mutation burst.

**Full-selection memoization.**  Lemma 2.1 reduces every selection to a
union of full selections; the service threads a
:class:`~repro.service.FullSelectionMemo` (scoped to the snapshot
fingerprint) through the Separable evaluator, so already-answered full
selections are served from cache and K concurrent identical ones
coalesce onto a single carry/seen run.

**Deadline budgets.**  Every request runs under a per-attempt
:class:`~repro.budget.Budget` whose wall clock is armed at submission:
a divergent or overweight evaluation trips
:class:`~repro.errors.BudgetExceeded` inside its fixpoint loop instead
of pinning a worker.  Wall-clock trips (the only retryable kind) get
bounded retry with exponential backoff; a Lemma 2.1 union that dies
mid-way degrades into a :class:`PartialResult` carrying the merged
:class:`~repro.stats.EvaluationStats` and answers of its completed
branches.
"""

from __future__ import annotations

import math
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Optional, Sequence, Union

from ..budget import Budget, UNLIMITED
from ..core.analysis import RecursionAnalysis
from ..core.api import full_selection_from_extent
from ..core.detection import require_separable
from ..core.selections import SelectionDirtiness
from ..datalog.atoms import Atom
from ..datalog.database import Database
from ..datalog.errors import BudgetExceeded, ReproError
from ..datalog.parser import parse_query
from ..datalog.programs import Program
from ..engine import Engine, QueryResult
from ..maintenance import DeltaCapture, MaintainedView
from ..observability.events import EVENT_SCHEMA, EventSink
from ..observability.fragments import reconciled_counter_totals
from ..observability.tracer import Tracer
from ..stats import EvaluationStats
from .memo import FullSelectionMemo
from .metrics import ServiceMetrics
from .slowlog import SlowlogRing, build_slowlog_record

__all__ = [
    "ServiceConfig",
    "PartialResult",
    "ServiceResult",
    "QueryService",
]


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables for one :class:`QueryService`.

    Attributes
    ----------
    workers:
        Thread-pool size.
    memo_size:
        Bound on the full-selection memo (entries, LRU).
    snapshot_cache_size:
        How many recent EDB snapshots to keep warm.
    default_deadline_s:
        Per-request wall-clock deadline applied when a request names
        none (``None`` = no deadline).  Measured from submission, so
        queue wait counts -- a deadline is a promise to the caller,
        not to the evaluator.
    max_retries:
        Extra attempts after a *retryable* (wall-clock) budget trip.
    retry_backoff_s:
        Sleep before the first retry; doubles per attempt.
    order:
        Join order handed to every evaluation.
    budget:
        Base tuple/iteration budget shared by all requests; the
        per-request deadline is layered onto a copy.
    incremental:
        Maintain a materialized IDB view under mutation (see
        :mod:`repro.maintenance`): :meth:`QueryService.mutate` captures
        per-relation deltas, repairs the view incrementally, migrates
        surviving/repairable memo entries to the new fingerprint, and
        rebuilds the snapshot by structural sharing -- instead of
        invalidating everything the fingerprint bump used to discard.
    parallel:
        Worker-pool executor specification for the Separable
        strategies, with :func:`repro.parallel.resolve_parallel`
        semantics: ``None``/``False`` serial, ``True`` env/CPU-sized,
        an ``int`` worker count, a
        :class:`~repro.parallel.ParallelConfig`, or a ready
        :class:`~repro.parallel.ParallelExecutor`.  The resolved
        executor comes from the process-wide registry and is shared
        across services; :meth:`QueryService.close` leaves it running.
    trace_sample:
        Fraction of requests served under a full recording
        :class:`~repro.observability.Tracer` (0.0 = none, 1.0 = all).
        Sampling is deterministic over the request sequence number --
        rate 0.25 traces exactly every 4th request -- so tests and
        operators can predict which requests carry span trees.  Every
        sampled request lands one ``repro-slowlog/1`` record.
    slow_query_threshold_s:
        When set, *every* request runs under a recording tracer and any
        request whose latency reaches the threshold lands a slowlog
        record, sampled or not (the after-the-fact EXPLAIN ANALYZE for
        the queries that actually hurt).
    slowlog_capacity:
        Bound on the in-memory slow-query ring the HTTP ``/slowlog``
        endpoint reads (oldest evicted first; a sink, when configured,
        still receives every record).
    backend:
        Storage backend spec for the live EDB
        (:func:`repro.storage.resolve_backend` semantics: ``None`` /
        ``"memory"`` / ``"sqlite"`` / ``"sqlite:<path>"`` / a backend
        object).  The EDB handed to :class:`QueryService` is migrated
        onto it at construction.
    db_path:
        Durable SQLite database file for the live EDB.  Implies the
        ``sqlite`` backend; facts already in the file are loaded, and
        mutations persist across service restarts.  Snapshots become
        read-only WAL connections instead of tuple-set copies (see
        ``docs/storage.md``).
    """

    workers: int = 4
    memo_size: int = 1024
    snapshot_cache_size: int = 4
    default_deadline_s: Optional[float] = None
    max_retries: int = 1
    retry_backoff_s: float = 0.02
    order: str = "greedy"
    budget: Budget = UNLIMITED
    incremental: bool = False
    parallel: object = None
    trace_sample: float = 0.0
    slow_query_threshold_s: Optional[float] = None
    slowlog_capacity: int = 256
    backend: object = None
    db_path: Optional[str] = None


@dataclass(frozen=True)
class PartialResult:
    """What a deadline-tripped union evaluation still managed to answer.

    ``stats`` is the *merged* :class:`EvaluationStats` over every
    completed full selection of the Lemma 2.1 union (plus the failing
    branch's partial work) -- see the satellite contract in
    :mod:`repro.core.api`.
    """

    answers: frozenset
    stats: Optional[EvaluationStats]
    reason: str
    limit: Optional[str]


@dataclass(frozen=True)
class ServiceResult:
    """One served request: answers plus serving provenance.

    ``status`` is ``"ok"`` (complete answers), ``"partial"`` (budget
    tripped mid-union; ``partial`` carries what completed) or
    ``"error"`` (no answers; ``error`` says why).  ``fingerprint`` is
    the EDB fingerprint of the snapshot the request was served against
    -- the handle callers use to reason about which database state they
    observed.  ``trace_id`` identifies the request in the slow-query
    log (every request gets one, whether or not it was sampled).
    """

    query: Atom
    strategy: str
    status: str
    answers: frozenset
    stats: Optional[EvaluationStats]
    fingerprint: tuple
    latency_s: float
    attempts: int
    error: Optional[str] = None
    limit: Optional[str] = None
    partial: Optional[PartialResult] = None
    result: Optional[QueryResult] = None
    trace_id: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def __len__(self) -> int:
        return len(self.answers)

    def sorted(self) -> list[tuple]:
        """Answers in a stable order (for display and tests)."""
        return sorted(self.answers, key=repr)


@dataclass
class _Snapshot:
    """One immutable EDB state with its per-state engine."""

    fingerprint: tuple
    db: Database
    engine: Engine


class QueryService:
    """Serve concurrent queries over a snapshot-isolated EDB view.

    Use as a context manager (or call :meth:`close`); the thread pool
    holds non-daemon workers.  ``sink`` is an optional
    :class:`~repro.observability.EventSink` receiving one
    ``service_request`` event per completion (the stream opens with a
    standard ``trace_start`` record so
    :func:`repro.observability.read_events` accepts it; trace replay
    skips the service records as unknown types).
    """

    def __init__(
        self,
        program: Program,
        edb: Database,
        config: Optional[ServiceConfig] = None,
        metrics: Optional[ServiceMetrics] = None,
        sink: Optional[EventSink] = None,
    ) -> None:
        self.program = program
        self.config = config or ServiceConfig()
        backend = self.config.backend
        if self.config.db_path is not None:
            if backend not in (None, "sqlite"):
                raise ValueError(
                    "db_path requires the sqlite backend, "
                    f"got backend={backend!r}"
                )
            backend = f"sqlite:{self.config.db_path}"
        if backend is not None:
            from ..storage import ensure_backend

            edb = ensure_backend(edb, backend)
        self.edb = edb
        self.metrics = metrics or ServiceMetrics()
        self.memo = FullSelectionMemo(self.config.memo_size)
        self.slowlog_ring = SlowlogRing(self.config.slowlog_capacity)
        self._seq_lock = threading.Lock()
        self._seq = 0
        self._sink = sink
        self._sink_lock = threading.Lock()
        if sink is not None:
            sink.emit(
                {
                    "type": "trace_start",
                    "schema": EVENT_SCHEMA,
                    "context": {"component": "service",
                                "workers": self.config.workers},
                }
            )
        self._snapshot_lock = threading.Lock()
        self._snapshots: OrderedDict[tuple, _Snapshot] = OrderedDict()
        self._view: Optional[MaintainedView] = (
            MaintainedView(program, edb, order=self.config.order)
            if self.config.incremental
            else None
        )
        self._analysis_cache: dict[str, Optional[RecursionAnalysis]] = {}
        self._deps_cache: dict[RecursionAnalysis, frozenset[str]] = {}
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-service",
        )
        # Registry-shared process pool (or None): close() must not shut
        # it down -- other services and future requests reuse it.
        if self.config.parallel is not None:
            from ..parallel import resolve_parallel

            self._parallel = resolve_parallel(self.config.parallel)
        else:
            self._parallel = None
        self._closed = False

    # -- lifecycle ----------------------------------------------------------

    def close(self, wait: bool = True) -> None:
        """Stop accepting work and (by default) drain the pool."""
        self._closed = True
        self._executor.shutdown(wait=wait)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- mutation and snapshots ---------------------------------------------

    def mutate(self, fn: Callable[[Database], object]) -> object:
        """Apply a mutation to the live EDB, atomically w.r.t. snapshots.

        ``fn`` receives the live database; whatever it returns is
        passed through.  Because snapshot capture holds the same lock,
        no request can ever observe a half-applied mutation (a "torn"
        fingerprint): it is served against the state before ``fn`` or
        after it, never during.

        With :attr:`ServiceConfig.incremental` set, the mutation is
        observed as per-relation deltas and absorbed before the lock is
        released: the maintained IDB view is repaired (or rebuilt on a
        delta-capture overflow), memo entries for clean full-selection
        keys migrate to the new fingerprint, and the next snapshot is
        assembled by structural sharing of unchanged relations.
        """
        with self._snapshot_lock:
            if self._view is None:
                return fn(self.edb)
            old_fp = self.edb.fingerprint()
            capture = DeltaCapture(
                self.edb, guard_predicates=self.program.idb_predicates
            )
            try:
                return fn(self.edb)
            finally:
                capture.detach()
                self._absorb_mutation(old_fp, capture)

    def _absorb_mutation(self, old_fp: tuple,
                         capture: DeltaCapture) -> None:
        """Repair view, memo, and snapshot after a captured mutation."""
        new_fp = self.edb.fingerprint()
        if new_fp == old_fp:
            return
        assert self._view is not None
        if capture.overflow:
            self._view.rebuild(self.edb)
            self.metrics.view_rebuild()
            return
        net = capture.net()
        try:
            idb_changes = self._view.apply(net)
        except Exception:
            # A delta the maintenance layer cannot express exactly
            # (e.g. through an aliased relation) degrades to a rebuild;
            # correctness first, incrementality when possible.
            self._view.rebuild(self.edb)
            self.metrics.view_rebuild()
            return
        self.metrics.view_repair()
        mutated = frozenset(net)
        self._repair_memo(old_fp, new_fp, mutated, idb_changes)
        self._repair_snapshot(old_fp, new_fp, mutated)

    def _primary_analysis(self, pred: str) -> Optional[RecursionAnalysis]:
        """The service program's own analysis of ``pred`` (None: not
        separable), as opposed to a Lemma 2.1 rewrite's analysis."""
        if pred not in self._analysis_cache:
            try:
                analysis = require_separable(self.program, pred)
            except ReproError:
                analysis = None
            self._analysis_cache[pred] = analysis
        return self._analysis_cache[pred]

    def _analysis_dependencies(
        self, analysis: RecursionAnalysis
    ) -> frozenset[str]:
        """All predicates the analysed recursion transitively reads."""
        cached = self._deps_cache.get(analysis)
        if cached is not None:
            return cached
        base: set[str] = set()
        for rule_analysis in analysis.rules:
            for atom in rule_analysis.nonrecursive_atoms:
                base.add(atom.predicate)
        for rule in analysis.exit_rules:
            for atom in rule.body:
                base.add(atom.predicate)
        deps = set(base)
        for pred in base:
            if pred in self.program.predicates:
                deps |= self.program.depends_on(pred)
        frozen = frozenset(deps)
        self._deps_cache[analysis] = frozen
        return frozen

    def _repair_memo(
        self,
        old_fp: tuple,
        new_fp: tuple,
        mutated: frozenset[str],
        idb_changes: dict[str, tuple[frozenset, frozenset]],
    ) -> None:
        """Migrate old-fingerprint memo entries to the new fingerprint.

        Theorem 2.1's class independence gives the dirtiness rule: a
        full-selection entry of the primary analysis changes only if
        some inserted or deleted ``t`` fact projects onto its selected
        component exactly at its seed.  Clean entries survive verbatim;
        dirty ones are repaired by projecting the maintained extent.
        Entries for non-primary analyses (``t_part`` rewrites) survive
        only when the mutation cannot reach anything they read.
        """
        changed_by_pred = {
            pred: ins | dels for pred, (ins, dels) in idb_changes.items()
        }
        dirtiness: dict[str, SelectionDirtiness] = {}

        def decide(tail: tuple, value):
            if len(tail) != 4:
                return ("drop", None)
            analysis, component, seed, _order = tail
            if not isinstance(analysis, RecursionAnalysis):
                return ("drop", None)
            pred = analysis.predicate
            primary = self._primary_analysis(pred)
            if primary is not None and analysis == primary:
                changed = changed_by_pred.get(pred)
                if not changed:
                    return ("keep", value)
                probe = dirtiness.get(pred)
                if probe is None:
                    probe = SelectionDirtiness(analysis, changed)
                    dirtiness[pred] = probe
                try:
                    if not probe.dirty(component, seed):
                        return ("keep", value)
                    up_tuples = full_selection_from_extent(
                        analysis, component, seed,
                        self._view.db.tuples(pred),
                    )
                except ValueError:
                    return ("drop", None)
                return ("repair", (up_tuples, EvaluationStats()))
            deps = self._analysis_dependencies(analysis)
            if deps & mutated or any(
                changed_by_pred.get(p) for p in deps
            ):
                return ("drop", None)
            return ("keep", value)

        self.memo.rescope(old_fp, new_fp, decide)

    def _repair_snapshot(self, old_fp: tuple, new_fp: tuple,
                         mutated: frozenset[str]) -> None:
        """Build the new-fingerprint snapshot by structural sharing.

        Snapshots are never mutated once captured, so relations the
        delta did not touch are attached as the *same* objects the
        previous snapshot serves from; only mutated relations are
        copied fresh from the live EDB.  Without a previous snapshot
        there is nothing to share and the next request pays the usual
        full copy.
        """
        prev = self._snapshots.get(old_fp)
        if prev is None:
            return
        db = Database()
        for name in sorted(self.edb.predicates()):
            live = self.edb.relation(name)
            assert live is not None
            shared = prev.db.relation(name)
            if (name in mutated or shared is None
                    or shared.arity != live.arity):
                # A stable view of the mutated relation: a copy for the
                # in-memory backend, a read-only pinned connection for
                # durable SQLite.
                db.attach(live.snapshot(), name)
            else:
                db.attach(shared, name)
        snap = _Snapshot(
            fingerprint=new_fp,
            db=db,
            engine=Engine(
                self.program,
                db,
                budget=self.config.budget,
                order=self.config.order,
                tracer=self.metrics.tracer,
            ),
        )
        self._snapshots[new_fp] = snap
        self._snapshots.move_to_end(new_fp)
        while len(self._snapshots) > self.config.snapshot_cache_size:
            self._snapshots.popitem(last=False)
        self.metrics.snapshot_repaired()

    def add_fact(self, name: str, fact: tuple) -> bool:
        """Convenience :meth:`mutate` for the common single-fact case."""
        return self.mutate(lambda db: db.add_fact(name, fact))

    def _snapshot(self) -> _Snapshot:
        """The snapshot for the EDB's current fingerprint (LRU-cached)."""
        with self._snapshot_lock:
            fingerprint = self.edb.fingerprint()
            snap = self._snapshots.get(fingerprint)
            if snap is not None:
                self._snapshots.move_to_end(fingerprint)
                return snap
            # Snapshots are never mutated once captured, so a stable
            # read view is enough; out-of-core backends make this much
            # cheaper than the deep copy it used to be.
            db = self.edb.snapshot()
            snap = _Snapshot(
                fingerprint=fingerprint,
                db=db,
                engine=Engine(
                    self.program,
                    db,
                    budget=self.config.budget,
                    order=self.config.order,
                    tracer=self.metrics.tracer,
                ),
            )
            self._snapshots[fingerprint] = snap
            while len(self._snapshots) > self.config.snapshot_cache_size:
                self._snapshots.popitem(last=False)
        self.metrics.snapshot_created()
        return snap

    # -- serving ------------------------------------------------------------

    def submit(
        self,
        query: Union[Atom, str],
        strategy: str = "auto",
        deadline_s: Optional[float] = None,
    ) -> "Future[ServiceResult]":
        """Enqueue one request; returns a future of :class:`ServiceResult`.

        Query text is parsed here (synchronously) so malformed requests
        fail fast in the caller, not in a worker.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        if isinstance(query, str):
            query = parse_query(query)
        if deadline_s is None:
            deadline_s = self.config.default_deadline_s
        submitted = time.monotonic()
        with self._seq_lock:
            self._seq += 1
            seq = self._seq
        self.metrics.request_submitted()
        return self._executor.submit(
            self._serve, query, strategy, deadline_s, submitted, seq
        )

    def query(
        self,
        query: Union[Atom, str],
        strategy: str = "auto",
        deadline_s: Optional[float] = None,
    ) -> ServiceResult:
        """Synchronous :meth:`submit` (enqueue and wait)."""
        return self.submit(query, strategy, deadline_s).result()

    def batch(
        self,
        queries: Iterable[Union[Atom, str]],
        strategy: str = "auto",
        deadline_s: Optional[float] = None,
    ) -> list[ServiceResult]:
        """Submit many requests and wait for all (submission order)."""
        futures = [
            self.submit(q, strategy, deadline_s) for q in queries
        ]
        return [f.result() for f in futures]

    # -- internals ----------------------------------------------------------

    def _attempt_budget(
        self,
        deadline_at: Optional[float],
        now: float,
    ) -> Budget:
        """The budget for one attempt, wall clock armed from ``now``."""
        base = self.config.budget
        if deadline_at is not None:
            remaining = max(deadline_at - now, 0.0)
            wall = base.max_wall_seconds
            if wall is None or remaining < wall:
                base = base.with_wall_limit(remaining)
        return base.start_clock(now)

    def _sampled(self, seq: int) -> bool:
        """Deterministic sampling: rate 1/K traces every Kth request.

        ``floor(seq * rate)`` advances exactly when ``seq`` crosses a
        1/rate boundary, so the set of sampled sequence numbers is a
        pure function of the rate -- no RNG, reproducible in tests.
        """
        rate = self.config.trace_sample
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        return math.floor(seq * rate) > math.floor((seq - 1) * rate)

    def _serve(
        self,
        query: Atom,
        strategy: str,
        deadline_s: Optional[float],
        submitted: float,
        seq: int,
    ) -> ServiceResult:
        self.metrics.request_started()
        deadline_at = (
            submitted + deadline_s if deadline_s is not None else None
        )
        trace_id = f"req-{seq:08x}"
        sampled = self._sampled(seq)
        threshold = self.config.slow_query_threshold_s
        # A sampled request must record spans; a threshold means every
        # request might turn out slow, so every request records.  The
        # per-request tracer is private to this worker thread (the
        # shared MetricsTracer absorbs it afterwards), which is what
        # lets the non-thread-safe Tracer serve here at all.
        request_tracer = (
            Tracer(context={"trace_id": trace_id, "query": str(query)})
            if sampled or threshold is not None
            else None
        )
        memo_before = self.memo.stats()
        attempts = 0
        backoff = self.config.retry_backoff_s
        while True:
            attempts += 1
            snap = self._snapshot()
            budget = self._attempt_budget(deadline_at, time.monotonic())
            try:
                result = snap.engine.query(
                    query,
                    strategy=strategy,
                    budget=budget,
                    memo=self.memo.scoped(snap.fingerprint),
                    tracer=(
                        request_tracer
                        if request_tracer is not None
                        else self.metrics.tracer
                    ),
                    parallel=self._parallel,
                )
            except BudgetExceeded as exc:
                if exc.limit == "wall_clock":
                    self.metrics.deadline_trip()
                remaining = (
                    deadline_at - time.monotonic()
                    if deadline_at is not None
                    else None
                )
                can_retry = (
                    exc.retryable
                    and attempts <= self.config.max_retries
                    and (remaining is None or remaining > backoff)
                )
                if can_retry:
                    self.metrics.retry()
                    time.sleep(backoff)
                    backoff *= 2
                    continue
                out = self._degraded(query, strategy, snap, exc,
                                     submitted, attempts)
            except ReproError as exc:
                out = ServiceResult(
                    query=query,
                    strategy=strategy,
                    status="error",
                    answers=frozenset(),
                    stats=None,
                    fingerprint=snap.fingerprint,
                    latency_s=time.monotonic() - submitted,
                    attempts=attempts,
                    error=f"{type(exc).__name__}: {exc}",
                )
            else:
                out = ServiceResult(
                    query=query,
                    strategy=result.strategy,
                    status="ok",
                    answers=result.answers,
                    stats=result.stats,
                    fingerprint=snap.fingerprint,
                    latency_s=time.monotonic() - submitted,
                    attempts=attempts,
                    result=result,
                )
            out = replace(out, trace_id=trace_id)
            if request_tracer is not None:
                self._absorb_trace(
                    out, request_tracer, sampled, memo_before
                )
            self._finish(out)
            return out

    def _absorb_trace(
        self,
        out: ServiceResult,
        tracer: Tracer,
        sampled: bool,
        memo_before: dict,
    ) -> None:
        """Fold a per-request trace into the aggregates; maybe slowlog it.

        The shared :class:`MetricsTracer` absorbs every span (so the
        service-lifetime counters are identical whether or not a
        request was traced), then the request lands a ``repro-slowlog/1``
        record when it was sampled or its latency reached the
        threshold.  The memo disposition is the stats delta across the
        request -- approximate under concurrency (deltas from
        overlapping requests interleave), exact when requests are
        serial, and honest either way about what the cache did.
        """
        self.metrics.tracer.absorb_tracer(tracer)
        threshold = self.config.slow_query_threshold_s
        reason: list[str] = []
        if sampled:
            reason.append("sampled")
        if threshold is not None and out.latency_s >= threshold:
            reason.append("slow")
        if not reason:
            return
        memo_after = self.memo.stats()
        memo_delta = {
            key: memo_after.get(key, 0) - memo_before.get(key, 0)
            for key in ("hits", "misses", "coalesced")
        }
        memo_delta["size"] = memo_after.get("size", 0)
        record = build_slowlog_record(
            trace_id=out.trace_id or "",
            query=str(out.query),
            strategy=out.strategy,
            status=out.status,
            reason=reason,
            latency_s=out.latency_s,
            answers=len(out.answers),
            attempts=out.attempts,
            counter_totals=reconciled_counter_totals(tracer),
            memo=memo_delta,
            worker_fragments=sum(
                1 for s in tracer.spans()
                if s.name == "parallel.worker"
            ),
            spans=sum(1 for _ in tracer.spans()),
            error=out.error,
        )
        self.slowlog_ring.append(record)
        if self._sink is not None:
            with self._sink_lock:
                self._sink.emit(record)

    def _degraded(
        self,
        query: Atom,
        strategy: str,
        snap: _Snapshot,
        exc: BudgetExceeded,
        submitted: float,
        attempts: int,
    ) -> ServiceResult:
        """Budget trip, out of retries: partial answers if any exist."""
        stats = exc.stats if isinstance(exc.stats, EvaluationStats) else None
        if exc.partial is not None:
            partial = PartialResult(
                answers=exc.partial,
                stats=stats,
                reason=str(exc),
                limit=exc.limit,
            )
            return ServiceResult(
                query=query,
                strategy=strategy,
                status="partial",
                answers=partial.answers,
                stats=stats,
                fingerprint=snap.fingerprint,
                latency_s=time.monotonic() - submitted,
                attempts=attempts,
                error=str(exc),
                limit=exc.limit,
                partial=partial,
            )
        return ServiceResult(
            query=query,
            strategy=strategy,
            status="error",
            answers=frozenset(),
            stats=stats,
            fingerprint=snap.fingerprint,
            latency_s=time.monotonic() - submitted,
            attempts=attempts,
            error=str(exc),
            limit=exc.limit,
        )

    def _finish(self, out: ServiceResult) -> None:
        self.metrics.request_completed(out.status, out.latency_s)
        if self._sink is not None:
            event = {
                "type": "service_request",
                "query": str(out.query),
                "strategy": out.strategy,
                "status": out.status,
                "answers": len(out.answers),
                "attempts": out.attempts,
                "latency_s": out.latency_s,
                "queue_depth": self.metrics.queue_depth,
                "limit": out.limit,
            }
            with self._sink_lock:
                self._sink.emit(event)

    # -- introspection ------------------------------------------------------

    def _cache_stats(self) -> tuple[dict, dict]:
        """(snapshot-cache, plan-cache) occupancy for the exporters."""
        from ..datalog.plan_cache import PLAN_CACHE

        with self._snapshot_lock:
            snapshot_stats = {
                "entries": len(self._snapshots),
                "capacity": self.config.snapshot_cache_size,
            }
        return snapshot_stats, PLAN_CACHE.stats()

    def metrics_dict(self) -> dict:
        """Service + memo + cache + evaluator counters, JSON-ready."""
        snapshot_stats, plan_cache_stats = self._cache_stats()
        return self.metrics.as_dict(
            memo_stats=self.memo.stats(),
            snapshot_stats=snapshot_stats,
            plan_cache_stats=plan_cache_stats,
        )

    def metrics_text(self) -> str:
        """Prometheus text exposition (see :mod:`.metrics`)."""
        snapshot_stats, plan_cache_stats = self._cache_stats()
        return self.metrics.to_metrics_text(
            memo_stats=self.memo.stats(),
            snapshot_stats=snapshot_stats,
            plan_cache_stats=plan_cache_stats,
        )

    def slowlog(self, n: Optional[int] = None) -> list[dict]:
        """The most recent ``n`` slow-query records, oldest first."""
        return self.slowlog_ring.recent(n)
