"""The cross-request full-selection memo: bounded LRU plus coalescing.

Lemma 2.1 says every selection on a separable recursion decomposes into
a union of *full* selections, and Figure 2 evaluates a full selection as
one carry/seen run from one seed vector.  That run is the natural unit
of work to share between requests: it is a pure function of (analysis,
selected component, seed, join order) over one database snapshot, which
is exactly what :func:`repro.core.api.full_selection_key` encodes.  The
same leverage drives adorned-subgoal answer caching in magic-sets
engines (Alviano et al. 2019) and memoized subplan enumeration in
recursive-plan optimizers (Fejza & Genevès 2023).

:class:`FullSelectionMemo` is the service-grade realization:

* **bounded LRU** -- completed entries are kept up to ``maxsize``,
  evicting least-recently-*used* (a hit refreshes recency, unlike the
  plan cache's FIFO, because selection constants follow request
  popularity, not compilation order);
* **in-flight coalescing** -- when K requests ask for the same key
  concurrently, one (the *leader*) computes while the other K-1 block
  on the entry's event and then share the value, so the carry/seen
  loops run once per constant no matter the fan-in;
* **leader-failure isolation** -- a leader that trips its budget (its
  deadline may be shorter than a follower's) caches nothing and fails
  alone: each follower wakes, sees no value, and takes its own turn as
  leader under its own budget.

Values are ``(up_tuples, EvaluationStats)`` pairs: the branch stats are
computed fresh per miss and *merged* (never mutated) into every
consumer's accumulator, so a cache hit reports the same Definition 4.2
relation sizes as the evaluation that populated it.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Optional

__all__ = ["FullSelectionMemo"]


class _InFlight:
    """One in-progress computation other threads can wait on."""

    __slots__ = ("event", "value", "failed")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: object = None
        self.failed = False

    def resolve(self, value: object) -> None:
        self.value = value
        self.event.set()

    def fail(self) -> None:
        self.failed = True
        self.event.set()


class FullSelectionMemo:
    """Thread-safe bounded LRU of answered full selections.

    ``get_or_run(key, compute)`` is the whole interface the evaluator
    needs; counters (``hits`` / ``misses`` / ``coalesced`` /
    ``evictions``) feed the service metrics.  ``compute`` runs outside
    the lock -- it is a whole fixpoint evaluation -- so lookups never
    block behind evaluations of *other* keys.
    """

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.coalesced = 0
        self.evictions = 0
        self.repaired = 0
        self.survived = 0
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        self._inflight: dict[tuple, _InFlight] = {}

    def get_or_run(self, key: tuple, compute: Callable[[], object]):
        """The cached value for ``key``, computing (once) on a miss.

        Concurrent callers with the same key coalesce onto a single
        ``compute`` call.  If the computing leader raises, its waiters
        retry the lookup themselves (under their own budgets); the
        exception propagates only to the leader.
        """
        while True:
            with self._lock:
                if key in self._entries:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    return self._entries[key]
                flight = self._inflight.get(key)
                if flight is None:
                    flight = _InFlight()
                    self._inflight[key] = flight
                    leader = True
                else:
                    self.coalesced += 1
                    leader = False
            if not leader:
                flight.event.wait()
                if not flight.failed:
                    return flight.value
                continue  # leader failed: compete to become the leader
            try:
                value = compute()
            except BaseException:
                with self._lock:
                    self._inflight.pop(key, None)
                flight.fail()
                raise
            with self._lock:
                self.misses += 1
                self._entries[key] = value
                self._entries.move_to_end(key)
                while len(self._entries) > self.maxsize:
                    self._entries.popitem(last=False)
                    self.evictions += 1
                self._inflight.pop(key, None)
            flight.resolve(value)
            return value

    def scoped(self, scope: object) -> "ScopedMemo":
        """A view of this memo with ``scope`` prefixed onto every key.

        The service scopes each request's memo access to the EDB
        snapshot fingerprint it is served against, so entries from
        different database states can never answer each other while
        still sharing one bounded LRU (and one set of counters).
        """
        return ScopedMemo(self, scope)

    def rescope(self, old_scope: object, new_scope: object,
                decide: Callable) -> tuple[int, int]:
        """Migrate entries from one snapshot scope to another.

        Incremental maintenance's memo-repair hook: every completed
        entry whose scope prefix equals ``old_scope`` is popped, handed
        to ``decide(key_tail, value)``, and re-inserted under
        ``new_scope`` when the verdict is ``("keep", _)`` (unchanged --
        counted as *survived*) or ``("repair", new_value)`` (counted as
        *repaired*); ``("drop", _)`` discards it.  ``decide`` runs
        outside the lock -- repairing may project a whole relation.
        In-flight leaders still publishing into the old scope are
        harmless: their entries are simply dead weight until evicted.

        Returns ``(survived, repaired)``.
        """
        with self._lock:
            moved = [
                (key, value) for key, value in self._entries.items()
                if key and key[0] == old_scope
            ]
            for key, _ in moved:
                del self._entries[key]
        survived = repaired = 0
        keep: list[tuple[tuple, object]] = []
        for key, value in moved:
            verdict, new_value = decide(key[1:], value)
            if verdict == "keep":
                keep.append(((new_scope,) + key[1:], value))
                survived += 1
            elif verdict == "repair":
                keep.append(((new_scope,) + key[1:], new_value))
                repaired += 1
        with self._lock:
            for key, value in keep:
                self._entries[key] = value
                self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1
            self.survived += survived
            self.repaired += repaired
        return survived, repaired

    def clear(self) -> None:
        """Drop all completed entries and zero the counters.

        In-flight computations are untouched: their leaders will still
        publish, which is harmless (the entry is simply fresh).
        """
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.coalesced = 0
            self.evictions = 0
            self.repaired = 0
            self.survived = 0

    def stats(self) -> dict[str, int]:
        """Counter snapshot: size plus every event counter."""
        with self._lock:
            return {
                "size": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "coalesced": self.coalesced,
                "evictions": self.evictions,
                "repaired": self.repaired,
                "survived": self.survived,
            }

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats()
        return (
            f"FullSelectionMemo(size={s['size']}, hits={s['hits']}, "
            f"misses={s['misses']}, coalesced={s['coalesced']})"
        )


class ScopedMemo:
    """A key-prefixing facade over a :class:`FullSelectionMemo`.

    Satisfies the same ``get_or_run`` protocol
    :func:`repro.core.api.evaluate_separable` expects, so it can be
    passed straight through :meth:`repro.engine.Engine.query`.
    """

    __slots__ = ("memo", "scope")

    def __init__(self, memo: FullSelectionMemo, scope: object) -> None:
        self.memo = memo
        self.scope = scope

    def get_or_run(self, key: tuple, compute: Callable[[], object]):
        return self.memo.get_or_run((self.scope,) + tuple(key), compute)
