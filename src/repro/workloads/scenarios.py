"""Named end-to-end scenarios: realistic (program, database, queries).

Each scenario bundles a domain story into a ready-to-run
:class:`Scenario` -- the kind of workload the paper's introduction
motivates ("as-yet unavailable systems" where separable recursions
"will be common").  The examples and integration tests use them; all
scenarios are deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datalog.database import Database
from ..datalog.parser import parse_program
from ..datalog.programs import Program
from .generators import chain, random_dag, random_graph

__all__ = ["Scenario", "social_commerce", "org_chart", "flight_network"]


@dataclass(frozen=True)
class Scenario:
    """A named workload: program + EDB + representative queries."""

    name: str
    description: str
    program: Program
    database: Database
    queries: tuple[str, ...]
    #: predicates expected to be separable, for assertions in tests.
    separable_predicates: tuple[str, ...]


def social_commerce(
    people: int = 120, products: int = 50, seed: int = 7
) -> Scenario:
    """The Examples 1.1/1.2 story at scale.

    A cyclic friendship graph, a DAG of idols, a price-ordered product
    catalogue, and sparse perfect-match data; ``buys`` combines all
    three recursive influences and stays separable (classes: column 1
    via friend/idol, column 2 via cheaper).
    """
    program = parse_program(
        """
        buys(X, Y) :- friend(X, W) & buys(W, Y).
        buys(X, Y) :- idol(X, W) & buys(W, Y).
        buys(X, Y) :- buys(X, W) & cheaper(Y, W).
        buys(X, Y) :- perfectFor(X, Y).
        """
    ).program
    db = Database.from_facts(
        {
            "friend": random_graph(people, 2 * people, seed=seed,
                                   prefix="user"),
            "idol": random_dag(people, people // 2, seed=seed + 1,
                               prefix="user"),
            "cheaper": chain(products, "item"),
            "perfectFor": [
                (f"user{(i * 7) % people}", f"item{(i * 13) % products}")
                for i in range(people // 3)
            ],
        }
    )
    return Scenario(
        name="social-commerce",
        description="who ends up buying what, through friends, idols, "
        "and cheaper alternatives",
        program=program,
        database=db,
        queries=("buys(user0, Y)?", "buys(X, item0)?"),
        separable_predicates=("buys",),
    )


def org_chart(depth: int = 6, seed: int = 11) -> Scenario:
    """A corporate hierarchy with a derived (multi-IDB) base predicate.

    ``manages`` is the raw reporting edge; ``oversees`` is its
    symmetric-ish derived form (managers oversee reports and dotted
    lines); ``chain_of_command`` is the separable recursion over it.
    Exercises the engine's base-IDB pre-materialization.
    """
    program = parse_program(
        """
        oversees(X, Y) :- manages(X, Y).
        oversees(X, Y) :- dotted(X, Y).
        chain_of_command(X, Y) :- oversees(X, W) & chain_of_command(W, Y).
        chain_of_command(X, Y) :- oversees(X, Y).
        """
    ).program
    managers: list[tuple[str, str]] = []
    total = 2**depth - 1
    for i in range(total):
        for child in (2 * i + 1, 2 * i + 2):
            if child < total:
                managers.append((f"emp{i}", f"emp{child}"))
    dotted = [(f"emp{i}", f"emp{(i * 5 + 3) % total}") for i in range(0, total, 9)]
    db = Database.from_facts({"manages": managers, "dotted": dotted})
    return Scenario(
        name="org-chart",
        description="chains of command over direct and dotted-line "
        "reporting",
        program=program,
        database=db,
        queries=("chain_of_command(emp0, Y)?", "chain_of_command(X, emp7)?"),
        separable_predicates=("chain_of_command",),
    )


def flight_network(cities: int = 40, seed: int = 23) -> Scenario:
    """Reachability over two carriers plus a non-separable price join.

    ``reachable`` (separable: union of two edge relations, like
    Example 1.1's friend/idol) and ``cheap_trip`` -- a Section 5 style
    chain rule joining an outbound leg and a return leg, which is NOT
    separable and exercises the Magic Sets fallback.
    """
    program = parse_program(
        """
        reachable(X, Y) :- flight_a(X, W) & reachable(W, Y).
        reachable(X, Y) :- flight_b(X, W) & reachable(W, Y).
        reachable(X, Y) :- flight_a(X, Y).
        reachable(X, Y) :- flight_b(X, Y).
        cheap_trip(X, Y) :- flight_a(X, W) & cheap_trip(W, Z) & flight_b(Z, Y).
        cheap_trip(X, Y) :- hub(X, Y).
        """
    ).program
    db = Database.from_facts(
        {
            "flight_a": random_graph(cities, cities * 2, seed=seed,
                                     prefix="city"),
            "flight_b": random_graph(cities, cities, seed=seed + 1,
                                     prefix="city"),
            "hub": [("city0", "city1"), (f"city{cities // 2}", "city2")],
        }
    )
    return Scenario(
        name="flight-network",
        description="two-carrier reachability plus a non-separable "
        "out-and-back trip rule",
        program=program,
        database=db,
        queries=("reachable(city0, Y)?", "cheap_trip(city0, Y)?"),
        separable_predicates=("reachable",),
    )
