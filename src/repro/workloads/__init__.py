"""Workload construction: synthetic generators and the paper's inputs."""

from .generators import (
    binary_tree,
    chain,
    cycle,
    grid,
    node,
    random_dag,
    random_graph,
    star,
)
from .scenarios import Scenario, flight_network, org_chart, social_commerce
from .paper import (
    example_1_1_database,
    example_1_1_program,
    example_1_2_database,
    example_1_2_program,
    example_2_4_program,
    lemma_4_2_database,
    lemma_4_2_program,
    lemma_4_3_database,
    lemma_4_3_program,
    section_3_2_program,
    section_5_nonseparable_program,
)

__all__ = [
    "binary_tree",
    "chain",
    "cycle",
    "grid",
    "node",
    "random_dag",
    "random_graph",
    "star",
    "example_1_1_database",
    "example_1_1_program",
    "example_1_2_database",
    "example_1_2_program",
    "example_2_4_program",
    "lemma_4_2_database",
    "lemma_4_2_program",
    "lemma_4_3_database",
    "lemma_4_3_program",
    "section_3_2_program",
    "section_5_nonseparable_program",
    "Scenario",
    "flight_network",
    "org_chart",
    "social_commerce",
]
