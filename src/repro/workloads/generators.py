"""Synthetic EDB generators: chains, cycles, trees, grids, random graphs.

These stand in for the unavailable [Nau88] average-case workloads (see
DESIGN.md's substitution table).  Every generator returns a plain
``{predicate: list of tuples}`` mapping ready for
:meth:`repro.datalog.database.Database.from_facts`, and takes the
relation name so one graph shape can back any binary base predicate
(``friend``, ``cheaper``, ``a_1``, ...).

Node naming is deterministic (``prefix0, prefix1, ...``) so benchmark
runs are reproducible; the random-graph generators take an explicit
``random.Random`` seed for the same reason.
"""

from __future__ import annotations

import random
from typing import Iterable

__all__ = [
    "node",
    "chain",
    "cycle",
    "binary_tree",
    "grid",
    "random_graph",
    "random_dag",
    "star",
    "constant_pool",
    "random_relation",
]

Edges = list[tuple[str, str]]


def node(prefix: str, index: int) -> str:
    """Deterministic node name, e.g. ``node('a', 3) == 'a3'``."""
    return f"{prefix}{index}"


def chain(n: int, prefix: str = "a") -> Edges:
    """A simple path ``a0 -> a1 -> ... -> a(n-1)`` (n-1 edges).

    This is the adversarial shape of Lemmas 4.2/4.3 and the Section 4
    example databases.
    """
    return [(node(prefix, i), node(prefix, i + 1)) for i in range(n - 1)]


def cycle(n: int, prefix: str = "a") -> Edges:
    """A directed cycle on ``n`` nodes.

    Cyclic data is where the Counting method and the no-dedup ablation
    fail while Separable and Magic terminate (Lemma 3.4).
    """
    if n <= 0:
        return []
    edges = chain(n, prefix)
    edges.append((node(prefix, n - 1), node(prefix, 0)))
    return edges


def binary_tree(depth: int, prefix: str = "a") -> Edges:
    """A complete binary tree of the given depth, edges parent -> child.

    Nodes are numbered heap-style: children of ``i`` are ``2i+1``,
    ``2i+2``; ``2^depth - 1`` internal-plus-leaf nodes in total.
    """
    edges: Edges = []
    total = 2**depth - 1
    for i in range(total):
        for child in (2 * i + 1, 2 * i + 2):
            if child < total:
                edges.append((node(prefix, i), node(prefix, child)))
    return edges


def grid(rows: int, cols: int, prefix: str = "g") -> Edges:
    """A rows x cols grid with right and down edges.

    Grids have many converging derivation paths per node, the shape on
    which duplicate elimination (Figure 2 lines 5/12) pays off most.
    """
    def name(r: int, c: int) -> str:
        return f"{prefix}{r}_{c}"

    edges: Edges = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((name(r, c), name(r, c + 1)))
            if r + 1 < rows:
                edges.append((name(r, c), name(r + 1, c)))
    return edges


def random_graph(
    n: int,
    edges: int,
    seed: int = 0,
    prefix: str = "a",
) -> Edges:
    """``edges`` distinct directed edges over ``n`` nodes (no self-loops).

    May contain cycles; use :func:`random_dag` for guaranteed acyclic
    data (the Counting method's requirement).
    """
    rng = random.Random(seed)
    chosen: set[tuple[str, str]] = set()
    max_edges = n * (n - 1)
    edges = min(edges, max_edges)
    while len(chosen) < edges:
        a = rng.randrange(n)
        b = rng.randrange(n)
        if a != b:
            chosen.add((node(prefix, a), node(prefix, b)))
    return sorted(chosen)


def random_dag(
    n: int,
    edges: int,
    seed: int = 0,
    prefix: str = "a",
) -> Edges:
    """Random acyclic edges: every edge goes from a lower to a higher index."""
    rng = random.Random(seed)
    chosen: set[tuple[str, str]] = set()
    max_edges = n * (n - 1) // 2
    edges = min(edges, max_edges)
    while len(chosen) < edges:
        a = rng.randrange(n)
        b = rng.randrange(n)
        if a == b:
            continue
        if a > b:
            a, b = b, a
        chosen.add((node(prefix, a), node(prefix, b)))
    return sorted(chosen)


def star(n: int, prefix: str = "a", center: str | None = None) -> Edges:
    """Edges from one center node to ``n`` leaves (fanout stress)."""
    center = center or node(prefix, 0)
    return [(center, node(prefix, i + 1)) for i in range(n)]


def constant_pool(n: int, prefix: str = "c") -> list[str]:
    """The shared constant pool fuzzed EDBs draw from (``c0 .. c<n-1>``).

    Keeping every relation over one small pool is what makes joins hit
    and cycles / converging paths arise naturally in random data.
    """
    return [node(prefix, i) for i in range(n)]


def random_relation(
    arity: int,
    count: int,
    pool: list[str],
    rng: random.Random | None = None,
    seed: int = 0,
) -> list[tuple[str, ...]]:
    """``count`` distinct random tuples of the given arity over ``pool``.

    Accepts either an explicit ``random.Random`` (so a caller can thread
    one generator through a whole workload) or a ``seed``.  The result
    is sorted for reproducible iteration order, and capped at the number
    of distinct tuples the pool admits.
    """
    rng = rng if rng is not None else random.Random(seed)
    count = min(count, len(pool) ** arity)
    chosen: set[tuple[str, ...]] = set()
    while len(chosen) < count:
        chosen.add(tuple(rng.choice(pool) for _ in range(arity)))
    return sorted(chosen)
