"""The paper's programs and adversarial databases, verbatim.

Every example recursion (1.1, 1.2, 2.4, the Section 3.2 abstract
recursion, the Section 5 non-separable rule) and every worst-case
database from Section 4 (the Example 1.1/1.2 analyses, the Lemma 4.2 and
4.3 families) is constructed here, parameterized by the paper's ``n``,
``k`` and ``p``.  The benchmark harness and the tests import these so
the experiments run against exactly the inputs the paper reasons about.

Conventions: constants are named ``a1..an`` / ``b1..bn`` / ``c1..cn`` as
in the paper; ``n`` counts the distinct constants per group, so a
"chain of n" has ``n - 1`` edges, matching "let friend contain the
tuples (a_1 = tom, a_2), ..., (a_{n-1}, a_n)".
"""

from __future__ import annotations

from ..datalog.database import Database
from ..datalog.parser import parse_program
from ..datalog.programs import Program

__all__ = [
    "example_1_1_program",
    "example_1_1_database",
    "example_1_2_program",
    "example_1_2_database",
    "example_2_4_program",
    "section_3_2_program",
    "section_5_nonseparable_program",
    "lemma_4_2_program",
    "lemma_4_2_database",
    "lemma_4_3_program",
    "lemma_4_3_database",
]


def example_1_1_program() -> Program:
    """Example 1.1: friends and idols propagate purchases.

    One equivalence class (columns {1}, rules r1 and r2); column 2 is
    persistent.
    """
    return parse_program(
        """
        buys(X, Y) :- friend(X, W) & buys(W, Y).
        buys(X, Y) :- idol(X, W) & buys(W, Y).
        buys(X, Y) :- perfectFor(X, Y).
        """
    ).program


def example_1_1_database(n: int) -> Database:
    """The Section 4 database for the Generalized Counting analysis.

    ``friend`` and ``idol`` both contain the chain (a_1, a_2), ...,
    (a_{n-1}, a_n); ``perfectFor`` holds the single tuple (a_n, b_n).
    On ``buys(a1, Y)?`` Counting builds a ``count`` relation with one
    tuple per derivation path -- Omega(2^n) -- while Separable builds
    monadic relations of size O(n).
    """
    edges = [(f"a{i}", f"a{i + 1}") for i in range(1, n)]
    return Database.from_facts(
        {
            "friend": edges,
            "idol": list(edges),
            "perfectFor": [(f"a{n}", f"b{n}")],
        }
    )


def example_1_2_program() -> Program:
    """Example 1.2: friends propagate purchases, cheaper products follow.

    Two singleton equivalence classes (column 1 via friend, column 2
    via cheaper); no persistent columns.
    """
    return parse_program(
        """
        buys(X, Y) :- friend(X, W) & buys(W, Y).
        buys(X, Y) :- buys(X, W) & cheaper(Y, W).
        buys(X, Y) :- perfectFor(X, Y).
        """
    ).program


def example_1_2_database(n: int) -> Database:
    """The Section 4 database for the Magic Sets analysis.

    ``friend`` is the chain (a_1, a_2), ..., (a_{n-1}, a_n); ``cheaper``
    descends through b_n ... b_1 (oriented so rule r2's ``cheaper(Y, W)``
    derives each cheaper product from the one above); ``perfectFor``
    holds (a_n, b_n).  The full ``buys`` relation is the n^2 tuples
    (a_i, b_j), which is exactly what the magic-rewritten program
    materializes -- while Separable builds only monadic relations.
    """
    return Database.from_facts(
        {
            "friend": [(f"a{i}", f"a{i + 1}") for i in range(1, n)],
            "cheaper": [(f"b{i}", f"b{i + 1}") for i in range(1, n)],
            "perfectFor": [(f"a{n}", f"b{n}")],
        }
    )


def example_2_4_program() -> Program:
    """Example 2.4: the ternary recursion used for the Lemma 2.1 rewrite.

    Class e_1 = columns {1, 2} (rule 1), class e_2 = column {3}
    (rule 2); the query ``t(c, Y, Z)?`` binds a proper subset of e_1 and
    is therefore not a full selection.
    """
    return parse_program(
        """
        t(X, Y, Z) :- a(X, Y, U, V) & t(U, V, Z).
        t(X, Y, Z) :- t(X, Y, W) & b(W, Z).
        t(X, Y, Z) :- t0(X, Y, Z).
        """
    ).program


def section_3_2_program() -> Program:
    """The Section 3.2 motivating recursion: ``(a1+a2)* t0 (b1+b2)*``."""
    return parse_program(
        """
        t(X, Y) :- a1(X, W) & t(W, Y).
        t(X, Y) :- a2(X, W) & t(W, Y).
        t(X, Y) :- t(X, W) & b1(W, Y).
        t(X, Y) :- t(X, W) & b2(W, Y).
        t(X, Y) :- t0(X, Y).
        """
    ).program


def section_5_nonseparable_program() -> Program:
    """Section 5's Condition-4 violator: ``a`` and ``b`` in one rule.

    ``t(X,Y) :- a(X,W) & t(W,Z) & b(Z,Y).`` -- removing ``t`` leaves
    two maximal connected sets, so the recursion is not separable; the
    paper notes the schema would still be correct but unfocused.
    """
    return parse_program(
        """
        t(X, Y) :- a(X, W) & t(W, Z) & b(Z, Y).
        t(X, Y) :- t0(X, Y).
        """
    ).program


def _lemma_4_program(k: int, p: int) -> Program:
    """The S^k_p family used by both Lemma 4.2 and Lemma 4.3::

        t(X1, ..., Xk) :- a_i(X1, W) & t(W, X2, ..., Xk).   (1 <= i <= p)
        t(X1, ..., Xk) :- t0(X1, ..., Xk).
    """
    if k < 1 or p < 1:
        raise ValueError("Lemma 4.2/4.3 require k >= 1 and p >= 1")
    head_args = ", ".join(f"X{j}" for j in range(1, k + 1))
    body_args = ", ".join(["W"] + [f"X{j}" for j in range(2, k + 1)])
    lines = [
        f"t({head_args}) :- a{i}(X1, W) & t({body_args})."
        for i in range(1, p + 1)
    ]
    lines.append(f"t({head_args}) :- t0({head_args}).")
    return parse_program("\n".join(lines)).program


def lemma_4_2_program(k: int, p: int) -> Program:
    """The recursion of Lemma 4.2 (identical to Lemma 4.3's)."""
    return _lemma_4_program(k, p)


def lemma_4_2_database(n: int, k: int, p: int) -> Database:
    """Lemma 4.2's database: Magic Sets is Omega(n^k) here.

    ``a1`` is the chain (c_1, c_2), ..., (c_{n-1}, c_n); ``a_i`` for
    i > 1 are empty; ``t0`` is the full n^k cross product.  The magic
    set reaches every c_i, so the guarded base rule copies all n^k
    ``t0`` tuples into the rewritten ``t``.
    """
    facts: dict[str, list[tuple]] = {
        "a1": [(f"c{i}", f"c{i + 1}") for i in range(1, n)],
    }
    for i in range(2, p + 1):
        facts[f"a{i}"] = []
    cross: list[tuple] = [()]
    for _ in range(k):
        cross = [t + (f"c{j}",) for t in cross for j in range(1, n + 1)]
    facts["t0"] = cross
    db = Database.from_facts(facts)
    for i in range(2, p + 1):
        db.ensure(f"a{i}", 2)
    return db


def lemma_4_3_program(k: int, p: int) -> Program:
    """The recursion of Lemma 4.3 (identical to Lemma 4.2's)."""
    return _lemma_4_program(k, p)


def lemma_4_3_database(n: int, k: int, p: int,
                       t0_size: int = 1) -> Database:
    """Lemma 4.3's database: Generalized Counting is Omega(p^n) here.

    All ``a_i`` are the identical chain (c_1, c_2), ..., (c_{n-1}, c_n),
    so every length-l rule sequence over the p rules is a distinct
    derivation path and ``count`` holds one tuple per path.  ``t0`` is
    arbitrary in the paper; we give it ``t0_size`` tuples over fresh
    constants so the query has answers.
    """
    edges = [(f"c{i}", f"c{i + 1}") for i in range(1, n)]
    facts: dict[str, list[tuple]] = {
        f"a{i}": list(edges) for i in range(1, p + 1)
    }
    facts["t0"] = [
        (f"c{n}",) + tuple(f"d{j}" for _ in range(k - 1))
        for j in range(1, t0_size + 1)
    ]
    return Database.from_facts(facts)
