"""Parser for the Prolog-flavoured Datalog syntax the paper uses.

Grammar (informal)::

    program   := (statement)*
    statement := rule | fact | query
    rule      := atom ':-' body '.'
    fact      := atom '.'
    query     := atom '?'  |  '?-' atom '.'
    body      := atom (('&' | ',') atom)*
    atom      := IDENT '(' term (',' term)* ')'
    term      := VARIABLE | IDENT | INTEGER | STRING

``%`` starts a comment running to end of line.  Identifiers beginning
with an uppercase letter or ``_`` are variables (Prolog convention);
other identifiers, integers, and single-quoted strings are constants.
Both ``&`` (the paper's conjunction) and ``,`` separate body atoms.

The entry points are :func:`parse_program` (rules + facts + queries),
:func:`parse_rule`, :func:`parse_atom`, and :func:`parse_query`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from .atoms import Atom
from .database import Database
from .errors import DatalogSyntaxError
from .programs import Program
from .rules import Rule
from .terms import Constant, Term, Variable, is_variable_name

__all__ = [
    "ParsedProgram",
    "parse_program",
    "parse_rule",
    "parse_atom",
    "parse_query",
    "Token",
]


# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

_PUNCT_TWO = {":-", "?-"}
_PUNCT_ONE = set("().,&?")


@dataclass(frozen=True, slots=True)
class Token:
    """A lexical token with its 1-based source position."""

    kind: str  # 'ident' | 'var' | 'int' | 'string' | 'punct' | 'eof'
    text: str
    line: int
    column: int


def _tokenize(text: str) -> Iterator[Token]:
    line, col = 1, 1
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch.isspace():
            i += 1
            col += 1
            continue
        if ch == "%":
            while i < n and text[i] != "\n":
                i += 1
            continue
        start_line, start_col = line, col
        two = text[i:i + 2]
        if two in _PUNCT_TWO:
            yield Token("punct", two, start_line, start_col)
            i += 2
            col += 2
            continue
        if ch in _PUNCT_ONE:
            yield Token("punct", ch, start_line, start_col)
            i += 1
            col += 1
            continue
        if ch == "'":
            j = i + 1
            chunks: list[str] = []
            while j < n:
                if text[j] == "\\" and j + 1 < n:
                    chunks.append(text[j + 1])
                    j += 2
                    continue
                if text[j] == "'":
                    break
                if text[j] == "\n":
                    raise DatalogSyntaxError(
                        "unterminated string literal", start_line, start_col
                    )
                chunks.append(text[j])
                j += 1
            if j >= n:
                raise DatalogSyntaxError(
                    "unterminated string literal", start_line, start_col
                )
            yield Token("string", "".join(chunks), start_line, start_col)
            col += (j + 1) - i
            i = j + 1
            continue
        if ch.isdigit() or (ch == "-" and i + 1 < n and text[i + 1].isdigit()):
            j = i + 1
            while j < n and text[j].isdigit():
                j += 1
            yield Token("int", text[i:j], start_line, start_col)
            col += j - i
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            kind = "var" if is_variable_name(word) else "ident"
            yield Token(kind, word, start_line, start_col)
            col += j - i
            i = j
            continue
        raise DatalogSyntaxError(f"unexpected character {ch!r}", line, col)
    yield Token("eof", "", line, col)


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


class _Parser:
    def __init__(self, text: str) -> None:
        self._tokens = list(_tokenize(text))
        self._pos = 0

    @property
    def current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        tok = self._tokens[self._pos]
        if tok.kind != "eof":
            self._pos += 1
        return tok

    def _error(self, message: str) -> DatalogSyntaxError:
        tok = self.current
        found = tok.text or "end of input"
        return DatalogSyntaxError(
            f"{message} (found {found!r})", tok.line, tok.column
        )

    def _expect_punct(self, text: str) -> Token:
        tok = self.current
        if tok.kind != "punct" or tok.text != text:
            raise self._error(f"expected {text!r}")
        return self._advance()

    def at_eof(self) -> bool:
        return self.current.kind == "eof"

    # -- grammar productions ----------------------------------------------

    def term(self) -> Term:
        tok = self.current
        if tok.kind == "var":
            self._advance()
            return Variable(tok.text)
        if tok.kind == "ident":
            self._advance()
            return Constant(tok.text)
        if tok.kind == "int":
            self._advance()
            return Constant(int(tok.text))
        if tok.kind == "string":
            self._advance()
            return Constant(tok.text)
        raise self._error("expected a term")

    def atom(self) -> Atom:
        tok = self.current
        if tok.kind not in ("ident", "var"):
            raise self._error("expected a predicate name")
        if tok.kind == "var":
            raise self._error(
                f"predicate names must start with a lowercase letter"
            )
        self._advance()
        self._expect_punct("(")
        args = [self.term()]
        while self.current.kind == "punct" and self.current.text == ",":
            self._advance()
            args.append(self.term())
        self._expect_punct(")")
        return Atom(tok.text, tuple(args))

    def body(self) -> tuple[Atom, ...]:
        atoms = [self.atom()]
        while self.current.kind == "punct" and self.current.text in (",", "&"):
            self._advance()
            atoms.append(self.atom())
        return tuple(atoms)

    def statement(self) -> tuple[str, object]:
        """Parse one statement: ('rule', Rule) | ('query', Atom)."""
        if self.current.kind == "punct" and self.current.text == "?-":
            self._advance()
            a = self.atom()
            self._expect_punct(".")
            return ("query", a)
        head = self.atom()
        tok = self.current
        if tok.kind == "punct" and tok.text == "?":
            self._advance()
            return ("query", head)
        if tok.kind == "punct" and tok.text == ".":
            self._advance()
            return ("rule", Rule(head, ()))
        if tok.kind == "punct" and tok.text == ":-":
            self._advance()
            body = self.body()
            self._expect_punct(".")
            return ("rule", Rule(head, body))
        raise self._error("expected '.', '?' or ':-' after atom")


@dataclass
class ParsedProgram:
    """The result of parsing a program text.

    Facts (bodiless ground rules) are split out of the rule list into a
    :class:`Database`; queries (``p(c, X)?`` statements) are collected in
    order of appearance.
    """

    program: Program
    database: Database
    queries: tuple[Atom, ...] = ()

    @property
    def rules(self) -> tuple[Rule, ...]:
        return self.program.rules


def parse_program(text: str) -> ParsedProgram:
    """Parse a full program text into rules, facts, and queries."""
    parser = _Parser(text)
    rules: list[Rule] = []
    db = Database()
    queries: list[Atom] = []
    while not parser.at_eof():
        kind, value = parser.statement()
        if kind == "query":
            queries.append(value)  # type: ignore[arg-type]
        else:
            r: Rule = value  # type: ignore[assignment]
            if r.is_fact:
                db.add_ground_atom(r.head)
            else:
                rules.append(r)
    return ParsedProgram(Program(rules), db, tuple(queries))


def parse_rule(text: str) -> Rule:
    """Parse a single rule or fact, e.g. ``"t(X,Y) :- a(X,W) & t(W,Y)."``."""
    parser = _Parser(text)
    kind, value = parser.statement()
    if kind != "rule":
        raise DatalogSyntaxError("expected a rule, got a query")
    if not parser.at_eof():
        raise parser._error("unexpected trailing input after rule")
    return value  # type: ignore[return-value]


def parse_atom(text: str) -> Atom:
    """Parse a single atom, e.g. ``"buys(tom, Y)"``."""
    parser = _Parser(text)
    a = parser.atom()
    if not parser.at_eof():
        raise parser._error("unexpected trailing input after atom")
    return a


def parse_query(text: str) -> Atom:
    """Parse a query, accepting ``p(c,X)?``, ``?- p(c,X).`` or a bare atom."""
    parser = _Parser(text)
    if parser.current.kind == "punct" and parser.current.text == "?-":
        parser._advance()
        a = parser.atom()
        parser._expect_punct(".")
    else:
        a = parser.atom()
        if parser.current.kind == "punct" and parser.current.text in ("?", "."):
            parser._advance()
    if not parser.at_eof():
        raise parser._error("unexpected trailing input after query")
    return a
