"""In-memory extensional storage: relations with lazy hash indexes.

Tuples are stored as plain Python tuples of constant *values* (strings or
ints), not wrapped :class:`~repro.datalog.terms.Constant` objects; the
evaluators convert at the boundary.  Each relation builds hash indexes on
demand for whatever column subsets the joins probe, which is what makes
the "touch only tuples along a path from the constant" behaviour of the
Separable algorithm (Section 3.2 of the paper) observable in wall-clock
time and not just in relation sizes.

:class:`Relation` is the reference implementation of the
``RelationStorage`` protocol (see :mod:`repro.storage`); alternative
backends -- e.g. the out-of-core SQLite one -- implement the same
mutation/lookup/version/stats/observer/pickle surface and plug into
:class:`Database` via its ``backend`` parameter.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from .atoms import Atom
from .errors import ArityError
from .terms import Constant, ConstValue

__all__ = ["Relation", "Database"]

Fact = tuple  # tuple[ConstValue, ...]


class Relation:
    """A named set of same-arity tuples with lazy secondary indexes."""

    __slots__ = ("name", "arity", "_tuples", "_indexes", "_version",
                 "_distinct_cache", "_col_distinct_cache", "_sample_cache",
                 "_observers")

    def __init__(self, name: str, arity: int,
                 tuples: Iterable[Fact] = ()) -> None:
        self.name = name
        self.arity = arity
        self._tuples: set[Fact] = set()
        self._indexes: dict[tuple[int, ...], dict[tuple, list[Fact]]] = {}
        self._version = 0
        self._distinct_cache: tuple[int, frozenset[ConstValue]] | None = None
        self._col_distinct_cache: tuple[int, tuple[int, ...]] | None = None
        self._sample_cache: tuple[int, int, tuple[Fact, ...]] | None = None
        self._observers: tuple = ()
        if tuples:
            self.add_all(tuples)

    # -- observation -------------------------------------------------------

    def observe(self, callback) -> None:
        """Subscribe ``callback(relation, fact, sign)`` to mutations.

        ``sign`` is ``+1`` for an effective insert, ``-1`` for an
        effective delete, and ``0`` with ``fact=None`` for a wholesale
        reset (:meth:`clear`) that cannot be expressed as a delta.
        Observers are stored in a tuple so the no-observer hot path
        costs a single falsy check.
        """
        if callback not in self._observers:
            self._observers = self._observers + (callback,)

    def unobserve(self, callback) -> None:
        """Remove a previously subscribed callback (missing is a no-op).

        Matched by equality, not identity: a bound method like
        ``capture._on_event`` is a fresh object on every attribute
        access, and subscribers pass exactly that.
        """
        self._observers = tuple(
            cb for cb in self._observers if cb != callback
        )

    @property
    def version(self) -> int:
        """Mutation counter: bumped on every effective add, discard, clear.

        Consumers caching state derived from this relation (the engine's
        base-IDB materialization) compare versions to detect staleness.
        """
        return self._version

    # -- mutation ---------------------------------------------------------

    def add(self, fact: Fact) -> bool:
        """Insert a tuple; returns True if it was new."""
        fact = tuple(fact)
        if len(fact) != self.arity:
            raise ArityError(
                f"relation {self.name} has arity {self.arity}, "
                f"got tuple of length {len(fact)}: {fact!r}"
            )
        if fact in self._tuples:
            return False
        self._tuples.add(fact)
        self._version += 1
        for positions, index in self._indexes.items():
            key = tuple(fact[p] for p in positions)
            index.setdefault(key, []).append(fact)
        if self._observers:
            for cb in self._observers:
                cb(self, fact, 1)
        return True

    def add_all(self, facts: Iterable[Fact]) -> int:
        """Insert many tuples; returns the number that were new.

        Bulk counterpart of :meth:`add`: the whole batch lands in the
        tuple set first and every live index is patched once at the
        end, instead of paying the per-fact index walk ``add`` does.
        Semi-naive delta installation and the carry-loop refills go
        through here.
        """
        arity = self.arity
        tuples = self._tuples
        new: list[Fact] = []
        for f in facts:
            f = tuple(f)
            if len(f) != arity:
                raise ArityError(
                    f"relation {self.name} has arity {arity}, "
                    f"got tuple of length {len(f)}: {f!r}"
                )
            if f not in tuples:
                tuples.add(f)
                new.append(f)
        if not new:
            return 0
        self._version += len(new)
        for positions, index in self._indexes.items():
            for fact in new:
                key = tuple(fact[p] for p in positions)
                index.setdefault(key, []).append(fact)
        if self._observers:
            for fact in new:
                for cb in self._observers:
                    cb(self, fact, 1)
        return len(new)

    def discard(self, fact: Fact) -> bool:
        """Remove a tuple; returns True if it was present.

        Live indexes are patched in place (the bucket entry is removed,
        empty buckets dropped) so a delete costs the same O(#indexes)
        walk as :meth:`add` instead of an index rebuild.
        """
        fact = tuple(fact)
        if len(fact) != self.arity:
            raise ArityError(
                f"relation {self.name} has arity {self.arity}, "
                f"got tuple of length {len(fact)}: {fact!r}"
            )
        if fact not in self._tuples:
            return False
        self._tuples.discard(fact)
        self._version += 1
        for positions, index in self._indexes.items():
            key = tuple(fact[p] for p in positions)
            bucket = index.get(key)
            if bucket is not None:
                try:
                    bucket.remove(fact)
                except ValueError:
                    pass
                if not bucket:
                    del index[key]
        if self._observers:
            for cb in self._observers:
                cb(self, fact, -1)
        return True

    def discard_all(self, facts: Iterable[Fact]) -> int:
        """Remove many tuples; returns the number that were present.

        Bulk counterpart of :meth:`discard`, mirroring :meth:`add_all`:
        the whole batch leaves the tuple set first and every live index
        is patched in one pass, instead of paying the per-fact
        O(#indexes) walk and observer fan-out ``discard`` does.  DRed's
        delete/rederive path goes through here with whole delta sets.
        """
        arity = self.arity
        tuples = self._tuples
        removed: list[Fact] = []
        for f in facts:
            f = tuple(f)
            if len(f) != arity:
                raise ArityError(
                    f"relation {self.name} has arity {arity}, "
                    f"got tuple of length {len(f)}: {f!r}"
                )
            if f in tuples:
                tuples.discard(f)
                removed.append(f)
        if not removed:
            return 0
        self._version += len(removed)
        for positions, index in self._indexes.items():
            for fact in removed:
                key = tuple(fact[p] for p in positions)
                bucket = index.get(key)
                if bucket is not None:
                    try:
                        bucket.remove(fact)
                    except ValueError:
                        pass
                    if not bucket:
                        del index[key]
        if self._observers:
            for fact in removed:
                for cb in self._observers:
                    cb(self, fact, -1)
        return len(removed)

    def clear(self) -> None:
        """Remove all tuples and drop all indexes."""
        self._tuples.clear()
        self._indexes.clear()
        self._version += 1
        if self._observers:
            for cb in self._observers:
                cb(self, None, 0)

    # -- queries ----------------------------------------------------------

    def __contains__(self, fact: Fact) -> bool:
        return tuple(fact) in self._tuples

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[Fact]:
        return iter(self._tuples)

    def __bool__(self) -> bool:
        return bool(self._tuples)

    def tuples(self) -> frozenset[Fact]:
        """An immutable snapshot of the current contents."""
        return frozenset(self._tuples)

    def lookup(self, positions: tuple[int, ...], key: tuple,
               tracer=None) -> list[Fact]:
        """Tuples whose projection onto ``positions`` equals ``key``.

        Builds (and caches) a hash index on ``positions`` on first use.
        An empty ``positions`` returns all tuples.  A live ``tracer``
        is told about index builds (how many, over how many tuples) --
        the lazily-paid cost that wall-clock benchmarks see but
        relation-size statistics do not.
        """
        if not positions:
            if tracer is not None:
                tracer.count("full_scans")
            return list(self._tuples)
        index = self._indexes.get(positions)
        if index is None:
            index = {}
            for fact in self._tuples:
                k = tuple(fact[p] for p in positions)
                index.setdefault(k, []).append(fact)
            self._indexes[positions] = index
            if tracer is not None:
                tracer.count("index_builds")
                tracer.count("index_tuples", len(self._tuples))
        return index.get(tuple(key), [])

    # -- pickling ----------------------------------------------------------

    def __getstate__(self):
        """Portable payload: name, arity, version, and the tuples.

        Indexes are rebuilt lazily on the receiving side, caches restart
        cold, and observers never cross a process boundary -- a parallel
        worker mutating its copy must not (and, with bound-method
        callbacks, could not) feed the parent's delta capture.  Explicit
        because ``__slots__`` has no instance dict for pickle's default
        protocol to scrape.
        """
        return (self.name, self.arity, self._version, tuple(self._tuples))

    def __setstate__(self, state) -> None:
        name, arity, version, tuples = state
        self.name = name
        self.arity = arity
        self._tuples = set(tuples)
        self._indexes = {}
        self._version = version
        self._distinct_cache = None
        self._col_distinct_cache = None
        self._sample_cache = None
        self._observers = ()

    def distinct_values(self) -> frozenset[ConstValue]:
        """All constant values appearing anywhere in the relation.

        Cached per :attr:`version`, so the Definition 4.2 sizing that
        reporting and the bench harness do repeatedly stops rescanning
        every tuple; frozen so the cached set cannot be corrupted.
        """
        cached = self._distinct_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        values: set[ConstValue] = set()
        for fact in self._tuples:
            values.update(fact)
        frozen = frozenset(values)
        self._distinct_cache = (self._version, frozen)
        return frozen

    def column_distinct_counts(self) -> tuple[int, ...]:
        """Distinct value count per column, cached per :attr:`version`.

        The cost-based planner's only per-relation statistic beyond
        ``len``: ``1 / max(distinct)`` is the System-R selectivity of an
        equi-join edge.  One O(tuples * arity) scan, then O(1) until the
        relation mutates (any mutation bumps the version, including the
        :meth:`discard` / :meth:`discard_all` delete paths).
        """
        cached = self._col_distinct_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        columns: tuple[set, ...] = tuple(set() for _ in range(self.arity))
        for fact in self._tuples:
            for col, value in zip(columns, fact):
                col.add(value)
        counts = tuple(len(col) for col in columns)
        self._col_distinct_cache = (self._version, counts)
        return counts

    def sample(self, k: int = 32) -> tuple[Fact, ...]:
        """A deterministic sample of up to ``k`` tuples.

        Min-wise over a content hash (the ``k`` tuples with the smallest
        ``crc32(repr(t))``), so the result depends only on the stored
        tuples -- never on set iteration order -- and two relations with
        overlapping contents draw overlapping samples, which is what
        makes sampled join-containment estimates meaningful.  Cached per
        :attr:`version` and ``k``.
        """
        cached = self._sample_cache
        if cached is not None and cached[0] == self._version \
                and cached[1] == k:
            return cached[2]
        if len(self._tuples) <= k:
            sampled = tuple(sorted(self._tuples, key=repr))
        else:
            import heapq
            import zlib
            sampled = tuple(heapq.nsmallest(
                k, self._tuples,
                key=lambda t: (zlib.crc32(repr(t).encode()), repr(t)),
            ))
        self._sample_cache = (self._version, k, sampled)
        return sampled

    # -- copies and snapshots ----------------------------------------------

    def copy(self) -> "Relation":
        """A private writable copy (indexes, caches, observers not copied)."""
        return Relation(self.name, self.arity, self._tuples)

    def snapshot(self) -> "Relation":
        """A stable view of the current contents.

        For the in-memory backend this is just :meth:`copy`; out-of-core
        backends can return a cheaper read-only view (the SQLite backend
        pins a WAL read transaction instead of copying tuples).
        """
        return self.copy()

    def __repr__(self) -> str:
        return f"Relation({self.name}/{self.arity}, {len(self)} tuples)"


class Database:
    """A collection of named relations (the EDB, plus derived relations).

    Unknown relations read as empty; writes create the relation with the
    arity of the first tuple (or an explicit :meth:`ensure` call).

    ``backend`` selects where relations created through this database
    live.  ``None`` (the default) means the in-memory hash-indexed
    :class:`Relation` -- constructed directly, with zero dispatch
    overhead on the default path.  Any object implementing the
    :class:`repro.storage.StorageBackend` protocol (``name``,
    ``make_relation``, ``scratch``) routes relation creation through
    ``backend.make_relation(name, arity, tuples)`` instead.
    """

    def __init__(self, backend=None) -> None:
        self._relations: dict[str, Relation] = {}
        self._distinct_cache: tuple[tuple, frozenset[ConstValue]] | None = \
            None
        self._observers: list = []
        self._fp_cache: tuple[int, tuple] | None = None
        self._backend = backend

    # -- construction -----------------------------------------------------

    @classmethod
    def from_facts(cls, facts: Mapping[str, Iterable[Fact]],
                   backend=None) -> "Database":
        """Build a database from ``{predicate: iterable of tuples}``."""
        db = cls(backend=backend)
        for name, tuples in facts.items():
            for t in tuples:
                db.add_fact(name, tuple(t))
        return db

    @property
    def backend_name(self) -> str:
        """The storage backend's name (``"memory"`` for the default)."""
        return "memory" if self._backend is None else self._backend.name

    def _make_relation(self, name: str, arity: int,
                       tuples: Iterable[Fact] = ()) -> Relation:
        if self._backend is None:
            return Relation(name, arity, tuples)
        return self._backend.make_relation(name, arity, tuples)

    def _scratch_backend(self):
        # Copies and snapshots must be *private*: a durable file-backed
        # backend hands them a scratch (temporary) variant so derived
        # relations created on a copy never land in -- or collide
        # inside -- the shared database file.
        return None if self._backend is None else self._backend.scratch()

    def copy(self) -> "Database":
        """A deep copy sharing no mutable state (indexes not copied).

        Aliasing is preserved: a :class:`Relation` mounted under several
        names via :meth:`attach` is copied *once* and the copy is
        mounted under the same names, so a write through one alias
        stays visible through the others -- exactly as in the source
        database.

        Observers are *not* inherited: a copy is a private snapshot and
        mutating it must not feed the original's delta capture.  The
        storage backend carries over in its scratch form, so relations
        the evaluators derive on the copy stay in the same storage
        class as the inputs without touching any durable file.
        """
        other = Database(backend=self._scratch_backend())
        copies: dict[int, Relation] = {}
        for name, rel in self._relations.items():
            clone = copies.get(id(rel))
            if clone is None:
                clone = rel.copy()
                copies[id(rel)] = clone
            other._relations[name] = clone
        return other

    def snapshot(self) -> "Database":
        """A stable read view of the current contents.

        Like :meth:`copy` (aliasing preserved, no observers inherited)
        but built from :meth:`Relation.snapshot`, which out-of-core
        backends implement without copying tuples -- the SQLite backend
        returns read-only connections pinned to the current WAL state.
        The service's fingerprint-keyed snapshot LRU goes through here.
        """
        other = Database(backend=self._scratch_backend())
        copies: dict[int, Relation] = {}
        for name, rel in self._relations.items():
            clone = copies.get(id(rel))
            if clone is None:
                clone = rel.snapshot()
                copies[id(rel)] = clone
            other._relations[name] = clone
        return other

    def with_backend(self, backend) -> "Database":
        """A copy of this database with every relation stored in ``backend``.

        Aliasing is preserved exactly as in :meth:`copy`; observers are
        not carried over.  ``backend=None`` migrates back to the
        in-memory default.
        """
        other = Database(backend=backend)
        copies: dict[int, Relation] = {}
        for name, rel in self._relations.items():
            clone = copies.get(id(rel))
            if clone is None:
                clone = other._make_relation(rel.name, rel.arity, rel)
                copies[id(rel)] = clone
            other._relations[name] = clone
        return other

    # -- pickling ----------------------------------------------------------

    def __getstate__(self):
        """Pickle the relation mounts only.

        The pickle memo copies each :class:`Relation` object once, so a
        relation mounted under several names via :meth:`attach` stays
        aliased on the receiving side -- the same guarantee
        :meth:`copy` gives.  Observers and the fingerprint/constant
        caches stay behind: a worker's copy is a private snapshot.
        """
        return {"relations": self._relations}

    def __setstate__(self, state) -> None:
        self._relations = dict(state["relations"])
        self._distinct_cache = None
        self._observers = []
        self._fp_cache = None
        # Backend objects hold process-local handles (connections,
        # paths); an unpickled copy is a private in-memory snapshot.
        self._backend = None

    # -- observation -------------------------------------------------------

    def observe(self, callback) -> None:
        """Subscribe ``callback(relation, fact, sign)`` to every relation.

        Current relations are subscribed immediately; relations created
        later through :meth:`ensure` / :meth:`add_fact` are subscribed
        on creation.  Mounting a foreign relation via :meth:`attach`
        while observed is reported as a reset event (``fact=None,
        sign=0``) because its existing tuples never produced deltas.
        """
        if callback in self._observers:
            return
        self._observers.append(callback)
        for rel in {id(r): r for r in self._relations.values()}.values():
            rel.observe(callback)

    def unobserve(self, callback) -> None:
        """Unsubscribe from the database and all its relations."""
        if callback in self._observers:
            self._observers.remove(callback)
        for rel in {id(r): r for r in self._relations.values()}.values():
            rel.unobserve(callback)

    # -- access -----------------------------------------------------------

    def attach(self, relation: Relation, name: str | None = None) -> None:
        """Mount an existing :class:`Relation` object under ``name``.

        The relation is shared, not copied -- mutations are visible to
        every database it is attached to.  Evaluators use this to build
        lightweight views (e.g. a database where a delta relation stands
        in for an IDB predicate) without copying tuples.

        Replacing an existing mount unsubscribes this database's
        observers from the displaced relation once it no longer holds
        any mount here -- otherwise a later :meth:`unobserve` (which
        only walks current mounts) would leave the subscription behind
        and a detached delta capture would keep receiving its events.
        """
        mount = name or relation.name
        displaced = self._relations.get(mount)
        self._relations[mount] = relation
        self._fp_cache = None
        if (displaced is not None and displaced is not relation
                and self._observers
                and all(r is not displaced
                        for r in self._relations.values())):
            for cb in self._observers:
                displaced.unobserve(cb)
        if self._observers:
            # The mounted relation's tuples arrived without deltas;
            # observers can only treat this as a wholesale reset.
            for cb in self._observers:
                relation.observe(cb)
                cb(relation, None, 0)

    def ensure(self, name: str, arity: int) -> Relation:
        """Get the named relation, creating it empty if absent."""
        rel = self._relations.get(name)
        if rel is None:
            rel = self._make_relation(name, arity)
            self._relations[name] = rel
            self._fp_cache = None
            for cb in self._observers:
                rel.observe(cb)
        elif rel.arity != arity:
            raise ArityError(
                f"relation {name} already exists with arity {rel.arity}, "
                f"requested {arity}"
            )
        return rel

    def relation(self, name: str) -> Relation | None:
        """The named relation, or ``None`` if it was never written."""
        return self._relations.get(name)

    def tuples(self, name: str) -> frozenset[Fact]:
        """Snapshot of the named relation's tuples (empty if absent)."""
        rel = self._relations.get(name)
        return rel.tuples() if rel is not None else frozenset()

    def add_fact(self, name: str, fact: Fact) -> bool:
        """Insert one tuple, creating the relation if needed."""
        return self.ensure(name, len(fact)).add(tuple(fact))

    def remove_fact(self, name: str, fact: Fact) -> bool:
        """Remove one tuple; False if the relation or tuple is absent."""
        rel = self._relations.get(name)
        if rel is None:
            return False
        return rel.discard(tuple(fact))

    def add_ground_atom(self, a: Atom) -> bool:
        """Insert a ground atom as a fact."""
        if not a.is_ground():
            raise ValueError(f"cannot store non-ground atom {a}")
        values = tuple(t.value for t in a.args if isinstance(t, Constant))
        return self.add_fact(a.predicate, values)

    def predicates(self) -> frozenset[str]:
        """Names of all relations present (including empty ones)."""
        return frozenset(self._relations)

    def fingerprint(self) -> tuple[tuple[str, int, int], ...]:
        """A cheap mutation fingerprint over all relations.

        ``(name, arity, version)`` per relation, sorted by name;
        O(#relations), no tuples are hashed.  Any fact added or
        relation cleared (directly or through an attached view) changes
        the fingerprint, so caches keyed on it -- the engine's base-IDB
        materialization, the service's snapshot lookup -- notice
        mutations between queries.

        The sorted tuple is cached and validated against the sum of all
        relation versions: versions only ever increase, so any mutation
        strictly increases the sum and a stale hit is impossible.
        Membership changes that could leave the sum unchanged (a new
        empty relation, an attach) explicitly drop the cache.
        """
        total = 0
        for rel in self._relations.values():
            total += rel._version
        cached = self._fp_cache
        if cached is not None and cached[0] == total:
            return cached[1]
        fp = tuple(
            (name, rel.arity, rel.version)
            for name, rel in sorted(self._relations.items())
        )
        self._fp_cache = (total, fp)
        return fp

    def arity(self, name: str) -> int | None:
        """Arity of the named relation, or ``None`` if absent."""
        rel = self._relations.get(name)
        return rel.arity if rel is not None else None

    def size(self, name: str) -> int:
        """Tuple count of the named relation (0 if absent)."""
        rel = self._relations.get(name)
        return len(rel) if rel is not None else 0

    def total_tuples(self) -> int:
        """Total tuples across all relations."""
        return sum(len(r) for r in self._relations.values())

    def distinct_constants(self) -> frozenset[ConstValue]:
        """All constant values anywhere in the database.

        This is the paper's parameter ``n`` -- "the number of distinct
        constants in the base relations" (Definition 4.2).  Cached per
        :meth:`fingerprint` (which any mutation changes), on top of the
        per-relation :meth:`Relation.distinct_values` caches.
        """
        fp = self.fingerprint()
        cached = self._distinct_cache
        if cached is not None and cached[0] == fp:
            return cached[1]
        values: set[ConstValue] = set()
        for rel in self._relations.values():
            values |= rel.distinct_values()
        frozen = frozenset(values)
        self._distinct_cache = (fp, frozen)
        return frozen

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{r.name}/{r.arity}:{len(r)}"
            for r in sorted(self._relations.values(), key=lambda r: r.name)
        )
        return f"Database({parts})"
