"""Atoms (predicate instances) and operations on collections of atoms.

An atom is a predicate symbol applied to a tuple of terms, e.g.
``buys(X, Y)`` or ``friend(tom, W)``.  The paper calls these *predicate
instances*; conjunctions of them form rule bodies and the *strings* of an
expansion.

This module also provides the variable-connectivity machinery behind
Definitions 2.1 and 2.2 (connected predicate instances, maximal connected
sets), which Condition 4 of the separability test relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from .terms import Constant, Term, Variable, make_term

__all__ = [
    "Atom",
    "atom",
    "connected_components",
    "shared_variables",
]


@dataclass(frozen=True, slots=True)
class Atom:
    """A predicate instance: predicate name plus argument terms."""

    predicate: str
    args: tuple[Term, ...]

    def __post_init__(self) -> None:
        if not self.predicate:
            raise ValueError("predicate name must be non-empty")

    @property
    def arity(self) -> int:
        """Number of argument positions."""
        return len(self.args)

    def variables(self) -> tuple[Variable, ...]:
        """All variable occurrences, in position order (with duplicates)."""
        return tuple(t for t in self.args if isinstance(t, Variable))

    def variable_set(self) -> frozenset[Variable]:
        """The set of distinct variables appearing in this atom."""
        return frozenset(t for t in self.args if isinstance(t, Variable))

    def constants(self) -> tuple[Constant, ...]:
        """All constant occurrences, in position order (with duplicates)."""
        return tuple(t for t in self.args if isinstance(t, Constant))

    def is_ground(self) -> bool:
        """True if the atom contains no variables (i.e. it is a fact)."""
        return all(isinstance(t, Constant) for t in self.args)

    def positions_of(self, var: Variable) -> tuple[int, ...]:
        """0-based argument positions at which ``var`` occurs."""
        return tuple(i for i, t in enumerate(self.args) if t == var)

    def has_repeated_variables(self) -> bool:
        """True if some variable occurs in more than one argument position."""
        seen: set[Variable] = set()
        for t in self.args:
            if isinstance(t, Variable):
                if t in seen:
                    return True
                seen.add(t)
        return False

    def substitute(self, mapping: Mapping[Variable, Term]) -> "Atom":
        """Apply a substitution, returning a new atom.

        Variables not in ``mapping`` are left unchanged; constants always
        pass through.
        """
        return Atom(
            self.predicate,
            tuple(
                mapping.get(t, t) if isinstance(t, Variable) else t
                for t in self.args
            ),
        )

    def rename(self, suffix: int) -> "Atom":
        """Rename every variable by appending ``_<suffix>``.

        This is the subscripting step of Procedure Expand (line 12 of
        Figure 1 in the paper).
        """
        from .terms import fresh_variable

        return Atom(
            self.predicate,
            tuple(
                fresh_variable(t, suffix) if isinstance(t, Variable) else t
                for t in self.args
            ),
        )

    def __str__(self) -> str:
        inner = ", ".join(str(t) for t in self.args)
        return f"{self.predicate}({inner})"

    def __repr__(self) -> str:
        return f"Atom({str(self)!r})"


def atom(predicate: str, *args: object) -> Atom:
    """Convenience constructor coercing Python values into terms.

    >>> atom("friend", "X", "tom")
    Atom('friend(X, tom)')
    """
    return Atom(predicate, tuple(make_term(a) for a in args))


def shared_variables(a: Atom, b: Atom) -> frozenset[Variable]:
    """Variables occurring in both ``a`` and ``b``."""
    return a.variable_set() & b.variable_set()


def connected_components(atoms: Sequence[Atom]) -> list[list[Atom]]:
    """Partition ``atoms`` into maximal connected sets (Definition 2.2).

    Two atoms are connected if they share a variable directly or through a
    chain of variable-sharing atoms (Definition 2.1).  Ground atoms share
    no variables with anything, so each forms its own singleton component.

    The returned components preserve the original ordering of atoms both
    across and within components (components are ordered by their first
    member).
    """
    n = len(atoms)
    parent = list(range(n))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[rj] = ri

    by_var: dict[Variable, int] = {}
    for i, a in enumerate(atoms):
        for v in a.variable_set():
            if v in by_var:
                union(by_var[v], i)
            else:
                by_var[v] = i

    groups: dict[int, list[Atom]] = {}
    order: list[int] = []
    for i, a in enumerate(atoms):
        root = find(i)
        if root not in groups:
            groups[root] = []
            order.append(root)
        groups[root].append(a)
    return [groups[root] for root in order]


def all_variables(atoms: Iterable[Atom]) -> frozenset[Variable]:
    """The set of distinct variables across a collection of atoms."""
    result: set[Variable] = set()
    for a in atoms:
        result |= a.variable_set()
    return frozenset(result)


def iter_terms(atoms: Iterable[Atom]) -> Iterator[Term]:
    """Iterate over every term occurrence across ``atoms``."""
    for a in atoms:
        yield from a.args
