"""Substitutions, matching, and most-general unifiers for function-free terms.

With no function symbols, unification degenerates to a union-find over
variables with at most one constant per class, and *matching* a pattern
atom against a ground fact is a single left-to-right pass.  Both are
provided here; matching is the hot path of every bottom-up evaluator in
this package.
"""

from __future__ import annotations

from typing import Mapping, MutableMapping, Optional

from .atoms import Atom
from .terms import Constant, Term, Variable

__all__ = [
    "Substitution",
    "match_atom",
    "unify_atoms",
    "compose",
    "apply_to_term",
]

#: A substitution maps variables to terms (constants or other variables).
Substitution = Mapping[Variable, Term]


def apply_to_term(term: Term, subst: Substitution) -> Term:
    """Apply ``subst`` to a single term, following variable chains."""
    seen: set[Variable] = set()
    while isinstance(term, Variable) and term in subst:
        if term in seen:  # pragma: no cover - cycles cannot arise from unify
            break
        seen.add(term)
        term = subst[term]
    return term


def match_atom(
    pattern: Atom,
    fact: tuple,
    bindings: Optional[MutableMapping[Variable, Constant]] = None,
) -> Optional[dict[Variable, Constant]]:
    """Match ``pattern`` against a ground tuple, extending ``bindings``.

    ``fact`` is a raw tuple of constant *values* as stored in a
    :class:`repro.datalog.database.Relation` (not `Constant` objects).
    Returns the extended bindings dict on success and ``None`` on
    mismatch; the caller's ``bindings`` mapping is never mutated.

    >>> from .atoms import atom
    >>> match_atom(atom("f", "X", "tom"), ("sue", "tom"))
    {Variable('X'): Constant('sue')}
    """
    if len(pattern.args) != len(fact):
        return None
    result: dict[Variable, Constant] = dict(bindings) if bindings else {}
    for term, value in zip(pattern.args, fact):
        if isinstance(term, Constant):
            if term.value != value:
                return None
        else:
            bound = result.get(term)
            if bound is None:
                result[term] = Constant(value)
            elif bound.value != value:
                return None
    return result


def unify_atoms(a: Atom, b: Atom) -> Optional[dict[Variable, Term]]:
    """Most general unifier of two (possibly non-ground) atoms.

    Returns a substitution ``s`` with ``a.substitute(s) == b.substitute(s)``,
    or ``None`` if the atoms do not unify.  Used by Procedure Expand when
    applying a rule to a predicate instance in the fringe.
    """
    if a.predicate != b.predicate or a.arity != b.arity:
        return None
    subst: dict[Variable, Term] = {}

    def walk(t: Term) -> Term:
        while isinstance(t, Variable) and t in subst:
            t = subst[t]
        return t

    for left, right in zip(a.args, b.args):
        left, right = walk(left), walk(right)
        if left == right:
            continue
        if isinstance(left, Variable):
            subst[left] = right
        elif isinstance(right, Variable):
            subst[right] = left
        else:  # two distinct constants
            return None

    # Flatten chains so callers can apply the result in one pass.
    return {v: apply_to_term(t, subst) for v, t in subst.items()}


def compose(first: Substitution, second: Substitution) -> dict[Variable, Term]:
    """Compose substitutions: applying the result equals applying
    ``first`` then ``second``."""
    result: dict[Variable, Term] = {}
    for v, t in first.items():
        if isinstance(t, Variable):
            result[v] = second.get(t, t)
        else:
            result[v] = t
    for v, t in second.items():
        if v not in first:
            result[v] = t
    return result
