"""Terms of the Datalog language: variables and constants.

The paper considers function-free pure Horn clause programs (Section 2),
so a term is either a variable or a constant -- there are no function
symbols.  Both kinds are immutable and hashable so they can live in the
tuple-sets used by :class:`repro.datalog.database.Relation`.

Naming conventions follow Prolog: identifiers starting with an uppercase
letter or underscore are variables; everything else (lowercase
identifiers, integers, quoted strings) is a constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

__all__ = [
    "Variable",
    "Constant",
    "Term",
    "ConstValue",
    "is_variable_name",
    "make_term",
    "fresh_variable",
]

#: Python values allowed inside a :class:`Constant`.
ConstValue = Union[str, int]


@dataclass(frozen=True, slots=True)
class Variable:
    """A logic variable, identified by its name.

    Two variables with the same name are the same variable (within one
    rule or conjunctive query).  Procedure Expand (Figure 1 of the paper)
    distinguishes renamed-apart copies by *subscripts*; we realize
    subscripting with :func:`fresh_variable`, which appends ``_<i>``.
    """

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("variable name must be non-empty")

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"


@dataclass(frozen=True, slots=True)
class Constant:
    """A constant symbol: a string atom (e.g. ``tom``) or an integer."""

    value: ConstValue

    def __str__(self) -> str:
        if isinstance(self.value, int):
            return str(self.value)
        if is_variable_name(self.value) or not self.value.isidentifier():
            # Needs quoting to round-trip through the parser.
            escaped = self.value.replace("\\", "\\\\").replace("'", "\\'")
            return f"'{escaped}'"
        return self.value

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"


Term = Union[Variable, Constant]


def is_variable_name(text: str) -> bool:
    """Return True if ``text`` names a variable under Prolog conventions."""
    return bool(text) and (text[0].isupper() or text[0] == "_")


def make_term(value: object) -> Term:
    """Coerce a Python value into a term.

    Strings are interpreted with Prolog conventions (leading uppercase or
    underscore means variable); integers become constants; existing terms
    pass through unchanged.  This is a convenience for building programs
    programmatically and in tests.
    """
    if isinstance(value, (Variable, Constant)):
        return value
    if isinstance(value, bool):
        raise TypeError("booleans are not valid Datalog constants")
    if isinstance(value, int):
        return Constant(value)
    if isinstance(value, str):
        if is_variable_name(value):
            return Variable(value)
        return Constant(value)
    raise TypeError(f"cannot interpret {value!r} as a Datalog term")


def fresh_variable(base: Variable, subscript: int) -> Variable:
    """Return a renamed-apart copy of ``base`` carrying ``subscript``.

    Mirrors the subscripting of Procedure Expand: the variable ``W`` on
    iteration 3 becomes ``W_3``.  Subscripted names remain valid variable
    names, so expansions can be pretty-printed and re-parsed.
    """
    return Variable(f"{base.name}_{subscript}")
