"""Naive bottom-up evaluation: re-derive everything until fixpoint.

The textbook baseline.  Every round evaluates every rule against the
whole database and the round count is bounded by the number of derivable
facts, so naive evaluation is polynomial but wasteful -- each fact is
rederived on every later round.  It exists here as the simplest possible
oracle for the other evaluators and as the bottom rung of benchmark E8.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Optional

from ..budget import Budget, UNLIMITED
from ..observability.tracer import live
from ..stats import EvaluationStats
from .database import Database
from .joins import evaluate_body_project
from .programs import Program

__all__ = ["naive_evaluate"]


def naive_evaluate(
    program: Program,
    edb: Database,
    stats: Optional[EvaluationStats] = None,
    budget: Budget = UNLIMITED,
    order: str = "greedy",
    tracer=None,
) -> Database:
    """Materialize every IDB predicate of ``program`` over ``edb``.

    Returns a new database containing the EDB relations plus one relation
    per IDB predicate holding its least-fixpoint extent.  ``edb`` itself
    is not modified.
    """
    tracer = live(tracer)
    db = edb.copy()
    for predicate in program.idb_predicates:
        db.ensure(predicate, program.arity(predicate))

    span_cm = (
        tracer.span("naive.fixpoint") if tracer is not None
        else nullcontext()
    )
    with span_cm:
        changed = True
        while changed:
            budget.check_wall(stats)
            changed = False
            new_facts = 0
            if stats is not None:
                stats.bump_iterations()
            if tracer is not None:
                tracer.count("iterations")
            for ri, r in enumerate(program.rules):
                target = db.ensure(r.head.predicate, r.head.arity)
                produced_r = 0
                for fact in evaluate_body_project(db, r.body, r.head.args,
                                                  stats=stats, order=order,
                                                  tracer=tracer):
                    produced_r += 1
                    if stats is not None:
                        stats.bump_produced()
                    if target.add(fact):
                        changed = True
                        new_facts += 1
                if tracer is not None:
                    tracer.count(f"rule_apps:{r.head.predicate}#{ri}")
                    if produced_r:
                        tracer.count(
                            f"rule_out:{r.head.predicate}#{ri}", produced_r
                        )
            if tracer is not None:
                tracer.record("new_facts", new_facts)
            if stats is not None:
                for predicate in program.idb_predicates:
                    stats.record_relation(predicate, db.size(predicate))
                    budget.check_relation(predicate, db.size(predicate),
                                          stats)
                budget.check_stats(stats)
    return db
