"""Pretty-printing programs, databases, and answers back to parseable text.

Everything printed here round-trips through :mod:`repro.datalog.parser`;
tests assert ``parse(pretty(x)) == x`` for programs and databases.
"""

from __future__ import annotations

from typing import Iterable

from .atoms import Atom
from .database import Database
from .programs import Program
from .rules import Rule
from .terms import Constant

__all__ = [
    "program_to_text",
    "database_to_text",
    "fact_to_text",
    "answers_to_text",
]


def fact_to_text(predicate: str, fact: tuple) -> str:
    """One fact as a parseable statement, e.g. ``friend(tom, sue).``"""
    ground = Atom(predicate, tuple(Constant(v) for v in fact))
    return f"{ground}."


def program_to_text(program: Program | Iterable[Rule]) -> str:
    """All rules, one per line, in program order."""
    rules = program.rules if isinstance(program, Program) else tuple(program)
    return "\n".join(str(r) for r in rules)


def database_to_text(db: Database) -> str:
    """Every fact as a statement, grouped by predicate, sorted for stability."""
    lines: list[str] = []
    for name in sorted(db.predicates()):
        for fact in sorted(db.tuples(name), key=repr):
            lines.append(fact_to_text(name, fact))
    return "\n".join(lines)


def answers_to_text(query: Atom, answers: Iterable[tuple]) -> str:
    """Query answers as ground atoms, sorted for stable output."""
    lines = [f"% answers to {query}?"]
    for fact in sorted(answers, key=repr):
        lines.append(fact_to_text(query.predicate, fact))
    if len(lines) == 1:
        lines.append("% (no answers)")
    return "\n".join(lines)
