"""Exception hierarchy (re-exported from :mod:`repro.errors`).

The classes live in the dependency-free top-level module
:mod:`repro.errors` so that both the Datalog substrate and the
strategy-independent infrastructure (:mod:`repro.budget`) can import
them without cycles; this module keeps the historical import path
``repro.datalog.errors`` working.
"""

from ..errors import (
    ArityError,
    BudgetExceeded,
    CyclicDataError,
    DatalogSyntaxError,
    EvaluationError,
    NotFullSelectionError,
    NotLinearError,
    NotSeparableError,
    ReproError,
    SafetyError,
    UnknownPredicateError,
)

__all__ = [
    "ArityError",
    "BudgetExceeded",
    "CyclicDataError",
    "DatalogSyntaxError",
    "EvaluationError",
    "NotFullSelectionError",
    "NotLinearError",
    "NotSeparableError",
    "ReproError",
    "SafetyError",
    "UnknownPredicateError",
]
