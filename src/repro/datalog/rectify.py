"""Rule rectification (Ullman [Ull88], as assumed in Section 3.3).

The Separable compiler assumes rules are *rectified*: all rules defining
a predicate have identical heads consisting of distinct variables and no
constants.  Section 2 of the paper notes that repeated head variables and
head constants "can be handled by adding equalities to the rule bodies";
:func:`rectify_definition` performs exactly that rewrite, emitting
built-in ``eq/2`` atoms (see :data:`repro.datalog.joins.EQ`).

Example::

    t(X, X)   :- b(X).        becomes   t(V1, V2) :- b(V1) & eq(V2, V1).
    t(a, Y)   :- c(Y).        becomes   t(V1, V2) :- c(V2) & eq(V1, a).
    t(X, Y)   :- d(X, Y).     becomes   t(V1, V2) :- d(V1, V2).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .atoms import Atom
from .joins import EQ
from .programs import Program
from .rules import Rule
from .terms import Constant, Term, Variable

__all__ = [
    "canonical_head_variables",
    "rectify_rule",
    "rectify_definition",
    "rectify_program",
    "is_rectified",
]


def canonical_head_variables(
    arity: int, avoid: Iterable[Variable] = ()
) -> tuple[Variable, ...]:
    """``arity`` fresh head variables ``V1..Vk``, avoiding name clashes.

    If any of the default names collides with a variable in ``avoid``,
    every name gets underscores appended until the whole batch is fresh.
    """
    avoid_names = {v.name for v in avoid}
    suffix = ""
    while any(f"V{i + 1}{suffix}" in avoid_names for i in range(arity)):
        suffix += "_"
    return tuple(Variable(f"V{i + 1}{suffix}") for i in range(arity))


def is_rectified(rules: Sequence[Rule]) -> bool:
    """True if all rules share one repeat-free, constant-free head."""
    if not rules:
        return True
    first = rules[0].head
    if first.has_repeated_variables() or any(
        isinstance(t, Constant) for t in first.args
    ):
        return False
    return all(r.head == first for r in rules)


def rectify_rule(r: Rule, head_vars: Sequence[Variable]) -> Rule:
    """Rewrite one rule to use the canonical head ``p(head_vars...)``.

    Head variables are renamed throughout the rule; repeated head
    variables and head constants turn into ``eq`` body atoms.
    """
    if len(head_vars) != r.head.arity:
        raise ValueError(
            f"head variable count {len(head_vars)} does not match "
            f"arity {r.head.arity} of {r.head}"
        )
    renaming: dict[Variable, Term] = {}
    equalities: list[Atom] = []
    for canonical, original in zip(head_vars, r.head.args):
        if isinstance(original, Constant):
            equalities.append(Atom(EQ, (canonical, original)))
        elif original in renaming:
            # Repeated head variable: its first occurrence was renamed to
            # some earlier canonical variable; equate this position to it.
            equalities.append(Atom(EQ, (canonical, renaming[original])))
        else:
            renaming[original] = canonical

    # Canonical names must not capture unrelated body variables.
    captured = (set(head_vars) & r.variables()) - set(r.head.variable_set())
    if captured:
        fresh = {
            v: Variable(f"{v.name}__r") for v in captured
        }
        r = r.substitute(fresh)

    new_head = Atom(r.head.predicate, tuple(head_vars))
    new_body = tuple(a.substitute(renaming) for a in r.body) + tuple(equalities)
    return Rule(new_head, new_body)


def rectify_definition(
    rules: Sequence[Rule],
    head_vars: Sequence[Variable] | None = None,
) -> list[Rule]:
    """Rectify all rules of one predicate's definition.

    If the rules are already rectified they are returned unchanged (no
    fresh variable churn); otherwise every rule is rewritten against one
    canonical head.  ``head_vars`` may be supplied to control naming.
    """
    rules = list(rules)
    if not rules:
        return rules
    if head_vars is None:
        if is_rectified(rules):
            return rules
        avoid: set[Variable] = set()
        for r in rules:
            avoid |= r.variables()
        head_vars = canonical_head_variables(rules[0].head.arity, avoid)
    return [rectify_rule(r, head_vars) for r in rules]


def rectify_program(program: Program) -> Program:
    """Rectify every IDB predicate's definition in ``program``.

    Rule order is preserved (rules keep their original positions; only
    their text changes).
    """
    replacements: dict[int, Rule] = {}
    for predicate in program.idb_predicates:
        originals = [
            (i, r)
            for i, r in enumerate(program.rules)
            if r.head.predicate == predicate
        ]
        rectified = rectify_definition([r for _, r in originals])
        for (i, _), new_rule in zip(originals, rectified):
            replacements[i] = new_rule
    return Program(
        replacements.get(i, r) for i, r in enumerate(program.rules)
    )
