"""Rules (Horn clauses) and structural checks on them.

A rule ``h :- b1 & ... & bn.`` has a head atom and a conjunction of body
atoms.  Facts are rules with empty bodies and ground heads.  The paper
restricts attention to *linear recursive* rules -- the recursive
predicate occurs at most once in the body -- and assumes rules are
*rectified* (identical, constant-free, repeat-free heads); rectification
itself lives in :mod:`repro.datalog.rectify`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from .atoms import Atom
from .errors import SafetyError
from .terms import Term, Variable

__all__ = ["Rule", "rule"]


@dataclass(frozen=True, slots=True)
class Rule:
    """A Horn clause ``head :- body``.

    Instances are immutable; transformation passes build new rules.
    """

    head: Atom
    body: tuple[Atom, ...] = ()

    @property
    def is_fact(self) -> bool:
        """True for a bodiless rule with a ground head."""
        return not self.body and self.head.is_ground()

    def variables(self) -> frozenset[Variable]:
        """All distinct variables in the rule."""
        result = set(self.head.variable_set())
        for a in self.body:
            result |= a.variable_set()
        return frozenset(result)

    def body_predicates(self) -> frozenset[str]:
        """Names of predicates occurring in the body."""
        return frozenset(a.predicate for a in self.body)

    def occurrences_of(self, predicate: str) -> tuple[Atom, ...]:
        """Body atoms whose predicate is ``predicate``."""
        return tuple(a for a in self.body if a.predicate == predicate)

    def is_recursive_in(self, predicate: str) -> bool:
        """True if ``predicate`` heads this rule and occurs in its body."""
        return (
            self.head.predicate == predicate
            and any(a.predicate == predicate for a in self.body)
        )

    def is_linear_in(self, predicate: str) -> bool:
        """True if ``predicate`` occurs at most once in the body.

        Nonrecursive rules are trivially linear.  Only rules headed by
        ``predicate`` are interesting callers, but the check itself does
        not depend on the head.
        """
        return len(self.occurrences_of(predicate)) <= 1

    def recursive_atom(self, predicate: str) -> Atom | None:
        """The single body occurrence of ``predicate``, or ``None``.

        Raises ``ValueError`` if the rule is not linear in ``predicate``,
        because "the" recursive atom would then be ambiguous.
        """
        occurrences = self.occurrences_of(predicate)
        if len(occurrences) > 1:
            raise ValueError(
                f"rule {self} has {len(occurrences)} occurrences of "
                f"{predicate}; it is not linear"
            )
        return occurrences[0] if occurrences else None

    def nonrecursive_body(self, predicate: str) -> tuple[Atom, ...]:
        """Body atoms other than occurrences of ``predicate``.

        For a recursive rule this is the conjunction the paper writes
        ``a_ij``; Condition 4 of Definition 2.4 requires it to form one
        maximal connected set.
        """
        return tuple(a for a in self.body if a.predicate != predicate)

    def check_safety(self) -> None:
        """Raise :class:`SafetyError` if some head variable is unbound.

        Datalog safety: every variable in the head must occur somewhere
        in the body (facts with variables are unsafe by the same rule).
        """
        body_vars: set[Variable] = set()
        for a in self.body:
            body_vars |= a.variable_set()
        missing = self.head.variable_set() - body_vars
        if missing:
            names = ", ".join(sorted(v.name for v in missing))
            raise SafetyError(
                f"rule {self} is unsafe: head variable(s) {names} "
                f"do not occur in the body"
            )

    def is_safe(self) -> bool:
        """True when :meth:`check_safety` would not raise."""
        try:
            self.check_safety()
        except SafetyError:
            return False
        return True

    def substitute(self, mapping: Mapping[Variable, Term]) -> "Rule":
        """Apply a substitution to head and body, returning a new rule."""
        return Rule(
            self.head.substitute(mapping),
            tuple(a.substitute(mapping) for a in self.body),
        )

    def rename(self, suffix: int) -> "Rule":
        """Rename all variables apart by appending ``_<suffix>``."""
        return Rule(
            self.head.rename(suffix),
            tuple(a.rename(suffix) for a in self.body),
        )

    def __str__(self) -> str:
        if not self.body:
            return f"{self.head}."
        body_text = " & ".join(str(a) for a in self.body)
        return f"{self.head} :- {body_text}."

    def __repr__(self) -> str:
        return f"Rule({str(self)!r})"


def rule(head: Atom, body: Iterable[Atom] = ()) -> Rule:
    """Convenience constructor accepting any iterable body."""
    return Rule(head, tuple(body))
