"""Cost-based join ordering: selectivity estimates over a join graph.

:func:`~repro.datalog.plan_cache.greedy_permutation` orders a body by
*comparing* relation sizes -- it never multiplies them, so it cannot
tell a join that keeps n bindings from one that fans out to 32n.  This
module builds the classic System-R estimate instead: per-atom output
cardinalities from ``len(relation)``, per-column distinct counts
(:meth:`Relation.column_distinct_counts`), and equi-join selectivities
``1/max(distinct)`` refined by a sampled containment check
(:meth:`Relation.sample` against the joined column's value set).  A
left-deep order is chosen by dynamic programming over join-graph
subsets -- exact up to :data:`DP_MAX_ATOMS` atoms, a one-step-lookahead
greedy sweep above that -- minimising the sum of intermediate result
sizes.

Everything here is deterministic: statistics are content hashes and
set cardinalities (never set iteration order), DP ties break on the
lexicographically smallest permutation, and the per-mask cardinality is
a function of the *set* of atoms, so the DP recurrence is sound.

:class:`AdaptiveState` is the feedback half (``order="adaptive"``): the
fixpoint loops accumulate the planner's estimated rows per iteration,
compare them against the observed produced tuples, and -- when they
diverge by more than :data:`DIVERGENCE_FACTOR` -- trigger a bounded
number of mid-fixpoint re-plans by bumping the planning epoch, which
forces :meth:`PlanCache.plan_for` to re-run the cost model against the
*current* relation sizes.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .atoms import Atom
from .database import Database
from .terms import Constant, Variable

__all__ = [
    "AdaptiveState",
    "DIVERGENCE_FACTOR",
    "DP_MAX_ATOMS",
    "MAX_REPLANS",
    "SAMPLE_SIZE",
    "cost_permutation",
    "size_signature",
]

#: Same string as :data:`repro.datalog.plan_cache.EQ`; duplicated here
#: because plan_cache imports this module.
_EQ = "eq"

#: Tuples drawn per relation for the containment refinement.
SAMPLE_SIZE = 32

#: Exact DP subset enumeration up to this many non-eq atoms (2^k masks);
#: larger bodies take the greedy one-step-lookahead sweep.
DP_MAX_ATOMS = 8

#: Observed/estimated ratio beyond which an iteration counts as a
#: misestimate (checked both directions).
DIVERGENCE_FACTOR = 4.0

#: Re-plans allowed per fixpoint loop.
MAX_REPLANS = 2

#: Cardinality floor: keeps empty-relation estimates comparable without
#: ever multiplying a real cost through zero.
_MIN_ROWS = 1e-6

#: Containment floor: a sampled miss never drives an estimate to zero.
_MIN_CONTAINMENT = 0.01


class _AtomInfo:
    """Planning statistics for one non-eq body atom."""

    __slots__ = ("idx", "atom", "rel", "size", "distinct", "var_cols",
                 "base", "vars")

    def __init__(self, idx: int, atom: Atom,
                 bound_vars: frozenset, db: Optional[Database]) -> None:
        self.idx = idx
        self.atom = atom
        rel = db.relation(atom.predicate) if db is not None else None
        self.rel = rel
        self.size = len(rel) if rel is not None else 0
        distinct = rel.column_distinct_counts() if rel is not None \
            else (0,) * len(atom.args)
        self.distinct = distinct
        var_cols: dict[Variable, list[int]] = {}
        base = float(self.size)
        for col, term in enumerate(atom.args):
            d = max(distinct[col] if col < len(distinct) else 0, 1)
            if isinstance(term, Constant) or term in bound_vars:
                # A column pinned to one value keeps ~size/d tuples.
                base /= d
            else:
                var_cols.setdefault(term, []).append(col)
        self.var_cols = var_cols
        self.base = base
        self.vars = frozenset(var_cols)


def _containment(info_a: "_AtomInfo", col: int,
                 info_b: "_AtomInfo") -> float:
    """Fraction of ``info_a``'s sampled column values present in
    ``info_b`` -- the sampled refinement of the ``1/max(distinct)``
    uniformity assumption.  Checked against ``info_b``'s full (cached)
    value set, so a small sample of a huge relation never produces a
    false zero.
    """
    if info_a.rel is None or info_b.rel is None:
        return 1.0
    sample = info_a.rel.sample(SAMPLE_SIZE)
    if not sample:
        return 1.0
    values = info_b.rel.distinct_values()
    hits = sum(1 for t in sample if t[col] in values)
    return min(1.0, max(hits / len(sample), _MIN_CONTAINMENT))


def _eq_selectivity(occurrences: list[tuple["_AtomInfo", int]]) -> float:
    """Selectivity of one shared variable's equality constraints.

    ``occurrences`` is every (atom, column) the variable appears in
    within the current subset; ``m`` occurrences impose ``m-1``
    equalities, each estimated at ``1/max(distinct)`` -- a function of
    the occurrence *set*, which keeps :func:`_card` order-independent.
    The first cross-atom pair (smallest relation probing the other)
    additionally pays the sampled containment fraction.
    """
    max_d = 1
    for info, col in occurrences:
        d = info.distinct[col] if col < len(info.distinct) else 0
        if d > max_d:
            max_d = d
    sel = (1.0 / max_d) ** (len(occurrences) - 1)
    cross = sorted(
        {id(info): (info, col) for info, col in occurrences}.values(),
        key=lambda pair: (pair[0].size, pair[0].idx),
    )
    if len(cross) >= 2:
        (small, col), (other, _) = cross[0], cross[1]
        sel *= _containment(small, col, other)
    return sel


def _card(infos: Sequence["_AtomInfo"]) -> float:
    """Estimated result size of joining exactly this set of atoms."""
    rows = 1.0
    for info in infos:
        rows *= info.base
    occs: dict[Variable, list[tuple[_AtomInfo, int]]] = {}
    for info in infos:
        for var, cols in info.var_cols.items():
            occs.setdefault(var, []).extend((info, c) for c in cols)
    for entries in occs.values():
        if len(entries) >= 2:
            rows *= _eq_selectivity(entries)
    return max(rows, _MIN_ROWS)


def size_signature(body: tuple[Atom, ...],
                   db: Optional[Database]) -> tuple[int, ...]:
    """Log-scale cardinality signature, the cost-plan memo key.

    One ``floor(log2)+1`` bucket per atom (``-1`` for eq atoms, ``0``
    for empty or absent relations): O(arity-free) to compute per call,
    and taking O(log n) distinct values per body over a whole run -- so
    re-keying stays O(1) per body while still noticing the
    order-of-magnitude shifts that could change the chosen plan.
    """
    sig = []
    for a in body:
        if a.predicate == _EQ:
            sig.append(-1)
            continue
        rel = db.relation(a.predicate) if db is not None else None
        n = len(rel) if rel is not None else 0
        sig.append(n.bit_length())
    return tuple(sig)


def cost_permutation(
    body: tuple[Atom, ...],
    bound_vars: frozenset,
    db: Optional[Database] = None,
) -> tuple[tuple[int, ...], float]:
    """Left-deep cost-based order over the body's non-eq atoms.

    Returns ``(permutation, estimated_rows)``: the non-eq body indices
    in execution order (eq atoms are interleaved later by the plan
    cache's deferral pass) and the estimated final result cardinality,
    which ``order="adaptive"`` compares against observed production.
    Cross products are deferred -- an atom sharing no variable with the
    prefix (and binding nothing) is only picked when no connected atom
    remains.
    """
    infos = [
        _AtomInfo(i, a, bound_vars, db)
        for i, a in enumerate(body)
        if a.predicate != _EQ
    ]
    if not infos:
        return (), 0.0
    if len(infos) <= DP_MAX_ATOMS:
        order, est = _dp_order(infos)
    else:
        order, est = _greedy_sweep(infos)
    return tuple(infos[p].idx for p in order), est


def _connected(info: "_AtomInfo", prefix_vars: frozenset,
               first: bool) -> bool:
    return first or bool(info.vars & prefix_vars) \
        or len(info.vars) < len(info.atom.args)


def _dp_order(
    infos: list["_AtomInfo"],
) -> tuple[tuple[int, ...], float]:
    """Exact left-deep DP over atom subsets (Selinger-style).

    ``cost(S) = min over a in S of cost(S - a) + card(S)`` -- sound
    because :func:`_card` depends only on the subset, never the order
    it was built in.  Cross-product extensions sort after connected
    ones, and exact ties break on the smaller permutation tuple, so the
    result is deterministic.
    """
    k = len(infos)
    full = (1 << k) - 1
    cards: dict[int, float] = {}

    def card(mask: int) -> float:
        c = cards.get(mask)
        if c is None:
            c = _card([infos[p] for p in range(k) if mask >> p & 1])
            cards[mask] = c
        return c

    # mask -> (cross_products, cost, perm, prefix_vars)
    best: dict[int, tuple[int, float, tuple[int, ...], frozenset]] = {
        0: (0, 0.0, (), frozenset())
    }
    for mask in range(1, full + 1):
        chosen = None
        c_mask = card(mask)
        for p in range(k):
            bit = 1 << p
            if not mask & bit:
                continue
            crosses, cost, perm, pvars = best[mask ^ bit]
            info = infos[p]
            if not _connected(info, pvars, mask == bit):
                crosses += 1
            entry = (crosses, cost + c_mask, perm + (p,))
            if chosen is None or entry < chosen:
                chosen = entry
        assert chosen is not None
        crosses, cost, perm = chosen
        best[mask] = (
            crosses, cost, perm,
            frozenset().union(*(infos[p].vars for p in perm)),
        )
    _, _, perm, _ = best[full]
    return perm, card(full)


def _greedy_sweep(
    infos: list["_AtomInfo"],
) -> tuple[tuple[int, ...], float]:
    """One-step-lookahead fallback for bodies past the DP cutoff:
    repeatedly append the atom minimising the next intermediate
    estimate (connected atoms first).  O(k^2) cardinality evaluations.
    """
    k = len(infos)
    remaining = list(range(k))
    perm: list[int] = []
    prefix: list[_AtomInfo] = []
    pvars: frozenset = frozenset()
    est = 0.0
    while remaining:
        chosen = None
        for j, p in enumerate(remaining):
            info = infos[p]
            rows = _card(prefix + [info])
            entry = (
                0 if _connected(info, pvars, not perm) else 1,
                rows, p, j,
            )
            if chosen is None or entry < chosen:
                chosen = entry
        _, est, p, j = chosen
        remaining.pop(j)
        perm.append(p)
        prefix.append(infos[p])
        pvars = pvars | infos[p].vars
    return tuple(perm), est


class AdaptiveState:
    """Per-fixpoint feedback loop for ``order="adaptive"``.

    The plan cache calls :meth:`expect` with the estimated rows of each
    plan it hands out; the fixpoint loop calls :meth:`observe_round`
    with the tuples the iteration actually produced.  A divergence
    beyond :data:`DIVERGENCE_FACTOR` (either direction, with +1
    smoothing so empty rounds compare cleanly) counts a misestimate
    and -- while the :data:`MAX_REPLANS` budget lasts -- bumps
    :attr:`epoch`, invalidating the cost-plan memo so the next round
    re-plans against current relation sizes.  Without a state attached
    (sideways passes, parallel workers) ``adaptive`` degrades to plain
    ``cost`` planning.
    """

    __slots__ = ("max_replans", "replans", "misestimates", "epoch",
                 "_expected")

    def __init__(self, max_replans: int = MAX_REPLANS) -> None:
        self.max_replans = max_replans
        self.replans = 0
        self.misestimates = 0
        self.epoch = 0
        self._expected = 0.0

    def expect(self, rows: float) -> None:
        """Accumulate one plan's estimated output into this round."""
        self._expected += rows

    def observe_round(self, produced: int, tracer=None) -> bool:
        """Compare one iteration's production against the estimate.

        Returns True when a re-plan was triggered (the caller's next
        round will plan fresh); always resets the per-round estimate
        accumulator.
        """
        expected = self._expected
        self._expected = 0.0
        lo = expected + 1.0
        hi = produced + 1.0
        if hi <= DIVERGENCE_FACTOR * lo and lo <= DIVERGENCE_FACTOR * hi:
            return False
        self.misestimates += 1
        if tracer is not None:
            tracer.count("plan_misestimates")
        if self.replans >= self.max_replans:
            return False
        self.replans += 1
        self.epoch += 1
        if tracer is not None:
            with tracer.span(
                "planner.replan",
                replan=self.replans,
                expected=int(expected),
                observed=int(produced),
            ):
                tracer.count("plan_replans")
        return True
