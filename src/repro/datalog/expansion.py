"""Procedure Expand (Figure 1 of the paper), bounded.

The *expansion* of a recursive predicate is the infinite set of
conjunctive queries ("strings") obtained by repeatedly applying the
recursive rules and closing off with the nonrecursive exit rule.  This
module generates the expansion breadth-first up to a depth bound, keeping
for every string its *derivation* ``D(s)`` -- the sequence of recursive
rule applications that produced it -- and which atoms each application
produced (``P_i(s)`` in Definition 2.6).

The expansion is the semantic ground truth of the paper: the recursively
defined relation is the union of the relations of the strings, and
Theorem 2.1 / Lemmas 3.1-3.3 all reason about strings.  The tests use
bounded expansions both to cross-check the evaluators on acyclic data and
to verify Theorem 2.1 via containment mappings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from .atoms import Atom
from .conjunctive import ConjunctiveQuery
from .errors import NotLinearError
from .programs import Definition
from .rules import Rule
from .terms import Term, Variable
from .unify import unify_atoms

__all__ = ["ExpansionString", "expand", "expansion_strings"]


@dataclass(frozen=True)
class ExpansionString:
    """One element of an expansion, with full provenance.

    Attributes
    ----------
    head:
        The argument terms of the original query instance of ``t`` (the
        distinguished variables, possibly with selection constants
        substituted).
    derivation:
        ``D(s)``: indices into ``definition.recursive_rules`` in the
        order the rules were applied (Definition 2.5).
    produced:
        ``produced[k]`` is the tuple of nonrecursive atoms added by the
        ``k``-th rule application (Definition 2.6's ``P``, per step).
    exit_index:
        Index into ``definition.exit_rules`` of the rule that closed the
        string.
    exit_atoms:
        The (instantiated) body of that exit rule -- the paper's ``t_0``
        instance.
    """

    head: tuple[Term, ...]
    derivation: tuple[int, ...]
    produced: tuple[tuple[Atom, ...], ...]
    exit_index: int
    exit_atoms: tuple[Atom, ...]

    @property
    def depth(self) -> int:
        """Number of recursive rule applications."""
        return len(self.derivation)

    def atoms(self) -> tuple[Atom, ...]:
        """All atoms of the string, recursive-production order then exit."""
        result: list[Atom] = []
        for group in self.produced:
            result.extend(group)
        result.extend(self.exit_atoms)
        return tuple(result)

    def query(self) -> ConjunctiveQuery:
        """The string as a conjunctive query over base predicates."""
        return ConjunctiveQuery(self.head, self.atoms())

    def project_derivation(
        self, classes: Sequence[frozenset[int]]
    ) -> tuple[tuple[int, ...], ...]:
        """``(D_1(s), ..., D_n(s))`` for the given rule-index classes.

        ``classes[i]`` is the set of recursive-rule indices in class
        ``e_{i+1}``; the projection keeps the subsequence of ``D(s)``
        whose entries fall in that class (Definition 2.5).
        """
        return tuple(
            tuple(step for step in self.derivation if step in cls)
            for cls in classes
        )

    def project_atoms(self, cls: frozenset[int]) -> tuple[Atom, ...]:
        """``P_i(s)``: atoms produced by applications of rules in ``cls``."""
        result: list[Atom] = []
        for step, group in zip(self.derivation, self.produced):
            if step in cls:
                result.extend(group)
        return tuple(result)

    def __str__(self) -> str:
        return " ".join(str(a) for a in self.atoms())


def _apply_rule(
    rule: Rule,
    predicate: str,
    instance: Atom,
    subscript: int,
) -> tuple[tuple[Atom, ...], Atom | None]:
    """Apply ``rule`` to a predicate instance, renaming apart first.

    Returns ``(produced nonrecursive atoms, new recursive instance)``;
    the new instance is ``None`` for exit rules.  This is lines 7/9 of
    Procedure Expand: variables of the rule get subscript ``subscript``,
    then the head is unified with ``instance``.
    """
    renamed = rule.rename(subscript)
    subst = unify_atoms(renamed.head, instance)
    if subst is None:
        raise NotLinearError(
            f"rule head {renamed.head} does not unify with instance "
            f"{instance}; is the program rectified?"
        )
    body = tuple(a.substitute(subst) for a in renamed.body)
    produced = tuple(a for a in body if a.predicate != predicate)
    recursive = [a for a in body if a.predicate == predicate]
    if len(recursive) > 1:
        raise NotLinearError(f"rule {rule} is not linear in {predicate}")
    return produced, (recursive[0] if recursive else None)


def expand(
    definition: Definition,
    query: Atom,
    max_depth: int,
) -> Iterator[ExpansionString]:
    """Generate the expansion of ``definition`` breadth-first.

    Parameters
    ----------
    definition:
        A linear recursive definition (recursive + exit rules).
    query:
        The initial instance of the recursive predicate; its arguments
        become the distinguished terms of every string.
    max_depth:
        Inclusive bound on the number of recursive rule applications.

    Yields strings in nondecreasing depth order: first the exit-rule-only
    strings (depth 0), then depth 1, and so on -- matching the iteration
    structure of Figure 1.
    """
    definition.check_linear()
    if query.predicate != definition.predicate:
        raise ValueError(
            f"query {query} does not match predicate {definition.predicate}"
        )

    # Fringe entries: (current t-instance, derivation, produced-so-far).
    fringe: list[tuple[Atom, tuple[int, ...], tuple[tuple[Atom, ...], ...]]]
    fringe = [(query, (), ())]
    subscript = 0
    for depth in range(max_depth + 1):
        new_fringe: list[
            tuple[Atom, tuple[int, ...], tuple[tuple[Atom, ...], ...]]
        ] = []
        for instance, derivation, produced in fringe:
            for exit_index, exit_rule in enumerate(definition.exit_rules):
                subscript += 1
                exit_atoms, rest = _apply_rule(
                    exit_rule, definition.predicate, instance, subscript
                )
                assert rest is None
                yield ExpansionString(
                    head=query.args,
                    derivation=derivation,
                    produced=produced,
                    exit_index=exit_index,
                    exit_atoms=exit_atoms,
                )
            if depth == max_depth:
                continue
            for rule_index, r in enumerate(definition.recursive_rules):
                subscript += 1
                new_atoms, new_instance = _apply_rule(
                    r, definition.predicate, instance, subscript
                )
                assert new_instance is not None
                new_fringe.append(
                    (
                        new_instance,
                        derivation + (rule_index,),
                        produced + (new_atoms,),
                    )
                )
        fringe = new_fringe
        if not fringe:
            break


def expansion_strings(
    definition: Definition, query: Atom, max_depth: int
) -> list[ExpansionString]:
    """Materialized :func:`expand` (convenience for tests)."""
    return list(expand(definition, query, max_depth))


def evaluate_by_expansion(
    definition: Definition,
    query: Atom,
    db,
    max_depth: int,
) -> frozenset[tuple]:
    """Evaluate a query as the union of bounded-expansion strings.

    The semantic ground truth of Section 2 ("the recursively defined
    relation is the union of the relations for the strings in the
    expansion"), executable: every string up to ``max_depth`` recursive
    applications is evaluated as a conjunctive query and the head
    tuples are unioned.

    Exponential in ``max_depth`` (the expansion has ``p^d`` strings per
    depth) and complete only when ``max_depth`` covers the database's
    longest relevant derivation -- this is a *reference* evaluator for
    tests and teaching, not a strategy.  On acyclic data a depth equal
    to the number of distinct constants always suffices (the splicing
    argument of Lemma 3.2).
    """
    answers: set[tuple] = set()
    for string in expand(definition, query, max_depth):
        answers |= string.query().evaluate(db)
    return frozenset(answers)


def string_for_derivation(
    definition: Definition,
    query: Atom,
    derivation: Sequence[int],
    exit_index: int = 0,
) -> ExpansionString:
    """The unique expansion string with the given derivation.

    Applies exactly the recursive rules named by ``derivation`` (indices
    into ``definition.recursive_rules``), in order, then closes with the
    chosen exit rule.  Used to validate answer justifications: Lemma 3.1
    says an answer with justification ``J(a)`` lies in the relation of
    the string whose derivation is ``J(a)``.
    """
    definition.check_linear()
    instance = query
    produced: tuple[tuple[Atom, ...], ...] = ()
    subscript = 0
    for step in derivation:
        subscript += 1
        new_atoms, new_instance = _apply_rule(
            definition.recursive_rules[step],
            definition.predicate,
            instance,
            subscript,
        )
        if new_instance is None:
            raise ValueError(
                f"rule {step} of {definition.predicate} is not recursive"
            )
        produced += (new_atoms,)
        instance = new_instance
    subscript += 1
    exit_atoms, rest = _apply_rule(
        definition.exit_rules[exit_index],
        definition.predicate,
        instance,
        subscript,
    )
    assert rest is None
    return ExpansionString(
        head=query.args,
        derivation=tuple(derivation),
        produced=produced,
        exit_index=exit_index,
        exit_atoms=exit_atoms,
    )
