"""Compiled join kernels: slot-based plans cached per (body, signature).

:func:`~repro.datalog.joins.evaluate_body` used to re-derive the join
order, re-split bound/free argument positions, and copy a full bindings
dict per extension on *every* rule application -- once per rule per
fixpoint round.  This module compiles a rule body once into a
:class:`JoinPlan` -- a flat sequence of atom steps with precomputed
index signatures (bound-position tuples), key templates, free-variable
slot assignments, and ``eq/2`` guards fused between steps -- and
executes it as an iterative nested loop over a flat register array.
Bindings dicts materialize only at the yield boundary, so the public
``evaluate_body`` contract is unchanged while the per-tuple cost drops
to a few tuple unpacks.

Plans are **pure functions of the body, the bound-variable signature,
and the atom sequence actually executed** -- never of tuple values:

* the greedy heuristic needs relation sizes only to break ties, so the
  ordering pass (:func:`greedy_permutation` -- one O(k^2) sweep per
  ``evaluate_body`` call, replacing the interpreter's per-recursion-node
  re-derivation) is separated from compilation: the cache is keyed on
  the resulting *permutation*, and a plan compiled on round 1 is still
  correct (and still the same plan) on round 40.  No invalidation
  machinery is needed, and because a permutation depends only on the
  size *ranks* of the body's relations -- which take O(1) distinct
  values per body over any fixpoint run -- ``plan_compiles`` stays O(1)
  per (body, signature) regardless of database size or round count;
* what *does* depend on the data -- which tuples an index bucket holds
  -- already lives inside :class:`~repro.datalog.database.Relation`'s
  lazy indexes, which are maintained incrementally on ``add``.

The module-level :data:`PLAN_CACHE` is shared by every evaluator;
callers that want deterministic ``plan_*`` counters (the bench harness)
call :meth:`PlanCache.clear` first.

One deliberate fast-path divergence from the old interpreter: a plan
resolves all body relations up front and yields nothing if any is
absent or empty.  That is sound for every evaluator here (a relation
empty at call start cannot contribute a match, and fixpoint loops only
grow relations via *completed* matches), but it means a consumer that
grows a relation from empty *while* iterating the generator will not
see the late tuples -- the interpreted path would have, one recursion
level at a time.  No caller does this.
"""

from __future__ import annotations

import threading
from typing import Iterator, Mapping, Optional, Sequence

from ..stats import EvaluationStats
from .atoms import Atom
from .database import Database, Relation
from .terms import Constant, ConstValue, Variable

__all__ = [
    "EQ",
    "ORDERS",
    "JoinPlan",
    "PlanCache",
    "PLAN_CACHE",
    "compile_join_plan",
    "greedy_permutation",
]

#: Recognised join-order strategies.  ``greedy`` and ``left_to_right``
#: are the PR 4 heuristics; ``cost`` runs the selectivity-aware planner
#: (:mod:`repro.datalog.planner`) and ``adaptive`` is ``cost`` plus
#: mid-fixpoint re-planning driven by an
#: :class:`~repro.datalog.planner.AdaptiveState`.
ORDERS = ("greedy", "left_to_right", "cost", "adaptive")

#: Reserved built-in equality predicate, produced by rectification
#: (Section 2: repeated head variables and head constants "can be handled
#: by adding equalities to the rule bodies").  ``eq(X, Y)`` filters when
#: both sides are bound and assigns when exactly one is.
EQ = "eq"

# Guard opcodes (compiled eq/2 atoms).  Operand sources are encoded as
# (is_slot, value): a register index when is_slot, a constant otherwise.
_FILTER = 0  # (0, a_is_slot, a, b_is_slot, b) -- pass iff values equal
_ASSIGN = 1  # (1, src_is_slot, src, dst_slot) -- regs[dst] = value

_SENTINEL = object()


class JoinPlan:
    """A compiled join kernel for one (body, bound-signature, order).

    Immutable once built; see :func:`compile_join_plan`.  ``steps`` is a
    tuple of ``(predicate, positions, key_sources, writes, checks,
    guards)`` records:

    ``positions``
        bound argument positions, the index signature passed to
        :meth:`Relation.lookup`;
    ``key_sources``
        per bound position, ``(is_slot, slot_or_const)`` -- how to build
        the lookup key from the register file;
    ``writes``
        ``(position, slot)`` for the first occurrence of each free
        variable in the atom;
    ``checks``
        ``(position, slot)`` for repeated free variables within the
        atom (slot was written earlier in the same step);
    ``guards``
        compiled ``eq/2`` atoms scheduled between this step and the
        next: filters and assigns over the register file.
    """

    __slots__ = (
        "body",
        "bound_vars",
        "order",
        "n_slots",
        "preload",
        "pre_guards",
        "steps",
        "outputs",
        "always_empty",
        # steps split into parallel tuples, saving an unpack per probe
        "_preds",
        "_positions",
        "_keysrc",
        "_writes",
        "_checks",
        "_guards",
        # variable -> register slot, and cached projection templates
        "_slot_of",
        "_templates",
    )

    def __init__(
        self,
        body: tuple[Atom, ...],
        bound_vars: frozenset[Variable],
        order: str,
        n_slots: int,
        preload: tuple[tuple[Variable, int], ...],
        pre_guards: tuple[tuple, ...],
        steps: tuple[tuple, ...],
        outputs: tuple[tuple[Variable, int], ...],
        always_empty: bool,
        slot_of: Optional[dict[Variable, int]] = None,
    ) -> None:
        self.body = body
        self.bound_vars = bound_vars
        self.order = order
        self.n_slots = n_slots
        self.preload = preload
        self.pre_guards = pre_guards
        self.steps = steps
        self.outputs = outputs
        self.always_empty = always_empty
        self._preds = tuple(st[0] for st in steps)
        self._positions = tuple(st[1] for st in steps)
        self._keysrc = tuple(st[2] for st in steps)
        self._writes = tuple(st[3] for st in steps)
        self._checks = tuple(st[4] for st in steps)
        self._guards = tuple(st[5] for st in steps)
        self._slot_of = dict(slot_of) if slot_of else {}
        self._templates: dict[tuple, Optional[tuple]] = {}

    def atom_order(self) -> tuple[str, ...]:
        """Predicates in execution order (for tests and plan dumps)."""
        return tuple(st[0] for st in self.steps)

    def execute(
        self,
        db: Database,
        initial_bindings: Optional[Mapping[Variable, ConstValue]],
        stats: Optional[EvaluationStats] = None,
        tracer=None,
    ) -> Iterator[dict[Variable, ConstValue]]:
        """Enumerate satisfying bindings dicts against ``db``.

        Lazy: relations are probed as the consumer advances, and index
        buckets are iterated live (tuples added to an already non-empty
        relation mid-iteration are visible, exactly as interpreted).
        """
        regs: list = [None] * self.n_slots
        base_items = tuple(initial_bindings.items()) if initial_bindings \
            else ()
        outputs = self.outputs
        for _ in self._solutions(regs, db, initial_bindings, stats, tracer):
            out = dict(base_items)
            for var, s in outputs:
                out[var] = regs[s]
            yield out

    def execute_project(
        self,
        output: tuple,
        db: Database,
        initial_bindings: Optional[Mapping[Variable, ConstValue]] = None,
        stats: Optional[EvaluationStats] = None,
        tracer=None,
    ) -> Iterator[tuple]:
        """Like ``execute`` followed by ``instantiate_args(output, ...)``
        -- but the ground tuples are built straight from the register
        file, skipping the bindings dict (and its per-key hashing)
        entirely.  ``output`` is a term sequence, typically a rule
        head's args.
        """
        template = self._template_for(output)
        if template is None:
            # Some output term has no register (e.g. a variable bound
            # only in initial_bindings, outside the body): take the
            # dict path so KeyError semantics match instantiate_args.
            from .joins import instantiate_args
            for b in self.execute(db, initial_bindings, stats, tracer):
                yield instantiate_args(output, b)
            return
        regs: list = [None] * self.n_slots
        for _ in self._solutions(regs, db, initial_bindings, stats, tracer):
            yield tuple(regs[s] if f else s for f, s in template)

    def _template_for(self, output: tuple) -> Optional[tuple]:
        """(is_slot, slot_or_const) per output term; None -> fallback."""
        tpl = self._templates.get(output, _SENTINEL)
        if tpl is _SENTINEL:
            entries = []
            slot_of = self._slot_of
            for term in output:
                if isinstance(term, Constant):
                    entries.append((False, term.value))
                else:
                    s = slot_of.get(term)
                    if s is None:
                        entries = None
                        break
                    entries.append((True, s))
            tpl = tuple(entries) if entries is not None else None
            self._templates[output] = tpl
        return tpl

    def _solutions(
        self,
        regs: list,
        db: Database,
        initial_bindings: Optional[Mapping[Variable, ConstValue]],
        stats: Optional[EvaluationStats],
        tracer=None,
    ) -> Iterator[None]:
        """Yield once per satisfying assignment, leaving it in ``regs``."""
        if self.always_empty:
            return
        if self.preload:
            for var, s in self.preload:
                regs[s] = initial_bindings[var]  # type: ignore[index]
        for g in self.pre_guards:
            if g[0] == _FILTER:
                if (regs[g[2]] if g[1] else g[2]) != \
                        (regs[g[4]] if g[3] else g[4]):
                    return
            else:
                regs[g[3]] = regs[g[2]] if g[1] else g[2]

        n = len(self._preds)
        relation = db.relation
        rels: list[Relation] = []
        for pred in self._preds:
            rel = relation(pred)
            if rel is None or not rel:
                return  # empty-body-relation fast path (see module doc)
            rels.append(rel)

        if n == 0:
            yield None
            return

        count = tracer.count if tracer is not None else None
        positions = self._positions
        keysrc = self._keysrc
        writes = self._writes
        checks = self._checks
        guards = self._guards

        def probe(d: int) -> list:
            key = tuple((regs[v] if f else v) for f, v in keysrc[d])
            cands = rels[d].lookup(positions[d], key, tracer)
            if stats is not None:
                stats.bump_examined(len(cands))
            if count is not None:
                count("atom_lookups")
                count("tuples_examined", len(cands))
            return cands

        last = n - 1
        w_last = writes[last]
        c_last = checks[last]
        g_last = guards[last]

        if n == 1:
            for fact in probe(0):
                for i, s in w_last:
                    regs[s] = fact[i]
                ok = True
                for i, s in c_last:
                    if fact[i] != regs[s]:
                        ok = False
                        break
                if not ok:
                    continue
                if count is not None:
                    count("bindings_out")
                for g in g_last:
                    if g[0] == _FILTER:
                        if (regs[g[2]] if g[1] else g[2]) != \
                                (regs[g[4]] if g[3] else g[4]):
                            ok = False
                            break
                    else:
                        regs[g[3]] = regs[g[2]] if g[1] else g[2]
                if not ok:
                    continue
                yield None
            return

        # Levels 0..n-2 run on an explicit iterator stack; the innermost
        # level is a plain for-loop so the bulk of the candidate tuples
        # iterate at C speed.
        inner = last - 1
        iters: list = [None] * last
        iters[0] = iter(probe(0))
        depth = 0
        sentinel = _SENTINEL
        while depth >= 0:
            fact = next(iters[depth], sentinel)
            if fact is sentinel:
                depth -= 1
                continue
            for i, s in writes[depth]:
                regs[s] = fact[i]
            ok = True
            for i, s in checks[depth]:  # repeated-variable checks
                if fact[i] != regs[s]:
                    ok = False
                    break
            if not ok:
                continue
            if count is not None:
                count("bindings_out")
            for g in guards[depth]:  # fused eq guards
                if g[0] == _FILTER:
                    if (regs[g[2]] if g[1] else g[2]) != \
                            (regs[g[4]] if g[3] else g[4]):
                        ok = False
                        break
                else:
                    regs[g[3]] = regs[g[2]] if g[1] else g[2]
            if not ok:
                continue
            if depth != inner:
                depth += 1
                iters[depth] = iter(probe(depth))
                continue
            for fact in probe(last):
                for i, s in w_last:
                    regs[s] = fact[i]
                ok = True
                for i, s in c_last:
                    if fact[i] != regs[s]:
                        ok = False
                        break
                if not ok:
                    continue
                if count is not None:
                    count("bindings_out")
                for g in g_last:
                    if g[0] == _FILTER:
                        if (regs[g[2]] if g[1] else g[2]) != \
                                (regs[g[4]] if g[3] else g[4]):
                            ok = False
                            break
                    else:
                        regs[g[3]] = regs[g[2]] if g[1] else g[2]
                if not ok:
                    continue
                yield None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"JoinPlan({' & '.join(map(str, self.body))}, "
            f"bound={sorted(v.name for v in self.bound_vars)}, "
            f"order={self.order!r}, steps={self.atom_order()})"
        )


def greedy_permutation(
    body: tuple[Atom, ...],
    bound_vars: frozenset[Variable],
    db: Optional[Database] = None,
) -> tuple[int, ...]:
    """Greedy execution order as a permutation of body positions.

    The interpreter's heuristic -- most bound argument positions first,
    smaller relation on ties -- computed once per call instead of once
    per recursion node.  How many positions of an atom are bound depends
    only on *which* variables are bound (never on their values), so for
    a fixed database-size ranking the permutation is a pure function of
    (body, signature).  An unready ``eq`` (no side bound yet) sorts
    last and is only ever picked when nothing can bind it -- the
    unsafe-rule case, which compiles to the same ValueError the
    interpreter raises.  With ``db=None`` all sizes read 0 and ties
    fall back to body position.
    """
    remaining = list(range(len(body)))
    bound = set(bound_vars)
    ordered: list[int] = []
    while remaining:
        best = 0
        best_key = None
        for j, idx in enumerate(remaining):
            a = body[idx]
            nb = 0
            for t in a.args:
                if isinstance(t, Constant) or t in bound:
                    nb += 1
            if a.predicate == EQ:
                key = (0 if nb else 1, -nb, 0, idx)
            else:
                rel = db.relation(a.predicate) if db is not None else None
                key = (0, -nb, len(rel) if rel is not None else 0, idx)
            if best_key is None or key < best_key:
                best_key = key
                best = j
        idx = remaining.pop(best)
        ordered.append(idx)
        for t in body[idx].args:
            if isinstance(t, Variable):
                bound.add(t)
    return tuple(ordered)


def _order_left_to_right(
    body: tuple[Atom, ...], bound_vars: frozenset[Variable]
) -> list[Atom]:
    """Given order, except unready ``eq`` atoms wait for a binder.

    Rectification may emit ``eq(V2, V1)`` *before* the atom that binds
    ``V1``; deferring it to the earliest point where a side is bound
    preserves left-to-right semantics (eq atoms are pure filters --
    commuting one later never changes the result set) instead of
    crashing.  Atoms that never become ready fall through to the end,
    where compilation raises the interpreter's unsafe-rule ValueError.
    """
    bound = set(bound_vars)

    def ready(a: Atom) -> bool:
        for t in a.args:
            if isinstance(t, Constant) or t in bound:
                return True
        return False

    ordered: list[Atom] = []
    pending: list[Atom] = []

    def place(a: Atom) -> None:
        ordered.append(a)
        for t in a.args:
            if isinstance(t, Variable):
                bound.add(t)

    for a in body:
        if a.predicate == EQ and a.arity == 2 and not ready(a):
            pending.append(a)
            continue
        place(a)
        progressed = True
        while progressed and pending:
            progressed = False
            for k, p in enumerate(pending):
                if ready(p):
                    place(pending.pop(k))
                    progressed = True
                    break
    ordered.extend(pending)  # still unready: unsafe, raises at compile
    return ordered


def _defer_eq_indices(
    body: tuple[Atom, ...],
    seq: Sequence[int],
    bound_vars: frozenset[Variable],
) -> tuple[int, ...]:
    """Index-level :func:`_order_left_to_right`: reorder ``seq`` so each
    unready ``eq`` waits for its earliest binder.  Used by the cost
    orders, whose planner ranks only the non-eq atoms and leaves eq
    placement to the same deferral semantics PR 4 fixed.
    """
    bound = set(bound_vars)

    def ready(a: Atom) -> bool:
        for t in a.args:
            if isinstance(t, Constant) or t in bound:
                return True
        return False

    ordered: list[int] = []
    pending: list[int] = []

    def place(i: int) -> None:
        ordered.append(i)
        for t in body[i].args:
            if isinstance(t, Variable):
                bound.add(t)

    for i in seq:
        a = body[i]
        if a.predicate == EQ and a.arity == 2 and not ready(a):
            pending.append(i)
            continue
        place(i)
        progressed = True
        while progressed and pending:
            progressed = False
            for k, p in enumerate(pending):
                if ready(body[p]):
                    place(pending.pop(k))
                    progressed = True
                    break
    ordered.extend(pending)  # still unready: unsafe, raises at compile
    return tuple(ordered)


def _cost_sequence(
    body: tuple[Atom, ...],
    bound_vars: frozenset[Variable],
    db: Optional[Database],
) -> tuple[tuple[int, ...], float]:
    """Full cost-based execution permutation plus the row estimate.

    The planner orders the non-eq atoms; eq atoms enter in body order
    and are deferred to their earliest ready point, exactly as
    ``order="left_to_right"`` would.
    """
    from .planner import cost_permutation

    rest, est = cost_permutation(body, bound_vars, db)
    eq_first = [i for i, a in enumerate(body) if a.predicate == EQ]
    perm = _defer_eq_indices(body, eq_first + list(rest), bound_vars)
    return perm, est


def compile_join_plan(
    atoms: Sequence[Atom],
    bound_vars: frozenset[Variable] = frozenset(),
    order: str = "greedy",
    db: Optional[Database] = None,
) -> JoinPlan:
    """Compile a conjunction into a :class:`JoinPlan`.

    ``bound_vars`` is the signature: the body variables the caller will
    supply in ``initial_bindings``.  For ``order="greedy"`` the atom
    sequence comes from :func:`greedy_permutation` (pass ``db`` for the
    size tiebreak); for ``order="cost"`` / ``"adaptive"`` from the
    selectivity-aware planner (``db`` supplies the statistics -- without
    one, every size reads 0 and the order degrades to body position).
    Raises the same ``ValueError`` as the interpreter for an ``eq``
    atom whose sides can never be bound (unsafe rule) or whose arity is
    not 2.
    """
    if order not in ORDERS:
        raise ValueError(f"unknown join order {order!r}")
    body = tuple(atoms)
    if order == "greedy":
        perm = greedy_permutation(body, bound_vars, db)
        ordered = [body[i] for i in perm]
    elif order in ("cost", "adaptive"):
        perm, _ = _cost_sequence(body, bound_vars, db)
        ordered = [body[i] for i in perm]
    else:
        ordered = _order_left_to_right(body, bound_vars)
    return _compile_sequence(body, bound_vars, order, ordered)


def _compile_sequence(
    body: tuple[Atom, ...],
    bound_vars: frozenset[Variable],
    order: str,
    ordered: list[Atom],
) -> JoinPlan:
    """Compile an already-ordered atom sequence into a :class:`JoinPlan`."""
    slot_of: dict[Variable, int] = {}
    preload: list[tuple[Variable, int]] = []
    bound: set[Variable] = set(bound_vars)
    always_empty = False

    def slot(v: Variable) -> int:
        s = slot_of.get(v)
        if s is None:
            s = len(slot_of)
            slot_of[v] = s
            if v in bound_vars:
                preload.append((v, s))
        return s

    pre_guards: list[tuple] = []
    raw_steps: list[list] = []
    guard_sink = pre_guards  # eq atoms attach to the preceding step

    for a in ordered:
        if a.predicate == EQ:
            if a.arity != 2:
                raise ValueError(f"built-in {EQ} requires arity 2, got {a}")
            left, right = a.args
            l_const = isinstance(left, Constant)
            r_const = isinstance(right, Constant)
            l_known = l_const or left in bound
            r_known = r_const or right in bound
            if l_known and r_known:
                if l_const and r_const:
                    if left.value != right.value:
                        always_empty = True
                    continue  # constant-folded either way
                guard_sink.append((
                    _FILTER,
                    not l_const, left.value if l_const else slot(left),
                    not r_const, right.value if r_const else slot(right),
                ))
            elif l_known:
                dst = slot(right)
                bound.add(right)  # type: ignore[arg-type]
                guard_sink.append((
                    _ASSIGN,
                    not l_const, left.value if l_const else slot(left),
                    dst,
                ))
            elif r_known:
                dst = slot(left)
                bound.add(left)  # type: ignore[arg-type]
                guard_sink.append((
                    _ASSIGN,
                    not r_const, right.value if r_const else slot(right),
                    dst,
                ))
            else:
                raise ValueError(
                    f"cannot evaluate {a}: both sides unbound (unsafe rule?)"
                )
            continue

        positions: list[int] = []
        key_sources: list[tuple] = []
        writes: list[tuple[int, int]] = []
        checks: list[tuple[int, int]] = []
        local: dict[Variable, int] = {}
        for i, term in enumerate(a.args):
            if isinstance(term, Constant):
                positions.append(i)
                key_sources.append((False, term.value))
            elif term in bound:
                positions.append(i)
                key_sources.append((True, slot(term)))
            elif term in local:
                checks.append((i, local[term]))
            else:
                s = slot(term)
                local[term] = s
                writes.append((i, s))
        bound.update(local)
        guards: list[tuple] = []
        raw_steps.append([
            a.predicate,
            tuple(positions),
            tuple(key_sources),
            tuple(writes),
            tuple(checks),
            guards,
        ])
        guard_sink = guards

    steps = tuple(
        (p, pos, ks, w, c, tuple(g)) for p, pos, ks, w, c, g in raw_steps
    )
    outputs = tuple(
        (v, s) for v, s in slot_of.items() if v not in bound_vars
    )
    return JoinPlan(
        body=body,
        bound_vars=bound_vars,
        order=order,
        n_slots=len(slot_of),
        preload=tuple(preload),
        pre_guards=tuple(pre_guards),
        steps=steps,
        outputs=outputs,
        always_empty=always_empty,
        slot_of=slot_of,
    )


class PlanCache:
    """FIFO-bounded, thread-safe cache of :class:`JoinPlan` objects.

    Keyed by ``(body atoms, bound-variable signature, atom sequence)``
    -- everything a plan is a function of, so entries can never be
    stale (plans are value-independent; see the module docstring).
    ``hits`` / ``misses`` / ``compiles`` mirror the tracer counters
    ``plan_cache_hits`` / ``plan_cache_misses`` / ``plan_compiles``
    for callers without a tracer.

    The module-global :data:`PLAN_CACHE` is shared by every evaluator in
    the process, including the query service's worker threads, so the
    whole miss/compile/evict sequence and the counters run under one
    lock.  Compilation itself happens outside the lock (it is pure and
    at worst duplicated by two racing threads -- the second result wins,
    counted as one extra compile, never a dropped entry).
    """

    __slots__ = ("maxsize", "hits", "misses", "compiles", "evictions",
                 "orders", "_plans", "_order_memo", "_lock")

    def __init__(self, maxsize: int = 4096) -> None:
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.compiles = 0
        self.evictions = 0
        self.orders: dict[str, int] = {}
        self._plans: dict[tuple, JoinPlan] = {}
        self._order_memo: dict[tuple, tuple[tuple[int, ...], float]] = {}
        self._lock = threading.Lock()

    def plan_for(
        self,
        body: tuple[Atom, ...],
        bound_vars: frozenset[Variable],
        order: str,
        db: Optional[Database] = None,
        tracer=None,
        adaptive=None,
    ) -> JoinPlan:
        """The cached plan for this key, compiling on first sight.

        For ``order="greedy"`` the cheap per-call ordering pass runs
        first and the permutation joins the key, so a size-rank change
        mid-run transparently selects (or compiles) the matching plan
        rather than executing a stale order.

        The cost orders go through a second, cheaper memo first: the
        chosen permutation is remembered per ``(body, signature,
        epoch, log-scale size signature)``, and only the *permutation*
        keys the compiled-plan dict -- so relations growing across
        fixpoint rounds re-plan O(log n) times but recompile only when
        the chosen order actually changes, keeping ``plan_compiles``
        O(1) per body.  ``adaptive`` is the optional
        :class:`~repro.datalog.planner.AdaptiveState` of the enclosing
        fixpoint (``order="adaptive"``): its epoch joins the memo key
        (a re-plan invalidates every memoised order) and the row
        estimate is accumulated for the divergence check.
        """
        est: Optional[float] = None
        if order in ("cost", "adaptive"):
            from .planner import size_signature

            epoch = adaptive.epoch if adaptive is not None else 0
            memo_key = (body, bound_vars, epoch,
                        size_signature(body, db))
            with self._lock:
                cached = self._order_memo.get(memo_key)
            if cached is None:
                cached = _cost_sequence(body, bound_vars, db)
                with self._lock:
                    while len(self._order_memo) >= self.maxsize:
                        del self._order_memo[next(iter(self._order_memo))]
                    self._order_memo[memo_key] = cached
            perm, est = cached
            if adaptive is not None:
                adaptive.expect(est)
            if tracer is not None:
                # Floored at 1 so even a sub-row estimate marks the
                # profile as planner-driven (the profiler's
                # estimate-vs-observed section gates on this counter).
                tracer.count("plan_est_rows", max(1, int(est)))
            # Both cost orders share compiled plans: the permutation is
            # the whole identity of the executed sequence.
            key = (body, bound_vars, "cost", perm)
        elif order == "greedy":
            # The greedy walk only ever *compares* sizes, so its outcome
            # is a function of the size-sorted position order (stable
            # argsort) plus which relations are empty -- both O(1)
            # distinct values per body over a run, and far cheaper to
            # key on than re-running the walk every call.
            if db is not None:
                sizes = []
                for a in body:
                    rel = (
                        db.relation(a.predicate)
                        if a.predicate != EQ else None
                    )
                    sizes.append(len(rel) if rel is not None else 0)
                rank = tuple(sorted(range(len(body)),
                                    key=sizes.__getitem__))
                zeros = tuple(s == 0 for s in sizes)
                key = (body, bound_vars, rank, zeros)
            else:
                key = (body, bound_vars, "greedy")
        else:
            key = (body, bound_vars, order)
        with self._lock:
            self.orders[order] = self.orders.get(order, 0) + 1
            plan = self._plans.get(key)
            if plan is not None:
                self.hits += 1
                if tracer is not None:
                    tracer.count("plan_cache_hits")
                return plan
            self.misses += 1
        if tracer is not None:
            tracer.count("plan_cache_misses")
        if order in ("cost", "adaptive"):
            plan = _compile_sequence(body, bound_vars, "cost",
                                     [body[i] for i in key[3]])
        elif order == "greedy":
            perm = greedy_permutation(body, bound_vars, db)
            plan = _compile_sequence(body, bound_vars, order,
                                     [body[i] for i in perm])
        else:
            plan = _compile_sequence(
                body, bound_vars, order,
                _order_left_to_right(body, bound_vars),
            )
        if tracer is not None:
            tracer.count("plan_compiles")
        with self._lock:
            self.compiles += 1
            # Evict strictly *before* inserting, and only entries other
            # than ours: the insert below always lands, so the entry
            # just compiled can never be the one evicted.
            while len(self._plans) >= self.maxsize:  # FIFO eviction
                oldest = next(iter(self._plans))
                if oldest == key:  # pragma: no cover - defensive
                    break
                del self._plans[oldest]
                self.evictions += 1
            self._plans[key] = plan
        return plan

    def clear(self) -> None:
        """Drop all plans and zero the counters."""
        with self._lock:
            self._plans.clear()
            self._order_memo.clear()
            self.hits = 0
            self.misses = 0
            self.compiles = 0
            self.evictions = 0
            self.orders = {}

    def stats(self) -> dict:
        """Counter snapshot: ``{size, hits, misses, compiles,
        evictions, orders}`` -- ``orders`` is the ``plan_for`` call
        count per requested join order (the running order mix).
        """
        with self._lock:
            return {
                "size": len(self._plans),
                "hits": self.hits,
                "misses": self.misses,
                "compiles": self.compiles,
                "evictions": self.evictions,
                "orders": dict(self.orders),
            }

    def __len__(self) -> int:
        return len(self._plans)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PlanCache(size={len(self._plans)}, hits={self.hits}, "
            f"misses={self.misses}, compiles={self.compiles})"
        )


#: The process-wide default cache, shared by every evaluator so plans
#: survive across fixpoint rounds, strategies, and queries.
PLAN_CACHE = PlanCache()
