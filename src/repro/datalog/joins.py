"""Index-backed join evaluation of conjunctive rule bodies.

The single entry point :func:`evaluate_body` enumerates all substitutions
(variable -> constant value) that satisfy a conjunction of atoms against
a :class:`~repro.datalog.database.Database`.  It is the inner loop of
every evaluator in this package: naive, semi-naive, magic, counting, and
the Separable carry loops all reduce to body evaluations.

Two atom orders are offered:

``"left_to_right"``
    Evaluate atoms exactly in the given order -- this matches the paper's
    left-to-right evaluation of expansion strings (Section 3.4) and is
    what the proofs reason about.

``"greedy"``
    At each step pick the atom with the most bound argument positions
    (ties broken by smaller relation).  A standard, simple join-order
    heuristic; results are identical, only the work differs.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Optional, Sequence

from ..stats import EvaluationStats
from .atoms import Atom
from .database import Database
from .terms import Constant, ConstValue, Variable

__all__ = ["evaluate_body", "instantiate_args", "Bindings", "EQ"]

#: Evaluators bind variables directly to raw constant values.
Bindings = dict[Variable, ConstValue]

#: Reserved built-in equality predicate, produced by rectification
#: (Section 2: repeated head variables and head constants "can be handled
#: by adding equalities to the rule bodies").  ``eq(X, Y)`` filters when
#: both sides are bound and assigns when exactly one is.
EQ = "eq"


def _eq_lookup(
    a: Atom,
    bindings: Mapping[Variable, ConstValue],
) -> Iterator[Bindings]:
    """Evaluate a built-in ``eq/2`` atom under ``bindings``."""
    if a.arity != 2:
        raise ValueError(f"built-in {EQ} requires arity 2, got {a}")
    left, right = a.args
    left_value = left.value if isinstance(left, Constant) else bindings.get(left)
    right_value = (
        right.value if isinstance(right, Constant) else bindings.get(right)
    )
    if left_value is not None and right_value is not None:
        if left_value == right_value:
            yield dict(bindings)
        return
    if left_value is None and right_value is None:
        raise ValueError(
            f"cannot evaluate {a}: both sides unbound (unsafe rule?)"
        )
    new = dict(bindings)
    if left_value is None:
        new[left] = right_value  # type: ignore[assignment]
    else:
        new[right] = left_value  # type: ignore[index]
    yield new


def _atom_lookup(
    db: Database,
    a: Atom,
    bindings: Mapping[Variable, ConstValue],
    stats: Optional[EvaluationStats],
    tracer=None,
) -> Iterator[Bindings]:
    """Yield extensions of ``bindings`` that satisfy atom ``a``.

    Uses a hash index on the currently-bound positions of ``a`` so that
    only matching tuples are fetched; the remaining (free) positions are
    checked tuple by tuple, handling repeated variables within the atom.
    """
    rel = db.relation(a.predicate)
    if rel is None or len(rel) == 0:
        return

    bound_positions: list[int] = []
    key: list[ConstValue] = []
    free: list[tuple[int, Variable]] = []
    for i, term in enumerate(a.args):
        if isinstance(term, Constant):
            bound_positions.append(i)
            key.append(term.value)
        else:
            value = bindings.get(term)
            if value is not None:
                bound_positions.append(i)
                key.append(value)
            else:
                free.append((i, term))

    candidates = rel.lookup(tuple(bound_positions), tuple(key),
                            tracer=tracer)
    if stats is not None:
        stats.bump_examined(len(candidates))
    if tracer is not None:
        tracer.count("atom_lookups")
        tracer.count("tuples_examined", len(candidates))
    for fact in candidates:
        new = dict(bindings)
        ok = True
        for i, var in free:
            value = fact[i]
            prior = new.get(var)
            if prior is None:
                new[var] = value
            elif prior != value:  # repeated variable within the atom
                ok = False
                break
        if ok:
            if tracer is not None:
                tracer.count("bindings_out")
            yield new


def _choose_next(
    remaining: list[Atom],
    bindings: Mapping[Variable, ConstValue],
    db: Database,
) -> int:
    """Index of the most-constrained remaining atom (greedy heuristic)."""
    best_index = 0
    best_key: tuple[int, int, int] | None = None
    for idx, a in enumerate(remaining):
        bound = 0
        for term in a.args:
            if isinstance(term, Constant) or term in bindings:
                bound += 1
        if a.predicate == EQ:
            # A ready eq atom (>= 1 side bound) is a free filter/assign;
            # an unready one must wait for other atoms to bind a side.
            ready = 0 if bound >= 1 else 1
            key = (ready, -bound, 0)
        else:
            rel = db.relation(a.predicate)
            size = len(rel) if rel is not None else 0
            key = (0, -bound, size)
        if best_key is None or key < best_key:
            best_key = key
            best_index = idx
    return best_index


def evaluate_body(
    db: Database,
    atoms: Sequence[Atom],
    initial_bindings: Optional[Mapping[Variable, ConstValue]] = None,
    stats: Optional[EvaluationStats] = None,
    order: str = "greedy",
    tracer=None,
) -> Iterator[Bindings]:
    """Enumerate substitutions satisfying every atom in ``atoms``.

    Parameters
    ----------
    db:
        Source of facts for every predicate mentioned in ``atoms``.
    atoms:
        The conjunction to satisfy.  An empty conjunction yields exactly
        the initial bindings (vacuous truth).
    initial_bindings:
        Pre-bound variables (e.g. selection constants pushed in).
    stats:
        Optional accumulator; base tuples fetched are counted as
        ``tuples_examined``.
    order:
        ``"greedy"`` or ``"left_to_right"`` (see module docstring).
    tracer:
        Optional :class:`~repro.observability.Tracer`; receives
        per-atom lookup counts, tuples fetched, and the join fan-out
        (``bindings_out``).  ``None`` (the default) costs one pointer
        comparison per lookup.
    """
    if order not in ("greedy", "left_to_right"):
        raise ValueError(f"unknown join order {order!r}")
    start: Bindings = dict(initial_bindings) if initial_bindings else {}
    if not atoms:
        yield start
        return

    def recurse(remaining: list[Atom], bindings: Bindings) -> Iterator[Bindings]:
        if not remaining:
            yield bindings
            return
        if order == "greedy":
            idx = _choose_next(remaining, bindings, db)
        else:
            idx = 0
        chosen = remaining[idx]
        rest = remaining[:idx] + remaining[idx + 1:]
        if chosen.predicate == EQ:
            matches = _eq_lookup(chosen, bindings)
        else:
            matches = _atom_lookup(db, chosen, bindings, stats, tracer)
        for extended in matches:
            yield from recurse(rest, extended)

    yield from recurse(list(atoms), start)


def instantiate_args(
    args: Sequence, bindings: Mapping[Variable, ConstValue]
) -> tuple[ConstValue, ...]:
    """Ground a term sequence under ``bindings`` into a fact tuple.

    Raises ``KeyError`` if some variable is unbound -- for safe rules
    evaluated over their full body this cannot happen.
    """
    values: list[ConstValue] = []
    for term in args:
        if isinstance(term, Constant):
            values.append(term.value)
        else:
            values.append(bindings[term])
    return tuple(values)
