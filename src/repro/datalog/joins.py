"""Index-backed join evaluation of conjunctive rule bodies.

The single entry point :func:`evaluate_body` enumerates all substitutions
(variable -> constant value) that satisfy a conjunction of atoms against
a :class:`~repro.datalog.database.Database`.  It is the inner loop of
every evaluator in this package: naive, semi-naive, magic, counting, and
the Separable carry loops all reduce to body evaluations.

Bodies are executed through compiled :class:`~repro.datalog.plan_cache.
JoinPlan` kernels cached in the module-wide
:data:`~repro.datalog.plan_cache.PLAN_CACHE` -- the atom order, index
signatures, and variable slots are derived once per (body,
bound-variable signature, order) and reused across every fixpoint
round.  The pre-existing interpreter survives as
:func:`evaluate_body_interpreted`: same contract, no compilation, used
as the differential reference for the compiled path.

Two atom orders are offered:

``"left_to_right"``
    Evaluate atoms exactly in the given order -- this matches the paper's
    left-to-right evaluation of expansion strings (Section 3.4) and is
    what the proofs reason about.  ``eq/2`` atoms whose sides are not
    yet bound are deferred until another atom binds a side (they are
    pure filters, so commuting them later never changes the result set).

``"greedy"``
    At each step pick the atom with the most bound argument positions
    (ties broken by smaller relation, then body position).  A standard,
    simple join-order heuristic; results are identical, only the work
    differs.  The compiled path derives the order once per call
    (``plan_cache.greedy_permutation``); the interpreted path
    re-derives it per recursion node.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Optional, Sequence

from ..stats import EvaluationStats
from .atoms import Atom
from .database import Database
from .plan_cache import EQ, ORDERS, PLAN_CACHE
from .terms import Constant, ConstValue, Variable

__all__ = [
    "evaluate_body",
    "evaluate_body_project",
    "evaluate_body_interpreted",
    "instantiate_args",
    "Bindings",
    "EQ",
]

#: Evaluators bind variables directly to raw constant values.
Bindings = dict[Variable, ConstValue]

_EMPTY_SIG: frozenset[Variable] = frozenset()


def evaluate_body(
    db: Database,
    atoms: Sequence[Atom],
    initial_bindings: Optional[Mapping[Variable, ConstValue]] = None,
    stats: Optional[EvaluationStats] = None,
    order: str = "greedy",
    tracer=None,
    adaptive=None,
) -> Iterator[Bindings]:
    """Enumerate substitutions satisfying every atom in ``atoms``.

    Compiles (or fetches from :data:`~repro.datalog.plan_cache.PLAN_CACHE`)
    a :class:`~repro.datalog.plan_cache.JoinPlan` for the body and the
    bound-variable signature of ``initial_bindings``, then runs it.

    Parameters
    ----------
    db:
        Source of facts for every predicate mentioned in ``atoms``.
    atoms:
        The conjunction to satisfy.  An empty conjunction yields exactly
        the initial bindings (vacuous truth).
    initial_bindings:
        Pre-bound variables (e.g. selection constants pushed in).
    stats:
        Optional accumulator; base tuples fetched are counted as
        ``tuples_examined``.
    order:
        One of :data:`~repro.datalog.plan_cache.ORDERS`:
        ``"greedy"``, ``"left_to_right"`` (see module docstring),
        ``"cost"`` (the selectivity-aware planner), or ``"adaptive"``
        (``cost`` plus mid-fixpoint re-planning when an
        :class:`~repro.datalog.planner.AdaptiveState` is attached).
    tracer:
        Optional :class:`~repro.observability.Tracer`; receives
        per-atom lookup counts, tuples fetched, the join fan-out
        (``bindings_out``), and the plan-cache traffic
        (``plan_compiles`` / ``plan_cache_hits`` / ``plan_cache_misses``).
        ``None`` (the default) costs one pointer comparison per lookup.
    adaptive:
        Optional :class:`~repro.datalog.planner.AdaptiveState` owned by
        the enclosing fixpoint loop; only meaningful with
        ``order="adaptive"``.
    """
    if order not in ORDERS:
        raise ValueError(f"unknown join order {order!r}")
    if not atoms:
        yield dict(initial_bindings) if initial_bindings else {}
        return
    body = tuple(atoms)
    if initial_bindings:
        sig = frozenset(
            t
            for a in body
            for t in a.args
            if isinstance(t, Variable)
            and initial_bindings.get(t) is not None
        )
    else:
        sig = _EMPTY_SIG
    plan = PLAN_CACHE.plan_for(body, sig, order, db, tracer,
                               adaptive=adaptive)
    yield from plan.execute(db, initial_bindings, stats, tracer)


def evaluate_body_project(
    db: Database,
    atoms: Sequence[Atom],
    output: Sequence,
    initial_bindings: Optional[Mapping[Variable, ConstValue]] = None,
    stats: Optional[EvaluationStats] = None,
    order: str = "greedy",
    tracer=None,
    adaptive=None,
) -> Iterator[tuple[ConstValue, ...]]:
    """``instantiate_args(output, b) for b in evaluate_body(...)``, fused.

    The fixpoint loops all follow a body evaluation with an immediate
    projection onto the rule head; going through a bindings dict per
    derivation costs a dict build plus one hash per variable.  This
    entry point has the compiled plan ground ``output`` (typically
    ``rule.head.args``) directly from its register file instead.
    Counters, ordering, and result multiset match the two-step form
    exactly.
    """
    if order not in ORDERS:
        raise ValueError(f"unknown join order {order!r}")
    output = tuple(output)
    if not atoms:
        yield instantiate_args(
            output, initial_bindings if initial_bindings else {}
        )
        return
    body = tuple(atoms)
    if initial_bindings:
        sig = frozenset(
            t
            for a in body
            for t in a.args
            if isinstance(t, Variable)
            and initial_bindings.get(t) is not None
        )
    else:
        sig = _EMPTY_SIG
    plan = PLAN_CACHE.plan_for(body, sig, order, db, tracer,
                               adaptive=adaptive)
    yield from plan.execute_project(output, db, initial_bindings, stats,
                                    tracer)


# ---------------------------------------------------------------------------
# The interpreted reference path
# ---------------------------------------------------------------------------


def _eq_ready(a: Atom, bindings: Mapping[Variable, ConstValue]) -> bool:
    """True if at least one side of an ``eq/2`` atom has a value."""
    for t in a.args:
        if isinstance(t, Constant) or bindings.get(t) is not None:
            return True
    return False


def _eq_lookup(
    a: Atom,
    bindings: Mapping[Variable, ConstValue],
) -> Iterator[Bindings]:
    """Evaluate a built-in ``eq/2`` atom under ``bindings``."""
    if a.arity != 2:
        raise ValueError(f"built-in {EQ} requires arity 2, got {a}")
    left, right = a.args
    left_value = left.value if isinstance(left, Constant) else bindings.get(left)
    right_value = (
        right.value if isinstance(right, Constant) else bindings.get(right)
    )
    if left_value is not None and right_value is not None:
        if left_value == right_value:
            yield dict(bindings)
        return
    if left_value is None and right_value is None:
        raise ValueError(
            f"cannot evaluate {a}: both sides unbound (unsafe rule?)"
        )
    new = dict(bindings)
    if left_value is None:
        new[left] = right_value  # type: ignore[assignment]
    else:
        new[right] = left_value  # type: ignore[index]
    yield new


def _atom_lookup(
    db: Database,
    a: Atom,
    bindings: Mapping[Variable, ConstValue],
    stats: Optional[EvaluationStats],
    tracer=None,
) -> Iterator[Bindings]:
    """Yield extensions of ``bindings`` that satisfy atom ``a``.

    Uses a hash index on the currently-bound positions of ``a`` so that
    only matching tuples are fetched; the remaining (free) positions are
    checked tuple by tuple, handling repeated variables within the atom.
    """
    rel = db.relation(a.predicate)
    if rel is None or len(rel) == 0:
        return

    bound_positions: list[int] = []
    key: list[ConstValue] = []
    free: list[tuple[int, Variable]] = []
    for i, term in enumerate(a.args):
        if isinstance(term, Constant):
            bound_positions.append(i)
            key.append(term.value)
        else:
            value = bindings.get(term)
            if value is not None:
                bound_positions.append(i)
                key.append(value)
            else:
                free.append((i, term))

    candidates = rel.lookup(tuple(bound_positions), tuple(key),
                            tracer=tracer)
    if stats is not None:
        stats.bump_examined(len(candidates))
    if tracer is not None:
        tracer.count("atom_lookups")
        tracer.count("tuples_examined", len(candidates))
    for fact in candidates:
        new = dict(bindings)
        ok = True
        for i, var in free:
            value = fact[i]
            prior = new.get(var)
            if prior is None:
                new[var] = value
            elif prior != value:  # repeated variable within the atom
                ok = False
                break
        if ok:
            if tracer is not None:
                tracer.count("bindings_out")
            yield new


def _choose_next(
    remaining: list[Atom],
    bindings: Mapping[Variable, ConstValue],
    db: Database,
) -> int:
    """Index of the most-constrained remaining atom (greedy heuristic)."""
    best_index = 0
    best_key: tuple[int, int, int] | None = None
    for idx, a in enumerate(remaining):
        bound = 0
        for term in a.args:
            if isinstance(term, Constant) or term in bindings:
                bound += 1
        if a.predicate == EQ:
            # A ready eq atom (>= 1 side bound) is a free filter/assign;
            # an unready one must wait for other atoms to bind a side.
            ready = 0 if bound >= 1 else 1
            key = (ready, -bound, 0)
        else:
            rel = db.relation(a.predicate)
            size = len(rel) if rel is not None else 0
            key = (0, -bound, size)
        if best_key is None or key < best_key:
            best_key = key
            best_index = idx
    return best_index


def evaluate_body_interpreted(
    db: Database,
    atoms: Sequence[Atom],
    initial_bindings: Optional[Mapping[Variable, ConstValue]] = None,
    stats: Optional[EvaluationStats] = None,
    order: str = "greedy",
    tracer=None,
) -> Iterator[Bindings]:
    """:func:`evaluate_body` without plan compilation.

    Re-derives the join order and bound/free split at every recursion
    node and copies the bindings dict per extension.  Kept as the
    executable specification the compiled path is property-tested
    against (``tests/property/test_property_plan_cache.py``); not used
    on any evaluator hot path.
    """
    if order not in ORDERS:
        raise ValueError(f"unknown join order {order!r}")
    if order in ("cost", "adaptive"):
        # The reference interpreter has no cost model; any valid order
        # yields the same set, so fall back to the greedy heuristic.
        order = "greedy"
    start: Bindings = dict(initial_bindings) if initial_bindings else {}
    if not atoms:
        yield start
        return

    def recurse(remaining: list[Atom], bindings: Bindings) -> Iterator[Bindings]:
        if not remaining:
            yield bindings
            return
        if order == "greedy":
            idx = _choose_next(remaining, bindings, db)
        else:
            # Left to right, except unready eq atoms wait for a binder;
            # if only unready eqs remain, fall through to the first so
            # _eq_lookup raises the unsafe-rule ValueError.
            idx = 0
            for j, cand in enumerate(remaining):
                if cand.predicate != EQ or _eq_ready(cand, bindings):
                    idx = j
                    break
        chosen = remaining[idx]
        rest = remaining[:idx] + remaining[idx + 1:]
        if chosen.predicate == EQ:
            matches = _eq_lookup(chosen, bindings)
        else:
            matches = _atom_lookup(db, chosen, bindings, stats, tracer)
        for extended in matches:
            yield from recurse(rest, extended)

    yield from recurse(list(atoms), start)


def instantiate_args(
    args: Sequence, bindings: Mapping[Variable, ConstValue]
) -> tuple[ConstValue, ...]:
    """Ground a term sequence under ``bindings`` into a fact tuple.

    Raises ``KeyError`` if some variable is unbound -- for safe rules
    evaluated over their full body this cannot happen.
    """
    values: list[ConstValue] = []
    for term in args:
        if isinstance(term, Constant):
            values.append(term.value)
        else:
            values.append(bindings[term])
    return tuple(values)
