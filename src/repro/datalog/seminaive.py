"""Semi-naive (delta) bottom-up evaluation, stratum by stratum.

This is the workhorse oracle of the package: every other strategy is
property-tested against it.  Evaluation proceeds over the strongly
connected components of the predicate dependency graph in bottom-up
order (:attr:`repro.datalog.programs.Program.evaluation_order`), so
predicates a recursion depends on are fully materialized before the
recursion itself runs -- exactly the paper's Section 2 assumption that
base predicates do not depend on ``t``.

Within an SCC the classic delta optimization applies: a rule can only
derive a new fact in round ``i`` if at least one of its recursive body
atoms matches a fact that was new in round ``i - 1``, so each rule is
evaluated once per recursive body occurrence with that occurrence
restricted to the previous delta.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Iterable, Mapping, Optional

from ..budget import Budget, UNLIMITED
from ..observability.tracer import live
from ..stats import EvaluationStats
from .atoms import Atom
from .database import Database, Relation
from .joins import evaluate_body_project
from .planner import AdaptiveState
from .programs import Program
from .rules import Rule

__all__ = ["seminaive_evaluate", "seminaive_stratum"]

_DELTA_PREFIX = "Δ"  # Δp never collides with parsed predicate names


def _delta_views(
    db: Database, deltas: dict[str, Relation]
) -> Database:
    """A view database in which ``Δp`` names each delta relation.

    Relations are shared with ``db``; nothing is copied.
    """
    view = Database()
    for name in db.predicates():
        rel = db.relation(name)
        assert rel is not None
        view.attach(rel, name)
    for name, rel in deltas.items():
        view.attach(rel, _DELTA_PREFIX + name)
    return view


def _delta_variants(r: Rule, scc: frozenset[str]) -> list[tuple[Atom, ...]]:
    """Bodies of ``r`` with one SCC-internal atom redirected to its delta.

    For a rule with ``k`` body atoms inside the SCC there are ``k``
    variants; a rule with none (possible when the SCC has several
    predicates) has no variants and contributes nothing after round one.
    """
    variants: list[tuple[Atom, ...]] = []
    for i, a in enumerate(r.body):
        if a.predicate in scc:
            redirected = Atom(_DELTA_PREFIX + a.predicate, a.args)
            variants.append(r.body[:i] + (redirected,) + r.body[i + 1:])
    return variants


def seminaive_stratum(
    rules: Iterable[Rule],
    scc: frozenset[str],
    db: Database,
    program: Program,
    stats: Optional[EvaluationStats] = None,
    budget: Budget = UNLIMITED,
    order: str = "greedy",
    tracer=None,
    initial_deltas: Optional[Mapping[str, Iterable]] = None,
) -> None:
    """Run one SCC of mutually recursive predicates to fixpoint in ``db``.

    ``db`` must already contain every predicate the SCC depends on.
    Derived facts are added to ``db`` in place.  A live ``tracer``
    records one ``seminaive.scc`` span with a per-round ``delta:<p>``
    series per member predicate (the sizes ``EvaluationStats`` cannot
    see) plus the initial/final relation sizes.

    ``initial_deltas`` restarts the fixpoint from an explicit seed
    instead of the usual round-0 full evaluation: ``{predicate: facts}``
    for SCC members.  The seeds are installed (new ones become round
    0's delta) and propagation proceeds with delta variants only.  The
    caller must guarantee ``db`` is already a fixpoint of the SCC
    *except for* consequences of the seeds -- this is the delta-seeded
    restart incremental insert maintenance runs after a base mutation.
    """
    tracer = live(tracer)
    rules = list(rules)
    for p in scc:
        db.ensure(p, program.arity(p))
    # One feedback loop per fixpoint: round production is compared
    # against the planner's estimates, re-planning (bounded) on >4x
    # divergence.  Only order="adaptive" pays for it.
    adaptive = AdaptiveState() if order == "adaptive" else None

    span_cm = (
        tracer.span(
            "seminaive.scc",
            scc=sorted(scc),
            initial={p: db.size(p) for p in sorted(scc)},
        )
        if tracer is not None
        else nullcontext()
    )
    # Per-rule labels for the profiler's rule rows; only paid when
    # traced (the labels also key the rule_apps/rule_out counters).
    labels = (
        [f"{r.head.predicate}#{i}" for i, r in enumerate(rules)]
        if tracer is not None
        else None
    )

    with span_cm as span:
        # Round 0: full evaluation of every rule (seeds the deltas).
        # New facts accumulate in plain sets and are installed into the
        # delta relations in one bulk add_all per predicate per round.
        delta_sets: dict[str, set] = {p: set() for p in scc}
        if stats is not None:
            stats.bump_iterations()
        if tracer is not None:
            tracer.count("iterations")
        if initial_deltas is not None:
            for p, facts in initial_deltas.items():
                if p not in scc:
                    raise ValueError(
                        f"initial delta for {p!r} is not a member of "
                        f"this SCC"
                    )
                target = db.relation(p)
                assert target is not None
                fresh = delta_sets[p]
                for fact in facts:
                    if target.add(tuple(fact)):
                        fresh.add(tuple(fact))
        produced_round = 0
        for ri, r in enumerate(rules if initial_deltas is None else ()):
            target = db.relation(r.head.predicate)
            assert target is not None
            produced_r = 0
            fresh = delta_sets[r.head.predicate]
            for fact in evaluate_body_project(db, r.body, r.head.args,
                                              stats=stats, order=order,
                                              tracer=tracer,
                                              adaptive=adaptive):
                produced_r += 1
                produced_round += 1
                if stats is not None:
                    stats.bump_produced()
                if target.add(fact):
                    fresh.add(fact)
            if tracer is not None:
                tracer.count(f"rule_apps:{labels[ri]}")
                if produced_r:
                    tracer.count(f"rule_out:{labels[ri]}", produced_r)
        deltas: dict[str, Relation] = {
            p: Relation(p, program.arity(p), delta_sets[p]) for p in scc
        }
        if adaptive is not None and initial_deltas is None:
            adaptive.observe_round(produced_round, tracer)
        if tracer is not None:
            for p in sorted(scc):
                tracer.record(f"delta:{p}", len(deltas[p]))

        variant_cache = {id(r): _delta_variants(r, scc) for r in rules}

        while any(deltas[p] for p in scc):
            budget.check_wall(stats)
            if stats is not None:
                for p in scc:
                    stats.record_relation(p, db.size(p))
                    budget.check_relation(p, db.size(p), stats)
                budget.check_stats(stats)
                stats.bump_iterations()
            if tracer is not None:
                tracer.count("iterations")
            view = _delta_views(db, deltas)
            new_deltas: dict[str, Relation] = {
                p: Relation(p, program.arity(p)) for p in scc
            }
            produced_round = 0
            for ri, r in enumerate(rules):
                target = db.relation(r.head.predicate)
                assert target is not None
                produced_r = 0
                for body in variant_cache[id(r)]:
                    for fact in evaluate_body_project(
                        view, body, r.head.args, stats=stats, order=order,
                        tracer=tracer, adaptive=adaptive,
                    ):
                        produced_r += 1
                        produced_round += 1
                        if stats is not None:
                            stats.bump_produced()
                        if target.add(fact):
                            new_deltas[r.head.predicate].add(fact)
                if tracer is not None and variant_cache[id(r)]:
                    tracer.count(f"rule_apps:{labels[ri]}")
                    if produced_r:
                        tracer.count(f"rule_out:{labels[ri]}", produced_r)
            deltas = new_deltas
            if adaptive is not None:
                adaptive.observe_round(produced_round, tracer)
            if tracer is not None:
                for p in sorted(scc):
                    tracer.record(f"delta:{p}", len(deltas[p]))

        if stats is not None:
            for p in scc:
                stats.record_relation(p, db.size(p))
                budget.check_relation(p, db.size(p), stats)
            budget.check_stats(stats)
        if span is not None:
            span.attrs["final"] = {p: db.size(p) for p in sorted(scc)}


def seminaive_evaluate(
    program: Program,
    edb: Database,
    stats: Optional[EvaluationStats] = None,
    budget: Budget = UNLIMITED,
    order: str = "greedy",
    tracer=None,
) -> Database:
    """Materialize every IDB predicate of ``program`` over ``edb``.

    Returns a new database with the EDB relations plus the least-fixpoint
    extent of each IDB predicate; ``edb`` is not modified.
    """
    tracer = live(tracer)
    db = edb.copy()
    for scc in program.evaluation_order:
        scc_rules = [
            r for r in program.rules if r.head.predicate in scc
        ]
        seminaive_stratum(scc_rules, scc, db, program, stats=stats,
                          budget=budget, order=order, tracer=tracer)
    # Predicates with no rules at all (possible after restriction) still
    # need empty relations so queries read as empty rather than missing.
    for predicate in program.idb_predicates:
        db.ensure(predicate, program.arity(predicate))
    return db
