"""Programs: rule collections with IDB/EDB structure and dependency analysis.

A :class:`Program` owns a set of rules and answers the structural
questions every transformation in this package asks: which predicates
are IDB (appear in some head), which are EDB (appear in no head), what a
predicate's *definition* is (the set of rules heading it, Section 2 of
the paper), which predicates are recursive, and in what order non-mutual
IDB predicates can be materialized (the paper's Section 2 assumption that
base predicates "do not depend on t" becomes a topological order over
dependency-graph SCCs here).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterable, Sequence

import networkx as nx

from .atoms import Atom
from .errors import ArityError, NotLinearError, SafetyError
from .rules import Rule

__all__ = ["Program", "Definition"]


@dataclass(frozen=True)
class Definition:
    """The definition of one IDB predicate: its rules, split by recursion.

    ``recursive_rules`` are the rules whose bodies mention the predicate;
    ``exit_rules`` (the paper's nonrecursive rule ``r_e``) are the rest.
    """

    predicate: str
    arity: int
    recursive_rules: tuple[Rule, ...]
    exit_rules: tuple[Rule, ...]

    @property
    def rules(self) -> tuple[Rule, ...]:
        """All rules of the definition, recursive first."""
        return self.recursive_rules + self.exit_rules

    @property
    def is_recursive(self) -> bool:
        return bool(self.recursive_rules)

    def is_linear(self) -> bool:
        """True if every recursive rule mentions the predicate once."""
        return all(
            r.is_linear_in(self.predicate) for r in self.recursive_rules
        )

    def check_linear(self) -> None:
        """Raise :class:`NotLinearError` unless the definition is linear."""
        for r in self.recursive_rules:
            if not r.is_linear_in(self.predicate):
                raise NotLinearError(
                    f"rule {r} mentions {self.predicate} more than once "
                    f"in its body; the definition is not linear"
                )

    def base_predicates(self) -> frozenset[str]:
        """Predicates other than ``self.predicate`` used by the rules.

        The paper calls any predicate other than ``t`` a *base predicate*;
        these may be EDB or independently-defined IDB.
        """
        preds: set[str] = set()
        for r in self.rules:
            preds |= r.body_predicates()
        preds.discard(self.predicate)
        return frozenset(preds)


class Program:
    """An ordered collection of rules with cached structural analysis.

    The program is immutable after construction; all derived properties
    (IDB/EDB split, dependency graph, strata) are computed lazily and
    cached.
    """

    def __init__(self, rules: Iterable[Rule]) -> None:
        self._rules: tuple[Rule, ...] = tuple(rules)
        self._check_arities()

    @property
    def rules(self) -> tuple[Rule, ...]:
        return self._rules

    def __iter__(self):
        return iter(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    def __str__(self) -> str:
        return "\n".join(str(r) for r in self._rules)

    def __repr__(self) -> str:
        return f"Program({len(self._rules)} rules)"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Program) and self._rules == other._rules

    def __hash__(self) -> int:
        return hash(self._rules)

    # -- validation --------------------------------------------------------

    def _check_arities(self) -> None:
        arities: dict[str, int] = {}

        def check(a: Atom) -> None:
            known = arities.setdefault(a.predicate, a.arity)
            if known != a.arity:
                raise ArityError(
                    f"predicate {a.predicate} used with arity {a.arity} "
                    f"and {known}"
                )

        for r in self._rules:
            check(r.head)
            for a in r.body:
                check(a)
        self._arities = arities

    def check_safety(self) -> None:
        """Raise :class:`SafetyError` if any rule is unsafe."""
        for r in self._rules:
            r.check_safety()

    def is_safe(self) -> bool:
        try:
            self.check_safety()
        except SafetyError:
            return False
        return True

    # -- structure ---------------------------------------------------------

    def arity(self, predicate: str) -> int:
        """Arity of a predicate mentioned anywhere in the program."""
        try:
            return self._arities[predicate]
        except KeyError:
            raise KeyError(f"predicate {predicate} not used in program") from None

    @cached_property
    def idb_predicates(self) -> frozenset[str]:
        """Predicates appearing in the head of some rule."""
        return frozenset(r.head.predicate for r in self._rules)

    @cached_property
    def edb_predicates(self) -> frozenset[str]:
        """Predicates appearing only in rule bodies."""
        mentioned: set[str] = set()
        for r in self._rules:
            mentioned |= r.body_predicates()
        return frozenset(mentioned - self.idb_predicates)

    @cached_property
    def predicates(self) -> frozenset[str]:
        """Every predicate mentioned anywhere."""
        return frozenset(self._arities)

    def rules_for(self, predicate: str) -> tuple[Rule, ...]:
        """Rules whose head predicate is ``predicate``."""
        return tuple(r for r in self._rules if r.head.predicate == predicate)

    def definition(self, predicate: str) -> Definition:
        """The :class:`Definition` of an IDB predicate."""
        rules = self.rules_for(predicate)
        if not rules:
            raise KeyError(f"{predicate} is not an IDB predicate")
        recursive = tuple(r for r in rules if r.is_recursive_in(predicate))
        exits = tuple(r for r in rules if not r.is_recursive_in(predicate))
        return Definition(predicate, self.arity(predicate), recursive, exits)

    @cached_property
    def dependency_graph(self) -> "nx.DiGraph":
        """Directed graph with an edge p -> q when p's rules use q."""
        graph = nx.DiGraph()
        graph.add_nodes_from(self.predicates)
        for r in self._rules:
            for a in r.body:
                graph.add_edge(r.head.predicate, a.predicate)
        return graph

    def depends_on(self, predicate: str) -> frozenset[str]:
        """All predicates reachable from ``predicate``.

        Includes ``predicate`` itself exactly when it is recursive
        (reachable from itself through at least one edge).
        """
        reachable = set(nx.descendants(self.dependency_graph, predicate))
        if self.is_recursive_predicate(predicate):
            reachable.add(predicate)
        return frozenset(reachable)

    def is_recursive_predicate(self, predicate: str) -> bool:
        """True if ``predicate`` depends (transitively) on itself."""
        graph = self.dependency_graph
        if graph.has_edge(predicate, predicate):
            return True
        return bool(self.mutually_recursive_with(predicate))

    def mutually_recursive_with(self, predicate: str) -> frozenset[str]:
        """Other predicates in the same dependency-graph SCC as ``predicate``.

        Empty iff no other predicate is mutually recursive with it (the
        paper's standing assumption for the recursive predicate ``t``).
        """
        for component in nx.strongly_connected_components(self.dependency_graph):
            if predicate in component:
                return frozenset(component) - {predicate}
        return frozenset()

    @cached_property
    def evaluation_order(self) -> tuple[frozenset[str], ...]:
        """SCCs of IDB predicates in bottom-up (dependency-first) order.

        Materializing predicates stratum by stratum in this order is how
        the engine honours the paper's assumption that base predicates do
        not depend on the recursive predicate under evaluation.
        """
        graph = self.dependency_graph
        condensed = nx.condensation(graph)
        order: list[frozenset[str]] = []
        for node in reversed(list(nx.topological_sort(condensed))):
            members = frozenset(condensed.nodes[node]["members"])
            idb_members = members & self.idb_predicates
            if idb_members:
                order.append(idb_members)
        return tuple(order)

    # -- convenience -------------------------------------------------------

    def restricted_to(self, predicates: Iterable[str]) -> "Program":
        """Subprogram containing only rules heading the given predicates."""
        wanted = set(predicates)
        return Program(r for r in self._rules if r.head.predicate in wanted)

    def extended(self, extra: Sequence[Rule]) -> "Program":
        """A new program with ``extra`` rules appended."""
        return Program(self._rules + tuple(extra))
