"""A small relational algebra: expressions, an interpreter, a printer.

Section 3.2 of the paper introduces the evaluation schema in terms of
relational operators ("The f_i, g_i, and h are relational operators
... instead of writing p := pi_{1,3}(sigma_{x0=1}(p |x| q)) we will
write ..."), and :mod:`repro.core.algebra` compiles Separable plans
down to expressions of this module -- an executable version of that
remark.

Expressions are immutable trees over *named attributes* (attribute
names play the role of the Datalog variables), with the operators:

========================  =============================================
:class:`Scan`             read a stored relation, naming its columns
:class:`Values`           an in-memory constant relation
:class:`Placeholder`      a hole bound at evaluation time (carry/seen)
:class:`Select`           sigma attribute = constant
:class:`SelectEq`         sigma attribute = attribute
:class:`Project`          pi onto a list of attributes (with dedup)
:class:`NaturalJoin`      |x| on shared attribute names (hash join)
:class:`Extend`           append a copied-attribute or constant column
:class:`Rename`           attribute renaming
:class:`Union`            set union of schema-compatible expressions
:class:`Difference`       set difference
========================  =============================================

:func:`evaluate` interprets an expression against a
:class:`~repro.datalog.database.Database` plus a binding environment
for placeholders; :func:`to_text` renders the tree in compact
sigma/pi/join notation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from .database import Database
from .errors import EvaluationError
from .terms import ConstValue

__all__ = [
    "Expression",
    "Scan",
    "Values",
    "Placeholder",
    "Select",
    "SelectEq",
    "Project",
    "NaturalJoin",
    "Extend",
    "Rename",
    "Union",
    "Difference",
    "evaluate",
    "to_text",
]

Schema = tuple[str, ...]
Tuples = frozenset[tuple]


class Expression:
    """Base class; every node exposes a :attr:`schema`."""

    schema: Schema


def _check_schema(schema: Sequence[str]) -> Schema:
    if len(set(schema)) != len(schema):
        raise ValueError(f"duplicate attribute in schema {schema!r}")
    return tuple(schema)


@dataclass(frozen=True)
class Scan(Expression):
    """Read the named stored relation, labelling its columns.

    A repeated label selects tuples whose corresponding columns agree
    (the positional encoding of a repeated Datalog variable); the
    output schema keeps one copy.
    """

    relation: str
    labels: tuple[str, ...]

    def __post_init__(self) -> None:
        seen: list[str] = []
        for label in self.labels:
            if label not in seen:
                seen.append(label)
        object.__setattr__(self, "schema", tuple(seen))


@dataclass(frozen=True)
class Values(Expression):
    """A literal relation."""

    schema: Schema
    tuples: Tuples

    def __post_init__(self) -> None:
        _check_schema(self.schema)


@dataclass(frozen=True)
class Placeholder(Expression):
    """A named hole (e.g. the current ``carry``), bound at evaluation."""

    name: str
    schema: Schema

    def __post_init__(self) -> None:
        _check_schema(self.schema)


@dataclass(frozen=True)
class Select(Expression):
    """sigma attribute = constant."""

    child: Expression
    attribute: str
    value: ConstValue

    def __post_init__(self) -> None:
        if self.attribute not in self.child.schema:
            raise ValueError(
                f"attribute {self.attribute!r} not in {self.child.schema}"
            )
        object.__setattr__(self, "schema", self.child.schema)


@dataclass(frozen=True)
class SelectEq(Expression):
    """sigma attribute = attribute."""

    child: Expression
    left: str
    right: str

    def __post_init__(self) -> None:
        for attribute in (self.left, self.right):
            if attribute not in self.child.schema:
                raise ValueError(
                    f"attribute {attribute!r} not in {self.child.schema}"
                )
        object.__setattr__(self, "schema", self.child.schema)


@dataclass(frozen=True)
class Project(Expression):
    """pi onto the listed attributes (duplicates eliminated)."""

    child: Expression
    attributes: Schema

    def __post_init__(self) -> None:
        _check_schema(self.attributes)
        missing = set(self.attributes) - set(self.child.schema)
        if missing:
            raise ValueError(
                f"attributes {sorted(missing)} not in {self.child.schema}"
            )
        object.__setattr__(self, "schema", self.attributes)


@dataclass(frozen=True)
class NaturalJoin(Expression):
    """|x| over shared attribute names."""

    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        merged = list(self.left.schema)
        for attribute in self.right.schema:
            if attribute not in merged:
                merged.append(attribute)
        object.__setattr__(self, "schema", tuple(merged))


@dataclass(frozen=True)
class Rename(Expression):
    """Rename attributes via ``{old: new}``."""

    child: Expression
    mapping: tuple[tuple[str, str], ...]

    def __post_init__(self) -> None:
        mapping = dict(self.mapping)
        renamed = tuple(
            mapping.get(a, a) for a in self.child.schema
        )
        _check_schema(renamed)
        object.__setattr__(self, "schema", renamed)


@dataclass(frozen=True)
class Extend(Expression):
    """Append a column: a copy of another attribute, or a constant.

    Exactly one of ``from_attribute`` / ``value`` must be given.  This
    is the algebraic counterpart of the built-in ``eq`` assignment that
    rectification introduces (Section 2's "adding equalities to the
    rule bodies").
    """

    child: Expression
    attribute: str
    from_attribute: str | None = None
    value: ConstValue | None = None

    def __post_init__(self) -> None:
        if (self.from_attribute is None) == (self.value is None):
            raise ValueError(
                "Extend needs exactly one of from_attribute / value"
            )
        if self.attribute in self.child.schema:
            raise ValueError(
                f"attribute {self.attribute!r} already in "
                f"{self.child.schema}"
            )
        if (
            self.from_attribute is not None
            and self.from_attribute not in self.child.schema
        ):
            raise ValueError(
                f"attribute {self.from_attribute!r} not in "
                f"{self.child.schema}"
            )
        object.__setattr__(
            self, "schema", self.child.schema + (self.attribute,)
        )


@dataclass(frozen=True)
class Union(Expression):
    """Set union; every child must share one schema."""

    children: tuple[Expression, ...]

    def __post_init__(self) -> None:
        if not self.children:
            raise ValueError("Union requires at least one child")
        first = self.children[0].schema
        for child in self.children[1:]:
            if child.schema != first:
                raise ValueError(
                    f"union schema mismatch: {child.schema} vs {first}"
                )
        object.__setattr__(self, "schema", first)


@dataclass(frozen=True)
class Difference(Expression):
    """Set difference (schemas must match)."""

    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.left.schema != self.right.schema:
            raise ValueError(
                f"difference schema mismatch: {self.left.schema} vs "
                f"{self.right.schema}"
            )
        object.__setattr__(self, "schema", self.left.schema)


# ---------------------------------------------------------------------------
# Interpreter
# ---------------------------------------------------------------------------


def evaluate(
    expr: Expression,
    db: Database,
    placeholders: Mapping[str, Tuples] | None = None,
) -> Tuples:
    """Evaluate an expression to a set of tuples over ``expr.schema``."""
    env = placeholders or {}

    def walk(node: Expression) -> Tuples:
        if isinstance(node, Scan):
            rel = db.relation(node.relation)
            rows = rel.tuples() if rel is not None else frozenset()
            positions: dict[str, int] = {}
            keep: list[int] = []
            checks: list[tuple[int, int]] = []
            for i, label in enumerate(node.labels):
                if label in positions:
                    checks.append((positions[label], i))
                else:
                    positions[label] = i
                    keep.append(i)
            result = set()
            for row in rows:
                if all(row[a] == row[b] for a, b in checks):
                    result.add(tuple(row[i] for i in keep))
            return frozenset(result)
        if isinstance(node, Values):
            return node.tuples
        if isinstance(node, Placeholder):
            try:
                return env[node.name]
            except KeyError:
                raise EvaluationError(
                    f"unbound placeholder {node.name!r}"
                ) from None
        if isinstance(node, Select):
            rows = walk(node.child)
            index = node.child.schema.index(node.attribute)
            return frozenset(r for r in rows if r[index] == node.value)
        if isinstance(node, SelectEq):
            rows = walk(node.child)
            li = node.child.schema.index(node.left)
            ri = node.child.schema.index(node.right)
            return frozenset(r for r in rows if r[li] == r[ri])
        if isinstance(node, Project):
            rows = walk(node.child)
            indexes = [node.child.schema.index(a) for a in node.attributes]
            return frozenset(
                tuple(r[i] for i in indexes) for r in rows
            )
        if isinstance(node, NaturalJoin):
            left_rows = walk(node.left)
            right_rows = walk(node.right)
            shared = [
                a for a in node.right.schema if a in node.left.schema
            ]
            li = [node.left.schema.index(a) for a in shared]
            ri = [node.right.schema.index(a) for a in shared]
            extra = [
                i
                for i, a in enumerate(node.right.schema)
                if a not in node.left.schema
            ]
            buckets: dict[tuple, list[tuple]] = {}
            for row in right_rows:
                buckets.setdefault(
                    tuple(row[i] for i in ri), []
                ).append(row)
            result = set()
            for row in left_rows:
                key = tuple(row[i] for i in li)
                for match in buckets.get(key, ()):
                    result.add(row + tuple(match[i] for i in extra))
            return frozenset(result)
        if isinstance(node, Extend):
            rows = walk(node.child)
            if node.from_attribute is not None:
                index = node.child.schema.index(node.from_attribute)
                return frozenset(r + (r[index],) for r in rows)
            return frozenset(r + (node.value,) for r in rows)
        if isinstance(node, Rename):
            return walk(node.child)
        if isinstance(node, Union):
            result: set[tuple] = set()
            for child in node.children:
                result |= walk(child)
            return frozenset(result)
        if isinstance(node, Difference):
            return walk(node.left) - walk(node.right)
        raise TypeError(f"unknown expression node {node!r}")

    return walk(expr)


def to_text(expr: Expression) -> str:
    """Compact sigma/pi/join rendering of an expression tree."""
    if isinstance(expr, Scan):
        return f"{expr.relation}({', '.join(expr.labels)})"
    if isinstance(expr, Values):
        return f"values/{len(expr.schema)}[{len(expr.tuples)}]"
    if isinstance(expr, Placeholder):
        return f"{expr.name}({', '.join(expr.schema)})"
    if isinstance(expr, Select):
        return f"σ[{expr.attribute}={expr.value}]({to_text(expr.child)})"
    if isinstance(expr, SelectEq):
        return f"σ[{expr.left}={expr.right}]({to_text(expr.child)})"
    if isinstance(expr, Project):
        return f"π[{', '.join(expr.attributes)}]({to_text(expr.child)})"
    if isinstance(expr, NaturalJoin):
        return f"({to_text(expr.left)} ⋈ {to_text(expr.right)})"
    if isinstance(expr, Extend):
        source = (
            expr.from_attribute
            if expr.from_attribute is not None
            else repr(expr.value)
        )
        return f"ε[{expr.attribute}:={source}]({to_text(expr.child)})"
    if isinstance(expr, Rename):
        inner = ", ".join(f"{a}->{b}" for a, b in expr.mapping)
        return f"ρ[{inner}]({to_text(expr.child)})"
    if isinstance(expr, Union):
        return " ∪ ".join(to_text(c) for c in expr.children)
    if isinstance(expr, Difference):
        return f"({to_text(expr.left)} - {to_text(expr.right)})"
    raise TypeError(f"unknown expression node {expr!r}")
