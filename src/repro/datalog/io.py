"""Loading and saving databases and programs on disk.

Two interchange formats:

* **Datalog text** (``.dl``): rules, facts and queries in the syntax of
  :mod:`repro.datalog.parser`; written by the pretty-printer, so files
  round-trip exactly.
* **CSV directories**: one ``<predicate>.csv`` per relation, each line
  one tuple.  Convenient for bulk EDB data coming from elsewhere.
  Values are read back as integers when they look like integers (the
  engine treats ``Constant(42)`` and ``Constant("42")`` as different
  constants, so the round-trip must preserve the type).

All functions take either :class:`str` or :class:`~pathlib.Path`.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Union

from .database import Database
from .errors import ArityError
from .parser import ParsedProgram, parse_program
from .pretty import database_to_text, program_to_text
from .programs import Program

__all__ = [
    "load_program",
    "save_program",
    "save_database",
    "load_csv_directory",
    "save_csv_directory",
]

PathLike = Union[str, Path]


def load_program(path: PathLike) -> ParsedProgram:
    """Parse a ``.dl`` file into rules, facts and queries."""
    return parse_program(Path(path).read_text())


def save_program(
    program: Program, path: PathLike, database: Database | None = None
) -> None:
    """Write rules (and optionally facts) as parseable Datalog text."""
    chunks = [program_to_text(program)]
    if database is not None:
        chunks.append(database_to_text(database))
    Path(path).write_text("\n".join(c for c in chunks if c) + "\n")


def save_database(db: Database, path: PathLike) -> None:
    """Write every fact of ``db`` as Datalog text."""
    Path(path).write_text(database_to_text(db) + "\n")


def _decode(value: str) -> Union[str, int]:
    """CSV cell -> constant value; integer-looking cells become ints."""
    if value and (value.isdigit() or
                  (value[0] == "-" and value[1:].isdigit())):
        return int(value)
    return value


def load_csv_directory(path: PathLike, db: Database | None = None) -> Database:
    """Load every ``*.csv`` file in a directory as a relation.

    The file stem is the predicate name; every row one tuple.  Rows of
    differing width within one file raise :class:`ArityError`.  An
    existing ``db`` may be passed to merge into.
    """
    directory = Path(path)
    if not directory.is_dir():
        raise FileNotFoundError(f"{directory} is not a directory")
    db = db if db is not None else Database()
    for csv_path in sorted(directory.glob("*.csv")):
        predicate = csv_path.stem
        with csv_path.open(newline="") as handle:
            for row_number, row in enumerate(csv.reader(handle), start=1):
                if not row:
                    continue
                try:
                    db.add_fact(predicate, tuple(_decode(v) for v in row))
                except ArityError as exc:
                    raise ArityError(
                        f"{csv_path}:{row_number}: {exc}"
                    ) from exc
    return db


def save_csv_directory(db: Database, path: PathLike) -> None:
    """Write every relation of ``db`` as ``<predicate>.csv`` files.

    Rows are sorted for stable, diffable output.  Empty relations
    produce empty files (so arities survive as far as CSV allows).
    """
    directory = Path(path)
    directory.mkdir(parents=True, exist_ok=True)
    for predicate in sorted(db.predicates()):
        target = directory / f"{predicate}.csv"
        with target.open("w", newline="") as handle:
            writer = csv.writer(handle)
            for fact in sorted(db.tuples(predicate), key=repr):
                writer.writerow(fact)
