"""Conjunctive queries, left-to-right evaluation, and containment mappings.

The strings of an expansion (Section 2 of the paper) are conjunctive
queries over the EDB plus ``t_0``; Theorem 2.1's proof machinery is the
classic containment-mapping theorem of Chandra-Merlin [CM77] and
Aho-Sagiv-Ullman [ASU79]: two conjunctive queries define the same
relation iff containment mappings exist in both directions.  This module
implements both sides -- evaluation (used to cross-check the engines on
bounded expansions) and containment-mapping search (used to test
Theorem 2.1 directly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from ..stats import EvaluationStats
from .atoms import Atom
from .database import Database
from .joins import evaluate_body, instantiate_args
from .terms import Constant, Term, Variable

__all__ = [
    "ConjunctiveQuery",
    "containment_mapping",
    "is_contained_in",
    "equivalent",
]


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A conjunctive query: distinguished terms + a body conjunction.

    ``head`` lists the output terms in order (the paper's distinguished
    variables; constants may appear after a selection is substituted in).
    """

    head: tuple[Term, ...]
    body: tuple[Atom, ...]

    @property
    def distinguished(self) -> tuple[Variable, ...]:
        """The distinguished variables, in head order (deduplicated)."""
        seen: list[Variable] = []
        for t in self.head:
            if isinstance(t, Variable) and t not in seen:
                seen.append(t)
        return tuple(seen)

    def variables(self) -> frozenset[Variable]:
        result = {t for t in self.head if isinstance(t, Variable)}
        for a in self.body:
            result |= a.variable_set()
        return frozenset(result)

    def nondistinguished(self) -> frozenset[Variable]:
        """Variables that occur only in the body (existential)."""
        return self.variables() - set(self.distinguished)

    def substitute(self, mapping: Mapping[Variable, Term]) -> "ConjunctiveQuery":
        head = tuple(
            mapping.get(t, t) if isinstance(t, Variable) else t
            for t in self.head
        )
        return ConjunctiveQuery(
            head, tuple(a.substitute(mapping) for a in self.body)
        )

    def evaluate(
        self,
        db: Database,
        stats: Optional[EvaluationStats] = None,
        order: str = "greedy",
    ) -> frozenset[tuple]:
        """All head tuples the query produces over ``db``."""
        results: set[tuple] = set()
        for bindings in evaluate_body(db, self.body, stats=stats, order=order):
            results.add(instantiate_args(self.head, bindings))
        return frozenset(results)

    def __str__(self) -> str:
        head_text = ", ".join(str(t) for t in self.head)
        body_text = " & ".join(str(a) for a in self.body)
        return f"({head_text}) :- {body_text}"


def containment_mapping(
    source: ConjunctiveQuery, target: ConjunctiveQuery
) -> Optional[dict[Variable, Term]]:
    """A containment mapping from ``source`` to ``target``, if one exists.

    Following the definition in the proof of Theorem 2.1: a mapping ``m``
    from the variables of ``source`` to the terms of ``target`` such that

    * distinguished variables map to themselves (equivalently: the head
      of ``source``, after applying ``m``, equals the head of ``target``),
    * every atom of ``source``, after applying ``m``, appears among the
      atoms of ``target``.

    Finding one is NP-complete in general; the backtracking search below
    is fine at the sizes expansions produce.
    """
    if len(source.head) != len(target.head):
        return None

    mapping: dict[Variable, Term] = {}
    # Head constraint: m(source.head[i]) == target.head[i].
    for s_term, t_term in zip(source.head, target.head):
        if isinstance(s_term, Constant):
            if s_term != t_term:
                return None
        else:
            bound = mapping.get(s_term)
            if bound is None:
                mapping[s_term] = t_term
            elif bound != t_term:
                return None

    by_predicate: dict[str, list[Atom]] = {}
    for a in target.body:
        by_predicate.setdefault(a.predicate, []).append(a)

    atoms = list(source.body)

    def extend(i: int, m: dict[Variable, Term]) -> Optional[dict[Variable, Term]]:
        if i == len(atoms):
            return m
        a = atoms[i]
        for candidate in by_predicate.get(a.predicate, ()):
            if candidate.arity != a.arity:
                continue
            trial = dict(m)
            ok = True
            for s_term, t_term in zip(a.args, candidate.args):
                if isinstance(s_term, Constant):
                    if s_term != t_term:
                        ok = False
                        break
                else:
                    bound = trial.get(s_term)
                    if bound is None:
                        trial[s_term] = t_term
                    elif bound != t_term:
                        ok = False
                        break
            if ok:
                result = extend(i + 1, trial)
                if result is not None:
                    return result
        return None

    return extend(0, mapping)


def is_contained_in(
    smaller: ConjunctiveQuery, larger: ConjunctiveQuery
) -> bool:
    """True if ``smaller``'s relation is contained in ``larger``'s.

    By the containment-mapping theorem, Q1 is contained in Q2 iff there
    is a containment mapping *from Q2 to Q1* (the mapping direction is
    opposite to the containment direction).
    """
    return containment_mapping(larger, smaller) is not None


def equivalent(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> bool:
    """True if the two queries define the same relation on every database.

    This is the both-directions containment-mapping test used throughout
    the proof of Theorem 2.1.
    """
    return (
        containment_mapping(q1, q2) is not None
        and containment_mapping(q2, q1) is not None
    )
