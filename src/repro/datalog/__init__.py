"""The Datalog substrate: language, storage, and bottom-up evaluation.

This subpackage is everything the paper's algorithms stand on: terms,
atoms, rules, and programs (:mod:`terms`, :mod:`atoms`, :mod:`rules`,
:mod:`programs`); a Prolog-flavoured parser (:mod:`parser`); tuple
storage with lazy hash indexes (:mod:`database`); join evaluation
(:mod:`joins`); naive and semi-naive fixpoint evaluation (:mod:`naive`,
:mod:`seminaive`); conjunctive-query containment (:mod:`conjunctive`);
Procedure Expand (:mod:`expansion`); and rule rectification
(:mod:`rectify`).
"""

from .atoms import Atom, atom, connected_components, shared_variables
from .conjunctive import (
    ConjunctiveQuery,
    containment_mapping,
    equivalent,
    is_contained_in,
)
from .database import Database, Relation
from .errors import (
    ArityError,
    BudgetExceeded,
    CyclicDataError,
    DatalogSyntaxError,
    EvaluationError,
    NotFullSelectionError,
    NotLinearError,
    NotSeparableError,
    ReproError,
    SafetyError,
    UnknownPredicateError,
)
from .expansion import ExpansionString, expand, expansion_strings
from .joins import EQ, evaluate_body, instantiate_args
from .naive import naive_evaluate
from .parser import (
    ParsedProgram,
    parse_atom,
    parse_program,
    parse_query,
    parse_rule,
)
from .pretty import answers_to_text, database_to_text, program_to_text
from .programs import Definition, Program
from .rectify import rectify_definition, rectify_program, rectify_rule
from .rules import Rule, rule
from .seminaive import seminaive_evaluate
from .terms import Constant, Term, Variable, make_term
from .unify import match_atom, unify_atoms

__all__ = [
    "Atom",
    "atom",
    "connected_components",
    "shared_variables",
    "ConjunctiveQuery",
    "containment_mapping",
    "equivalent",
    "is_contained_in",
    "Database",
    "Relation",
    "ArityError",
    "BudgetExceeded",
    "CyclicDataError",
    "DatalogSyntaxError",
    "EvaluationError",
    "NotFullSelectionError",
    "NotLinearError",
    "NotSeparableError",
    "ReproError",
    "SafetyError",
    "UnknownPredicateError",
    "ExpansionString",
    "expand",
    "expansion_strings",
    "EQ",
    "evaluate_body",
    "instantiate_args",
    "naive_evaluate",
    "ParsedProgram",
    "parse_atom",
    "parse_program",
    "parse_query",
    "parse_rule",
    "answers_to_text",
    "database_to_text",
    "program_to_text",
    "Definition",
    "Program",
    "rectify_definition",
    "rectify_program",
    "rectify_rule",
    "Rule",
    "rule",
    "seminaive_evaluate",
    "Constant",
    "Term",
    "Variable",
    "make_term",
    "match_atom",
    "unify_atoms",
]
