"""Programmatic reproduction reports: rerun every experiment, emit tables.

``python -m repro report`` (or :func:`run_all` from code) sweeps the
same inputs as the benchmark harness -- the Section 4 examples and
lemma families, the detection sweeps, the focus experiment -- and
renders the measured series as Markdown, ready to diff against
EXPERIMENTS.md.  Unlike ``pytest benchmarks/``, this path does no
timing calibration, so it runs in seconds and is convenient for
regenerating the tables after a code change.
"""

from __future__ import annotations

from typing import Callable, Iterable

from .budget import Budget
from .core.api import evaluate_separable
from .core.detection import analyze_recursion, require_separable
from .datalog.errors import BudgetExceeded, CyclicDataError
from .datalog.parser import parse_atom, parse_program
from .observability.tracer import Tracer
from .rewriting.counting import CountingNotApplicable, evaluate_counting
from .rewriting.magic import evaluate_magic
from .stats import EvaluationStats
from .workloads.paper import (
    example_1_1_database,
    example_1_1_program,
    example_1_2_database,
    example_1_2_program,
    lemma_4_2_database,
    lemma_4_2_program,
    lemma_4_3_database,
    lemma_4_3_program,
)

__all__ = ["run_all", "to_markdown", "main"]

Row = dict[str, object]

#: Budget protecting the exponential baselines during report runs.
REPORT_BUDGET = Budget(max_relation_tuples=200_000)


def _measure(evaluator: Callable, program, db, query) -> tuple[str, Row]:
    """Run one (method, input) cell; returns (outcome, measures).

    Timing goes through a ``report.cell`` tracer span (perf_counter
    under the hood), so report runs produce the same span forest as
    every other instrumented path -- attach a sink to the tracer here
    and the sweep becomes exportable like any profiled query.
    """
    stats = EvaluationStats()
    tracer = Tracer()
    try:
        with tracer.span("report.cell") as cell:
            evaluator(program, db, query, stats=stats,
                      budget=REPORT_BUDGET, tracer=tracer)
    except BudgetExceeded:
        return "budget", {"max_relation": f">{REPORT_BUDGET.max_relation_tuples}"}
    except CyclicDataError:
        return "cyclic", {"max_relation": "CyclicDataError"}
    except CountingNotApplicable:
        return "n/a", {"max_relation": "not applicable"}
    return "ok", {
        "max_relation": stats.max_relation_size,
        "largest": stats.largest_relation()[0],
        "seconds": round(cell.duration_s, 4),
    }


def experiment_e1(ns: Iterable[int] = (4, 8, 12, 16)) -> list[Row]:
    """Example 1.1: Counting 2^n vs Separable/Magic O(n)."""
    rows: list[Row] = []
    query = parse_atom("buys(a1, Y)")
    for n in ns:
        program = example_1_1_program()
        db = example_1_1_database(n)
        for name, evaluator in (
            ("counting", evaluate_counting),
            ("separable", evaluate_separable),
            ("magic", evaluate_magic),
        ):
            _, measures = _measure(evaluator, program, db, query)
            rows.append({"method": name, "n": n, **measures})
    return rows


def experiment_e2(ns: Iterable[int] = (8, 16, 32, 64)) -> list[Row]:
    """Example 1.2: Magic n^2 vs Separable O(n)."""
    rows: list[Row] = []
    query = parse_atom("buys(a1, Y)")
    for n in ns:
        program = example_1_2_program()
        db = example_1_2_database(n)
        for name, evaluator in (
            ("magic", evaluate_magic),
            ("separable", evaluate_separable),
        ):
            _, measures = _measure(evaluator, program, db, query)
            rows.append({"method": name, "n": n, **measures})
    return rows


def experiment_e4(
    cases: Iterable[tuple[int, int]] = ((4, 2), (8, 2), (4, 3)),
    p: int = 2,
) -> list[Row]:
    """Lemma 4.2: Magic n^k vs Separable n^(k-1)."""
    rows: list[Row] = []
    for n, k in cases:
        program = lemma_4_2_program(k, p)
        db = lemma_4_2_database(n, k, p)
        query = parse_atom(
            "t(c1, " + ", ".join(f"Q{j}" for j in range(k - 1)) + ")"
        )
        for name, evaluator in (
            ("magic", evaluate_magic),
            ("separable", evaluate_separable),
        ):
            _, measures = _measure(evaluator, program, db, query)
            rows.append(
                {"method": name, "n": n, "k": k, "n^k": n**k, **measures}
            )
    return rows


def experiment_e5(
    cases: Iterable[tuple[int, int]] = ((6, 2), (8, 2), (6, 3)),
) -> list[Row]:
    """Lemma 4.3: Counting sum(p^l) vs Separable O(n)."""
    rows: list[Row] = []
    query = parse_atom("t(c1, Y)")
    for n, p in cases:
        program = lemma_4_3_program(2, p)
        db = lemma_4_3_database(n, 2, p)
        for name, evaluator in (
            ("counting", evaluate_counting),
            ("separable", evaluate_separable),
        ):
            _, measures = _measure(evaluator, program, db, query)
            rows.append(
                {
                    "method": name,
                    "n": n,
                    "p": p,
                    "sum p^l": sum(p**level for level in range(n)),
                    **measures,
                }
            )
    return rows


def experiment_e6(rs: Iterable[int] = (2, 16, 64)) -> list[Row]:
    """Detection time vs rule count (database never consulted)."""
    rows: list[Row] = []
    head = "t(X1, X2, X3)"
    body_rest = "t(W, X2, X3)"
    for r in rs:
        lines = [
            f"{head} :- a{i}(X1, M{i}) & b{i}(M{i}, W) & {body_rest}."
            for i in range(r)
        ]
        lines.append(f"{head} :- t0(X1, X2, X3).")
        program = parse_program("\n".join(lines)).program
        tracer = Tracer()
        with tracer.span("report.detect", rules=r) as cell:
            report = analyze_recursion(program, "t")
        rows.append(
            {
                "method": "detect",
                "rules": r,
                "separable": report.separable,
                "seconds": round(cell.duration_s, 5),
            }
        )
    return rows


def run_all() -> dict[str, list[Row]]:
    """All experiment sweeps, keyed by experiment id."""
    return {
        "E1 Example 1.1 (counting vs separable)": experiment_e1(),
        "E2 Example 1.2 (magic vs separable)": experiment_e2(),
        "E4 Lemma 4.2 (magic n^k)": experiment_e4(),
        "E5 Lemma 4.3 (counting p^n)": experiment_e5(),
        "E6 detection cost": experiment_e6(),
    }


def to_markdown(results: dict[str, list[Row]]) -> str:
    """Render experiment rows as Markdown tables."""
    chunks: list[str] = ["# Reproduction report (generated)\n"]
    for title, rows in results.items():
        chunks.append(f"## {title}\n")
        if not rows:
            chunks.append("_no rows_\n")
            continue
        columns: list[str] = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        chunks.append("| " + " | ".join(columns) + " |")
        chunks.append("|" + "|".join("---" for _ in columns) + "|")
        for row in rows:
            chunks.append(
                "| "
                + " | ".join(str(row.get(c, "")) for c in columns)
                + " |"
            )
        chunks.append("")
    return "\n".join(chunks)


def main() -> int:  # pragma: no cover - thin wrapper
    print(to_markdown(run_all()))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
