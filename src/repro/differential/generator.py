"""Seeded random case generation: separable programs and near-miss mutants.

The generator draws :class:`~repro.differential.layouts.SeparableLayout`
descriptions (random arities, equivalence-class assignments, multi-rule
classes, one-atom vs two-atom rule shapes), builds the program through
:func:`~repro.differential.layouts.build_separable`, then

* with some probability applies one **near-miss mutation** that
  provably breaks a single condition of Definition 2.4 while keeping
  the program linear, safe and function-free:

  - ``swap-persistent``: swap two persistent columns inside one
    recursive body instance, creating a *shifting variable*
    (Condition 1 fails);
  - ``extra-touch``: make one rule touch a column outside its class
    through a fresh EDB atom (pairwise equal-or-disjoint touched sets
    fail, and the new subgoal is disconnected from the old ones);
  - ``disconnect``: rename the linking variable of a two-atom chain so
    the nonrecursive subgoals fall into two maximal connected sets
    (Condition 4 fails -- the Section 5 "relaxed" regime);

* draws a random EDB over a small shared constant pool (uniform tuples
  via :func:`repro.workloads.generators.random_relation`, with binary
  relations occasionally replaced by whole-pool chains or cycles so
  long paths and cyclic data appear reliably);

* draws a query: a full class selection, a persistent selection, a
  random partial selection, an all-bound atom, an all-free atom, or a
  selection with a repeated variable.

Every choice comes from one ``random.Random`` seeded at construction,
so a campaign is reproducible from ``(seed, iteration index)`` alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Optional

from ..datalog.atoms import Atom
from ..datalog.database import Database
from ..datalog.programs import Program
from ..datalog.rules import Rule
from ..datalog.terms import Constant, Variable
from ..workloads.generators import chain, constant_pool, cycle, random_relation
from .cases import Case
from .layouts import BuiltSeparable, RuleSpec, SeparableLayout, build_separable

__all__ = ["GeneratorConfig", "CaseGenerator", "MUTATION_NAMES"]

#: The near-miss mutation kinds, in the order they are attempted.
MUTATION_NAMES = ("swap-persistent", "extra-touch", "disconnect")


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs for the random case distribution."""

    max_arity: int = 4
    max_classes: int = 3
    max_rules_per_class: int = 3
    min_pool: int = 3
    max_pool: int = 7
    max_tuples_per_relation: int = 8
    mutant_probability: float = 0.3
    structured_edb_probability: float = 0.25
    free_query_probability: float = 0.1
    repeated_var_probability: float = 0.1


class CaseGenerator:
    """Draws an endless, reproducible stream of differential cases."""

    def __init__(
        self,
        seed: int = 0,
        config: GeneratorConfig = GeneratorConfig(),
    ) -> None:
        self.seed = seed
        self.config = config
        self._rng = random.Random(seed)

    # -- layouts -----------------------------------------------------------

    def draw_layout(self) -> SeparableLayout:
        rng, cfg = self._rng, self.config
        arity = rng.randint(1, cfg.max_arity)
        class_count = rng.randint(0, min(cfg.max_classes, arity))
        assignment = tuple(
            rng.randint(0, class_count) for _ in range(arity)
        )
        used = sorted({c for c in assignment if c > 0})
        # Renumber so class ids are contiguous 1..n (layout invariant).
        renumber = {c: i + 1 for i, c in enumerate(used)}
        assignment = tuple(
            renumber.get(c, 0) for c in assignment
        )
        specs = []
        for cls in sorted(renumber.values()):
            for r in range(rng.randint(1, cfg.max_rules_per_class)):
                specs.append(
                    RuleSpec(
                        class_index=cls,
                        rule_number=r,
                        two_atoms=rng.random() < 0.5,
                    )
                )
        return SeparableLayout(
            arity=arity, assignment=assignment, rule_specs=tuple(specs)
        )

    # -- mutations ---------------------------------------------------------

    def _mutate_swap_persistent(
        self, built: BuiltSeparable
    ) -> Optional[list[Rule]]:
        """Swap two persistent columns in one recursive body instance.

        The head keeps ``Vp`` at position ``p`` while the recursive atom
        now carries it at position ``q``: a shifting variable.
        """
        pers = built.layout.pers_positions
        recursive = [b for b in built.built_rules if not b.is_exit]
        if len(pers) < 2 or not recursive:
            return None
        victim = self._rng.choice(recursive)
        p, q = self._rng.sample(list(pers), 2)
        predicate = built.layout.predicate

        def swap(atom: Atom) -> Atom:
            args = list(atom.args)
            args[p], args[q] = args[q], args[p]
            return Atom(atom.predicate, tuple(args))

        rules = []
        for b in built.built_rules:
            if b is victim:
                body = tuple(
                    swap(a) if a.predicate == predicate else a
                    for a in b.rule.body
                )
                rules.append(Rule(b.rule.head, body))
            else:
                rules.append(b.rule)
        return rules

    def _mutate_extra_touch(
        self, built: BuiltSeparable
    ) -> Optional[list[Rule]]:
        """Make one class rule touch a column outside its class.

        Position ``p`` (persistent or from another class) gets a fresh
        body variable bound through a new EDB atom ``xtra(Vp+1, X)``,
        so the rule's touched set is neither equal to nor disjoint from
        its old class, and the new subgoal is disconnected from the old
        nonrecursive subgoals.
        """
        recursive = [b for b in built.built_rules if not b.is_exit]
        candidates = [
            (b, p)
            for b in recursive
            for p in range(built.layout.arity)
            if p not in b.positions
        ]
        if not candidates:
            return None
        victim, p = self._rng.choice(candidates)
        predicate = built.layout.predicate
        extra_var = Variable("X_extra")
        extra_atom = Atom("xtra", (Variable(f"V{p + 1}"), extra_var))

        rules = []
        for b in built.built_rules:
            if b is victim:
                body = []
                for a in b.rule.body:
                    if a.predicate == predicate:
                        args = list(a.args)
                        args[p] = extra_var
                        body.append(extra_atom)
                        body.append(Atom(a.predicate, tuple(args)))
                    else:
                        body.append(a)
                rules.append(Rule(b.rule.head, tuple(body)))
            else:
                rules.append(b.rule)
        return rules

    def _mutate_disconnect(
        self, built: BuiltSeparable
    ) -> Optional[list[Rule]]:
        """Break the variable link of a two-atom chain (Condition 4).

        Renaming the existential ``M`` in the second atom leaves the
        nonrecursive subgoals in two maximal connected sets; conditions
        1-3 still hold, so this lands exactly in the relaxed regime.
        """
        chains = [
            b for b in built.built_rules if b.two_atoms and not b.is_exit
        ]
        if not chains:
            return None
        victim = self._rng.choice(chains)
        rules = []
        for b in built.built_rules:
            if b is victim:
                body = []
                for a in b.rule.body:
                    if a.predicate.endswith("b") and Variable("M") in a.args:
                        body.append(
                            a.substitute({Variable("M"): Variable("M2")})
                        )
                    else:
                        body.append(a)
                rules.append(Rule(b.rule.head, tuple(body)))
            else:
                rules.append(b.rule)
        return rules

    def _maybe_mutate(
        self, built: BuiltSeparable
    ) -> tuple[list[Rule], Optional[str], list[tuple[str, int]]]:
        """Return (rules, mutation name or None, extra EDB specs)."""
        if self._rng.random() >= self.config.mutant_probability:
            return list(built.rules), None, []
        mutators = {
            "swap-persistent": self._mutate_swap_persistent,
            "extra-touch": self._mutate_extra_touch,
            "disconnect": self._mutate_disconnect,
        }
        names = list(MUTATION_NAMES)
        self._rng.shuffle(names)
        for name in names:
            mutated = mutators[name](built)
            if mutated is not None:
                extra = [("xtra", 2)] if name == "extra-touch" else []
                return mutated, name, extra
        return list(built.rules), None, []

    # -- data and queries --------------------------------------------------

    def draw_database(
        self, edb_specs: list[tuple[str, int]], pool: list[str]
    ) -> Database:
        rng, cfg = self._rng, self.config
        db = Database()
        for name, arity in edb_specs:
            db.ensure(name, arity)
            if (
                arity == 2
                and rng.random() < cfg.structured_edb_probability
            ):
                shape = chain if rng.random() < 0.5 else cycle
                for fact in shape(len(pool), prefix="c"):
                    db.add_fact(name, fact)
                continue
            count = rng.randint(0, cfg.max_tuples_per_relation)
            for fact in random_relation(arity, count, pool, rng=rng):
                db.add_fact(name, fact)
        return db

    def draw_query(
        self, layout: SeparableLayout, pool: list[str]
    ) -> Atom:
        rng, cfg = self._rng, self.config
        arity = layout.arity
        classes = layout.classes
        pers = layout.pers_positions

        bound: set[int] = set()
        if rng.random() < cfg.free_query_probability:
            pass  # all-free query: strategies fall back to materialization
        else:
            mode = rng.choice(["full_class", "pers", "random", "all_bound"])
            if mode == "full_class" and classes:
                bound |= set(rng.choice(classes))
            elif mode == "pers" and pers:
                bound.add(rng.choice(pers))
            elif mode == "all_bound":
                bound = set(range(arity))
            else:
                bound = {p for p in range(arity) if rng.random() < 0.5}
                if not bound:
                    bound.add(rng.randrange(arity))

        free = [p for p in range(arity) if p not in bound]
        repeated: dict[int, str] = {}
        if (
            len(free) >= 2
            and rng.random() < cfg.repeated_var_probability
        ):
            a, b = rng.sample(free, 2)
            repeated[a] = repeated[b] = "QR"

        args = tuple(
            Constant(rng.choice(pool))
            if p in bound
            else Variable(repeated.get(p, f"Q{p}"))
            for p in range(arity)
        )
        return Atom(layout.predicate, args)

    # -- cases -------------------------------------------------------------

    def draw_case(self) -> Case:
        rng, cfg = self._rng, self.config
        layout = self.draw_layout()
        built = build_separable(layout)
        rules, mutation, extra_specs = self._maybe_mutate(built)
        pool = constant_pool(rng.randint(cfg.min_pool, cfg.max_pool))
        db = self.draw_database(list(built.edb_specs) + extra_specs, pool)
        query = self.draw_query(layout, pool)
        return Case(
            program=Program(rules),
            database=db,
            query=query,
            expect_separable=(mutation is None),
            note=(
                f"seed={self.seed} mutation={mutation or 'none'} "
                f"arity={layout.arity} classes={len(layout.classes)}"
            ),
        )

    def cases(self, count: int) -> Iterator[Case]:
        for _ in range(count):
            yield self.draw_case()
