"""Differential test cases and their on-disk repro format.

A :class:`Case` is one ``(program, database, query)`` triple plus the
generator's ground truth about it (is the program separable by
construction, or a near-miss mutant known not to be?).  Cases
round-trip through ordinary ``.dl`` files so any failing case the
fuzzer shrinks can be committed to a corpus directory, replayed by the
test suite, and inspected (or bisected) by hand with the normal
``repro-datalog run``/``detect`` tooling.

Repro file format: a standard Datalog file (rules + facts + one query)
preceded by structured ``%`` comments::

    % differential-repro v1
    % expect-separable: true        (or false / unknown)
    % note: seed=7 case=12 kind=answers strategy=counting

The parser ignores comments, so the body parses as a normal program.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Union

from ..datalog.atoms import Atom
from ..datalog.database import Database
from ..datalog.errors import ReproError
from ..datalog.parser import parse_program
from ..datalog.pretty import database_to_text, program_to_text
from ..datalog.programs import Program

__all__ = ["Case", "load_case", "save_case", "load_corpus"]

_HEADER = "% differential-repro v1"


@dataclass(frozen=True)
class Case:
    """One differential test case with generator ground truth.

    ``expect_separable`` is ``True`` for programs separable by
    construction, ``False`` for near-miss mutants built to violate one
    condition of Definition 2.4, and ``None`` when no ground truth is
    claimed (hand-written corpus entries may leave it open).
    """

    program: Program
    database: Database
    query: Atom
    expect_separable: bool | None = None
    note: str = ""

    def with_note(self, note: str) -> "Case":
        return replace(self, note=note)

    def size(self) -> tuple[int, int]:
        """(rule count, fact count) -- the shrinker's progress measure."""
        return (len(self.program), self.database.total_tuples())

    def to_text(self) -> str:
        """The replayable repro-file text for this case."""
        expect = (
            "unknown"
            if self.expect_separable is None
            else str(self.expect_separable).lower()
        )
        lines = [_HEADER, f"% expect-separable: {expect}"]
        if self.note:
            lines.append(f"% note: {self.note}")
        body = program_to_text(self.program)
        facts = database_to_text(self.database)
        if body:
            lines.append(body)
        if facts:
            lines.append(facts)
        lines.append(f"{self.query}?")
        return "\n".join(lines) + "\n"


def _parse_expect(text: str) -> bool | None:
    value = text.strip().lower()
    if value == "true":
        return True
    if value == "false":
        return False
    return None


def case_from_text(text: str) -> Case:
    """Parse repro-file text back into a :class:`Case`."""
    expect: bool | None = None
    note = ""
    for line in text.splitlines():
        stripped = line.strip()
        if stripped.startswith("% expect-separable:"):
            expect = _parse_expect(stripped.split(":", 1)[1])
        elif stripped.startswith("% note:"):
            note = stripped.split(":", 1)[1].strip()
    parsed = parse_program(text)
    if not parsed.queries:
        raise ValueError("repro file contains no query statement")
    return Case(
        program=parsed.program,
        database=parsed.database,
        query=parsed.queries[0],
        expect_separable=expect,
        note=note,
    )


def load_case(path: Union[str, Path]) -> Case:
    """Load one repro file; errors name the offending file."""
    source = Path(path)
    try:
        return case_from_text(source.read_text())
    except (ReproError, ValueError) as exc:
        raise ReproError(f"{source}: {exc}") from exc


def save_case(case: Case, path: Union[str, Path]) -> Path:
    """Write one repro file (creating parent directories)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(case.to_text())
    return target


def load_corpus(directory: Union[str, Path]) -> list[tuple[Path, Case]]:
    """All ``*.dl`` repro files in a corpus directory, sorted by name."""
    corpus_dir = Path(directory)
    if not corpus_dir.is_dir():
        return []
    return [
        (path, load_case(path))
        for path in sorted(corpus_dir.glob("*.dl"))
    ]
