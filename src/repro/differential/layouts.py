"""Separable-by-construction program layouts.

A :class:`SeparableLayout` is an explicit, serializable description of a
separable recursion in the shape Definition 2.4 admits:

* an arity ``k`` with every position assigned either to one of up to
  three equivalence classes or to the persistent remainder;
* per class, 1-3 recursive rules whose nonrecursive subgoals form one
  connected set touching exactly that class's columns in the head and
  the recursive body instance (one wide atom, or a chain of two atoms
  linked by an existential variable);
* the exit rule ``t(V1..Vk) :- t0(V1..Vk).``.

:func:`build_separable` turns a layout into concrete rules plus the EDB
signature the rules consume.  Both the hypothesis strategies in
``tests/property/strategies.py`` and the seeded fuzz generator in
:mod:`repro.differential.generator` build programs through this module,
so the two test harnesses cannot silently drift apart; the near-miss
mutants in the generator also rely on the per-rule metadata
(:class:`BuiltRule`) to know which structural invariant each mutation
breaks.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datalog.atoms import Atom
from ..datalog.programs import Program
from ..datalog.rules import Rule
from ..datalog.terms import Variable

__all__ = [
    "RuleSpec",
    "SeparableLayout",
    "BuiltRule",
    "BuiltSeparable",
    "build_separable",
]


@dataclass(frozen=True)
class RuleSpec:
    """Shape of one recursive rule inside an equivalence class.

    ``two_atoms`` selects between one wide nonrecursive atom
    ``e(head cols, body cols)`` and a chain ``ea(head cols, M) &
    eb(M, body cols)`` connected through the existential ``M``.
    """

    class_index: int
    rule_number: int
    two_atoms: bool


@dataclass(frozen=True)
class SeparableLayout:
    """A complete description of one separable recursion.

    ``assignment`` maps each 0-based position to a class id; class id 0
    means *persistent*, ids ``1..n`` are real equivalence classes.
    Class ids must be contiguous and each non-zero id used by some
    position must have at least one :class:`RuleSpec`.
    """

    arity: int
    assignment: tuple[int, ...]
    rule_specs: tuple[RuleSpec, ...]
    predicate: str = "t"
    exit_predicate: str = "t0"

    def __post_init__(self) -> None:
        if len(self.assignment) != self.arity:
            raise ValueError(
                f"assignment has {len(self.assignment)} entries for "
                f"arity {self.arity}"
            )
        used = {c for c in self.assignment if c > 0}
        specced = {s.class_index for s in self.rule_specs}
        if used != specced:
            raise ValueError(
                f"classes {sorted(used)} assigned but rules given for "
                f"{sorted(specced)}"
            )

    @property
    def class_positions(self) -> dict[int, tuple[int, ...]]:
        """``{class id: positions}`` for the real classes (id >= 1)."""
        positions: dict[int, list[int]] = {}
        for p, cls in enumerate(self.assignment):
            if cls > 0:
                positions.setdefault(cls, []).append(p)
        return {c: tuple(ps) for c, ps in sorted(positions.items())}

    @property
    def classes(self) -> list[list[int]]:
        """Class position lists in class-id order (hypothesis API shape)."""
        return [list(ps) for ps in self.class_positions.values()]

    @property
    def pers_positions(self) -> tuple[int, ...]:
        """Positions in the persistent remainder."""
        return tuple(
            p for p, cls in enumerate(self.assignment) if cls == 0
        )


@dataclass(frozen=True)
class BuiltRule:
    """One constructed rule plus the structural facts mutations need."""

    rule: Rule
    class_index: int  # 0 for the exit rule
    positions: tuple[int, ...]
    two_atoms: bool

    @property
    def is_exit(self) -> bool:
        return self.class_index == 0


@dataclass(frozen=True)
class BuiltSeparable:
    """The output of :func:`build_separable`."""

    layout: SeparableLayout
    built_rules: tuple[BuiltRule, ...]
    edb_specs: tuple[tuple[str, int], ...]

    @property
    def rules(self) -> tuple[Rule, ...]:
        return tuple(b.rule for b in self.built_rules)

    @property
    def program(self) -> Program:
        return Program(self.rules)


def head_variables(arity: int) -> tuple[Variable, ...]:
    """The canonical rectified head ``(V1, ..., Vk)``."""
    return tuple(Variable(f"V{i + 1}") for i in range(arity))


def build_separable(layout: SeparableLayout) -> BuiltSeparable:
    """Construct the rules and EDB signature a layout describes.

    The construction is exactly the one the hypothesis strategies used
    to inline: per class and rule, fresh body variables ``W<p+1>`` at
    the class positions, head variables elsewhere, and nonrecursive
    subgoals named ``e<class>_<rule>`` (with ``a``/``b`` suffixes for
    the two-atom chain shape).
    """
    arity = layout.arity
    head_vars = head_variables(arity)
    class_positions = layout.class_positions
    built: list[BuiltRule] = []
    edb_specs: list[tuple[str, int]] = []

    for spec in layout.rule_specs:
        positions = class_positions[spec.class_index]
        width = len(positions)
        body_vars = {p: Variable(f"W{p + 1}") for p in positions}
        recursive_args = tuple(
            body_vars.get(p, head_vars[p]) for p in range(arity)
        )
        name = f"e{spec.class_index}_{spec.rule_number}"
        if spec.two_atoms:
            mid = Variable("M")
            first = Atom(
                name + "a",
                tuple(head_vars[p] for p in positions) + (mid,),
            )
            second = Atom(
                name + "b",
                (mid,) + tuple(body_vars[p] for p in positions),
            )
            nonrec = (first, second)
            edb_specs.append((name + "a", width + 1))
            edb_specs.append((name + "b", width + 1))
        else:
            wide = Atom(
                name,
                tuple(head_vars[p] for p in positions)
                + tuple(body_vars[p] for p in positions),
            )
            nonrec = (wide,)
            edb_specs.append((name, 2 * width))
        built.append(
            BuiltRule(
                rule=Rule(
                    Atom(layout.predicate, head_vars),
                    nonrec + (Atom(layout.predicate, recursive_args),),
                ),
                class_index=spec.class_index,
                positions=positions,
                two_atoms=spec.two_atoms,
            )
        )

    built.append(
        BuiltRule(
            rule=Rule(
                Atom(layout.predicate, head_vars),
                (Atom(layout.exit_predicate, head_vars),),
            ),
            class_index=0,
            positions=(),
            two_atoms=False,
        )
    )
    edb_specs.append((layout.exit_predicate, arity))
    return BuiltSeparable(
        layout=layout,
        built_rules=tuple(built),
        edb_specs=tuple(edb_specs),
    )
