"""The differential oracle: one case, every applicable strategy, diffed.

Theorem 2.1 / Theorem 3.1 promise that every strategy in
:data:`repro.engine.STRATEGIES` computes the same answer set on any
query it applies to.  :func:`run_case` makes that claim executable for
one :class:`~repro.differential.cases.Case`:

* the **reference** answer set is semi-naive materialization plus a
  selection filter (the same oracle the unit suite uses);
* every strategy :meth:`~repro.engine.Engine.advise` deems applicable
  (plus ``auto``) runs on a *fresh* engine and its answers are diffed
  against the reference;
* the separability **detection verdict** is checked against the
  generator's ground truth (separable by construction, or a near-miss
  mutant built to violate Definition 2.4);
* per-run :class:`~repro.stats.EvaluationStats` **sanity invariants**
  are checked -- counters never go negative, duplicate elimination
  never *increases* the produced-tuple count below a materialized
  relation's size, and the recorded ``ans`` relation bounds the answer
  count;
* every run records a :class:`~repro.observability.Tracer` and its
  span forest is checked with
  :func:`~repro.observability.trace_violations` -- fixpoint delta
  series must be monotone-terminating and sum-consistent with the
  final relation sizes, carry loops must satisfy Lemma 3.4's
  ``seed + sum(carries) == |seen|``, and no span may be left open even
  when the strategy exits via ``BudgetExceeded`` or
  ``CyclicDataError``.

Exceptions the paper itself predicts (Counting and the no-dedup
ablation on cyclic data, budget blowups of the exponential baselines)
are tolerated as *skips*; anything else an applicable strategy raises
is a finding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from ..budget import Budget
from ..core.detection import analyze_recursion
from ..datalog.errors import (
    BudgetExceeded,
    CyclicDataError,
    ReproError,
)
from ..datalog.seminaive import seminaive_evaluate
from ..engine import STRATEGIES, Engine
from ..core.api import _matches_query
from ..observability import Tracer, trace_violations
from ..stats import EvaluationStats
from .cases import Case

__all__ = [
    "DEFAULT_FUZZ_BUDGET",
    "Disagreement",
    "StrategyOutcome",
    "OracleVerdict",
    "applicable_strategies",
    "reference_answers",
    "run_case",
    "make_failure_predicate",
]

#: Bounds each strategy run so divergent methods (no-dedup on cyclic
#: data) terminate; generous enough that generated cases never trip it.
DEFAULT_FUZZ_BUDGET = Budget(
    max_relation_tuples=100_000,
    max_total_tuples=500_000,
    max_iterations=5_000,
)

#: Exceptions the paper predicts for specific (strategy, data) pairs;
#: runs ending in one of these are skipped, not failed (Lemma 3.4).
_TOLERATED = (CyclicDataError, BudgetExceeded)


@dataclass(frozen=True)
class Disagreement:
    """One oracle finding.

    ``kind`` is ``answers`` (answer-set mismatch), ``detection``
    (separability verdict contradicts ground truth), ``stats`` (a
    statistics invariant is violated), ``trace`` (the recorded span
    forest breaks a fixpoint invariant -- see
    :func:`repro.observability.trace_violations`), or ``error`` (an
    applicable strategy raised an unexpected exception).
    """

    kind: str
    strategy: str
    detail: str
    #: Compact profile of the offending run (iteration counts, relation
    #: sizes, span summaries) -- evidence travelling with the finding,
    #: so a report can be triaged without re-running the case.  Excluded
    #: from equality/hashing: two findings are the "same" when their
    #: diagnosis matches, however the run happened to be timed.
    profile: Optional[dict] = field(default=None, compare=False)

    @property
    def signature(self) -> tuple[str, str]:
        """What the shrinker holds fixed while minimizing."""
        return (self.kind, self.strategy)

    def __str__(self) -> str:
        return f"[{self.kind}] {self.strategy}: {self.detail}"


@dataclass(frozen=True)
class StrategyOutcome:
    """The result of running one strategy on one case."""

    strategy: str
    answers: Optional[frozenset] = None
    stats: Optional[EvaluationStats] = None
    skipped: Optional[str] = None
    error: Optional[str] = None

    @property
    def ran(self) -> bool:
        return self.answers is not None


@dataclass
class OracleVerdict:
    """Everything :func:`run_case` learned about one case."""

    case: Case
    reference: Optional[frozenset]
    outcomes: dict[str, StrategyOutcome] = field(default_factory=dict)
    disagreements: list[Disagreement] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.disagreements

    @property
    def strategies_run(self) -> list[str]:
        return [s for s, o in self.outcomes.items() if o.ran]

    def summary(self) -> str:
        ran = ", ".join(self.strategies_run) or "none"
        lines = [
            f"query {self.case.query}?  strategies run: {ran}",
        ]
        for d in self.disagreements:
            lines.append(f"  {d}")
        if self.ok:
            lines.append("  all strategies agree")
        return "\n".join(lines)


def reference_answers(case: Case, budget: Budget) -> frozenset:
    """Semi-naive materialization + selection filter (the ground truth)."""
    materialized = seminaive_evaluate(
        case.program, case.database, budget=budget
    )
    return frozenset(
        fact
        for fact in materialized.tuples(case.query.predicate)
        if _matches_query(fact, case.query)
    )


def applicable_strategies(
    case: Case,
    subset: Optional[Iterable[str]] = None,
) -> list[str]:
    """Strategies the engine's own advisor considers applicable.

    ``auto`` is always included (its dispatch decision is itself under
    test); an explicit ``subset`` intersects the list, preserving the
    canonical :data:`~repro.engine.STRATEGIES` order.
    """
    engine = Engine(case.program, case.database)
    advice = engine.advise(case.query)
    names = {"auto", *advice.applicable}
    if subset is not None:
        wanted = set(subset)
        unknown = wanted - set(STRATEGIES)
        if unknown:
            raise ValueError(
                f"unknown strategies {sorted(unknown)}; "
                f"choose from {STRATEGIES}"
            )
        names &= wanted
    return [s for s in STRATEGIES if s in names]


def _stats_violations(
    outcome_answers: frozenset,
    stats: EvaluationStats,
    strategy: str,
    predicate: str,
) -> list[str]:
    """Sanity invariants every run must satisfy (Definition 4.2 side)."""
    problems: list[str] = []
    for name, size in stats.relation_sizes.items():
        if size < 0:
            problems.append(f"relation {name} recorded negative size {size}")
    for counter in ("iterations", "tuples_produced", "tuples_examined"):
        if getattr(stats, counter) < 0:
            problems.append(f"counter {counter} went negative")
    if stats.max_relation_size > stats.total_relation_size:
        problems.append(
            f"max relation size {stats.max_relation_size} exceeds total "
            f"{stats.total_relation_size}"
        )
    if strategy in ("seminaive", "naive"):
        # Every tuple stored in the materialized IDB passed through the
        # produced counter first: dedup never increases `produced`.
        materialized = stats.relation_sizes.get(predicate, 0)
        if stats.tuples_produced < materialized:
            problems.append(
                f"dedup inflated produced: {predicate} holds "
                f"{materialized} tuples but only "
                f"{stats.tuples_produced} were produced"
            )
    if "ans" in stats.relation_sizes:
        if len(outcome_answers) > stats.relation_sizes["ans"]:
            problems.append(
                f"answer count {len(outcome_answers)} exceeds recorded "
                f"ans relation size {stats.relation_sizes['ans']}"
            )
    return problems


def _diff_detail(reference: frozenset, answers: frozenset) -> str:
    missing = sorted(reference - answers, key=repr)[:5]
    extra = sorted(answers - reference, key=repr)[:5]
    parts = []
    if missing:
        parts.append(f"missing {missing}")
    if extra:
        parts.append(f"extra {extra}")
    return (
        f"{len(answers)} answers vs {len(reference)} reference; "
        + "; ".join(parts)
    )


def _profile_summary(
    strategy: str,
    stats: Optional[EvaluationStats],
    tracer: Tracer,
) -> dict:
    """Evidence attached to findings: what the offending run did.

    A trimmed-down cousin of the CLI profiler's report -- the
    Definition 4.2 totals plus one entry per recorded span -- small
    enough to embed in every :class:`Disagreement` so a fuzz report
    can be triaged without replaying the case.
    """
    spans: list[dict] = []

    def walk(span, depth: int) -> None:
        entry: dict = {
            "name": span.name, "depth": depth, "status": span.status,
        }
        if span.attrs:
            entry["attrs"] = dict(span.attrs)
        if span.counters:
            entry["counters"] = dict(sorted(span.counters.items()))
        spans.append(entry)
        for child in span.children:
            walk(child, depth + 1)

    for root in tracer.roots:
        walk(root, 0)
    summary: dict = {"strategy": strategy, "spans": spans}
    if stats is not None:
        summary.update(
            iterations=stats.iterations,
            tuples_produced=stats.tuples_produced,
            tuples_examined=stats.tuples_examined,
            max_relation_size=stats.max_relation_size,
            relation_sizes=dict(stats.relation_sizes),
        )
    return summary


def _append_trace_findings(
    verdict: "OracleVerdict",
    strategy: str,
    tracer: Tracer,
    profile: Optional[dict] = None,
) -> None:
    for problem in trace_violations(tracer):
        verdict.disagreements.append(
            Disagreement(kind="trace", strategy=strategy, detail=problem,
                         profile=profile)
        )


def _run_parallel_sweep(
    verdict: OracleVerdict,
    case: Case,
    budget: Budget,
    parallel_workers: Sequence[int],
) -> None:
    """Cross-check the worker-pool evaluator against the reference.

    For each requested worker count the Separable strategy re-runs on a
    fresh engine with an *eager* :class:`~repro.parallel.ParallelConfig`
    (thresholds floored so even corpus-sized inputs exercise the remote
    branch fan-out and carry partitioning).  Outcomes are recorded as
    ``parallel[w]``; answer diffs, stats invariants, and trace
    invariants are held to exactly the serial standard, and each
    finding's profile carries the worker count.
    """
    from ..parallel import ParallelConfig, get_executor

    if "separable" not in applicable_strategies(case):
        return
    for workers in parallel_workers:
        name = f"parallel[{workers}]"
        executor = get_executor(ParallelConfig.eager(workers))
        engine = Engine(case.program, case.database, budget=budget)
        stats = EvaluationStats()
        tracer = Tracer()
        try:
            result = engine.query(
                case.query, strategy="separable", stats=stats,
                tracer=tracer, parallel=executor,
            )
        except _TOLERATED as exc:
            verdict.outcomes[name] = StrategyOutcome(
                strategy=name, skipped=str(exc)
            )
            profile = _profile_summary(
                name, getattr(exc, "stats", None) or stats, tracer
            )
            profile["parallel_workers"] = workers
            _append_trace_findings(verdict, name, tracer, profile)
            continue
        except ReproError as exc:
            verdict.outcomes[name] = StrategyOutcome(
                strategy=name, error=str(exc)
            )
            profile = _profile_summary(name, stats, tracer)
            profile["parallel_workers"] = workers
            verdict.disagreements.append(
                Disagreement(
                    kind="error",
                    strategy=name,
                    detail=f"{type(exc).__name__}: {exc}",
                    profile=profile,
                )
            )
            continue
        verdict.outcomes[name] = StrategyOutcome(
            strategy=name, answers=result.answers, stats=result.stats
        )
        profile = _profile_summary(name, result.stats, tracer)
        profile["parallel_workers"] = workers
        _append_trace_findings(verdict, name, tracer, profile)
        if result.answers != verdict.reference:
            verdict.disagreements.append(
                Disagreement(
                    kind="answers",
                    strategy=name,
                    detail=_diff_detail(verdict.reference, result.answers),
                    profile=profile,
                )
            )
        for problem in _stats_violations(
            result.answers, result.stats, "separable",
            case.query.predicate,
        ):
            verdict.disagreements.append(
                Disagreement(kind="stats", strategy=name, detail=problem,
                             profile=profile)
            )


def _run_order_sweep(
    verdict: OracleVerdict,
    case: Case,
    budget: Budget,
    orders: Sequence[str],
) -> None:
    """Cross-check the cost-based join orders against the reference.

    For each requested order (typically ``cost`` and ``adaptive``) the
    semi-naive strategy re-runs on a fresh engine constructed with that
    ``order=``.  Outcomes are recorded as ``order[cost]`` etc.; answer
    diffs, stats invariants, and trace invariants are held to exactly
    the default-order standard, and each finding's profile carries the
    order name plus the replan counters -- so a planner that changes
    *answers* (not just join order) surfaces as a differential finding.
    """
    for order in orders:
        name = f"order[{order}]"
        engine = Engine(
            case.program, case.database, budget=budget, order=order,
        )
        stats = EvaluationStats()
        tracer = Tracer()
        try:
            result = engine.query(
                case.query, strategy="seminaive", stats=stats,
                tracer=tracer,
            )
        except _TOLERATED as exc:
            verdict.outcomes[name] = StrategyOutcome(
                strategy=name, skipped=str(exc)
            )
            profile = _profile_summary(
                name, getattr(exc, "stats", None) or stats, tracer
            )
            profile["order"] = order
            _append_trace_findings(verdict, name, tracer, profile)
            continue
        except ReproError as exc:
            verdict.outcomes[name] = StrategyOutcome(
                strategy=name, error=str(exc)
            )
            profile = _profile_summary(name, stats, tracer)
            profile["order"] = order
            verdict.disagreements.append(
                Disagreement(
                    kind="error",
                    strategy=name,
                    detail=f"{type(exc).__name__}: {exc}",
                    profile=profile,
                )
            )
            continue
        verdict.outcomes[name] = StrategyOutcome(
            strategy=name, answers=result.answers, stats=result.stats
        )
        profile = _profile_summary(name, result.stats, tracer)
        profile["order"] = order
        profile["plan_replans"] = tracer.counter_total("plan_replans")
        profile["plan_misestimates"] = tracer.counter_total(
            "plan_misestimates"
        )
        _append_trace_findings(verdict, name, tracer, profile)
        if result.answers != verdict.reference:
            verdict.disagreements.append(
                Disagreement(
                    kind="answers",
                    strategy=name,
                    detail=_diff_detail(verdict.reference, result.answers),
                    profile=profile,
                )
            )
        for problem in _stats_violations(
            result.answers, result.stats, "seminaive",
            case.query.predicate,
        ):
            verdict.disagreements.append(
                Disagreement(kind="stats", strategy=name, detail=problem,
                             profile=profile)
            )


def _run_backend_sweep(
    verdict: OracleVerdict,
    case: Case,
    budget: Budget,
    backends: Sequence[str],
    strategies: Optional[Sequence[str]] = None,
    orders: Optional[Sequence[str]] = None,
) -> None:
    """Cross-check alternative storage backends against the reference.

    For each requested backend the case's database is migrated once
    (:func:`repro.storage.ensure_backend`) and every applicable
    strategy re-runs on a fresh engine over the migrated database;
    when ``orders`` are requested, semi-naive additionally re-runs once
    per order.  Outcomes are recorded as ``backend[sqlite:auto]``,
    ``backend[sqlite:order-cost]`` etc.; answer diffs, stats
    invariants, and trace invariants are held to exactly the in-memory
    standard -- answer-set equality against the same reference is what
    makes the sorted answer digests byte-identical across backends.
    """
    from ..storage import ensure_backend

    for backend in backends:
        db = ensure_backend(case.database, backend)
        runs: list[tuple[str, str, dict]] = [
            (strategy, strategy, {})
            for strategy in applicable_strategies(case, strategies)
        ]
        for order in orders or ():
            runs.append((f"order-{order}", "seminaive", {"order": order}))
        for label, strategy, engine_kw in runs:
            name = f"backend[{backend}:{label}]"
            engine = Engine(case.program, db, budget=budget, **engine_kw)
            stats = EvaluationStats()
            tracer = Tracer()
            try:
                result = engine.query(
                    case.query, strategy=strategy, stats=stats,
                    tracer=tracer,
                )
            except _TOLERATED as exc:
                verdict.outcomes[name] = StrategyOutcome(
                    strategy=name, skipped=str(exc)
                )
                profile = _profile_summary(
                    name, getattr(exc, "stats", None) or stats, tracer
                )
                profile["backend"] = backend
                _append_trace_findings(verdict, name, tracer, profile)
                continue
            except ReproError as exc:
                verdict.outcomes[name] = StrategyOutcome(
                    strategy=name, error=str(exc)
                )
                profile = _profile_summary(name, stats, tracer)
                profile["backend"] = backend
                verdict.disagreements.append(
                    Disagreement(
                        kind="error",
                        strategy=name,
                        detail=f"{type(exc).__name__}: {exc}",
                        profile=profile,
                    )
                )
                continue
            verdict.outcomes[name] = StrategyOutcome(
                strategy=name, answers=result.answers, stats=result.stats
            )
            profile = _profile_summary(name, result.stats, tracer)
            profile["backend"] = backend
            _append_trace_findings(verdict, name, tracer, profile)
            if result.answers != verdict.reference:
                verdict.disagreements.append(
                    Disagreement(
                        kind="answers",
                        strategy=name,
                        detail=_diff_detail(
                            verdict.reference, result.answers
                        ),
                        profile=profile,
                    )
                )
            for problem in _stats_violations(
                result.answers, result.stats, result.strategy,
                case.query.predicate,
            ):
                verdict.disagreements.append(
                    Disagreement(kind="stats", strategy=name,
                                 detail=problem, profile=profile)
                )


def run_case(
    case: Case,
    strategies: Optional[Sequence[str]] = None,
    budget: Budget = DEFAULT_FUZZ_BUDGET,
    parallel_workers: Optional[Sequence[int]] = None,
    orders: Optional[Sequence[str]] = None,
    backends: Optional[Sequence[str]] = None,
) -> OracleVerdict:
    """Evaluate a case under every applicable strategy and diff results.

    ``parallel_workers`` additionally runs the Separable strategy under
    the worker-pool executor once per listed worker count (when the
    case is separable at all), diffing each run against the reference
    -- the parallel-vs-serial differential harness.  ``orders``
    additionally re-runs semi-naive evaluation once per listed join
    order (``cost``, ``adaptive``) on a fresh engine, diffing each run
    against the reference -- the planner-vs-greedy differential
    harness.  ``backends`` re-runs every applicable strategy (and every
    listed order) over the case migrated onto each named storage
    backend -- the backend-vs-memory differential harness.
    """
    verdict = OracleVerdict(case=case, reference=None)

    # Ground-truth detection check (database-independent, so it runs
    # even when evaluation itself would blow the budget).
    report = analyze_recursion(case.program, case.query.predicate)
    if (
        case.expect_separable is not None
        and report.separable != case.expect_separable
    ):
        verdict.disagreements.append(
            Disagreement(
                kind="detection",
                strategy="detector",
                detail=(
                    f"generator says separable={case.expect_separable} "
                    f"but analyze_recursion says {report.separable}:\n"
                    + report.explain()
                ),
            )
        )

    try:
        verdict.reference = reference_answers(case, budget)
    except _TOLERATED as exc:
        # The case itself is too heavy for the budget: inconclusive.
        verdict.outcomes["seminaive"] = StrategyOutcome(
            strategy="seminaive", skipped=f"reference: {exc}"
        )
        return verdict

    for strategy in applicable_strategies(case, strategies):
        engine = Engine(case.program, case.database, budget=budget)
        stats = EvaluationStats()
        tracer = Tracer()
        try:
            result = engine.query(
                case.query, strategy=strategy, stats=stats, tracer=tracer
            )
        except _TOLERATED as exc:
            verdict.outcomes[strategy] = StrategyOutcome(
                strategy=strategy, skipped=str(exc)
            )
            # Even a tolerated abort must unwind every span (exception
            # safety of ``Tracer.span``); invariant checks on the
            # aborted loops themselves are status-gated and skipped.
            profile = _profile_summary(
                strategy, getattr(exc, "stats", None) or stats, tracer
            )
            _append_trace_findings(verdict, strategy, tracer, profile)
            continue
        except ReproError as exc:
            verdict.outcomes[strategy] = StrategyOutcome(
                strategy=strategy, error=str(exc)
            )
            verdict.disagreements.append(
                Disagreement(
                    kind="error",
                    strategy=strategy,
                    detail=f"{type(exc).__name__}: {exc}",
                    profile=_profile_summary(strategy, stats, tracer),
                )
            )
            continue
        verdict.outcomes[strategy] = StrategyOutcome(
            strategy=strategy, answers=result.answers, stats=result.stats
        )
        profile = _profile_summary(strategy, result.stats, tracer)
        _append_trace_findings(verdict, strategy, tracer, profile)
        if result.answers != verdict.reference:
            verdict.disagreements.append(
                Disagreement(
                    kind="answers",
                    strategy=strategy,
                    detail=_diff_detail(verdict.reference, result.answers),
                    profile=profile,
                )
            )
        for problem in _stats_violations(
            result.answers, result.stats, result.strategy,
            case.query.predicate,
        ):
            verdict.disagreements.append(
                Disagreement(kind="stats", strategy=strategy, detail=problem,
                             profile=profile)
            )
    if parallel_workers:
        _run_parallel_sweep(verdict, case, budget, parallel_workers)
    if orders:
        _run_order_sweep(verdict, case, budget, orders)
    if backends:
        _run_backend_sweep(verdict, case, budget, backends,
                           strategies=strategies, orders=orders)
    return verdict


def make_failure_predicate(
    signature: tuple[str, str],
    strategies: Optional[Sequence[str]] = None,
    budget: Budget = DEFAULT_FUZZ_BUDGET,
    parallel_workers: Optional[Sequence[int]] = None,
    orders: Optional[Sequence[str]] = None,
    backends: Optional[Sequence[str]] = None,
) -> Callable[[Case], bool]:
    """A shrinker predicate: does the case still show *this* failure?

    Holding the ``(kind, strategy)`` signature fixed keeps delta
    debugging from wandering onto an unrelated failure while it deletes
    rules and facts; any exception a mangled candidate raises counts as
    "does not reproduce".
    """

    def still_fails(candidate: Case) -> bool:
        try:
            verdict = run_case(candidate, strategies=strategies,
                               budget=budget,
                               parallel_workers=parallel_workers,
                               orders=orders,
                               backends=backends)
        except Exception:
            return False
        return any(
            d.signature == signature for d in verdict.disagreements
        )

    return still_fails
