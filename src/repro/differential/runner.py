"""Fuzz campaigns: corpus replay + seeded generation + shrink on failure.

:func:`run_fuzz` is the engine behind ``repro-datalog fuzz`` and the
pytest entry point in ``tests/differential/``:

1. every stored corpus case (``*.dl`` repro files) is replayed first --
   the regression half of the oracle;
2. ``iterations`` fresh cases are drawn from a seeded
   :class:`~repro.differential.generator.CaseGenerator` and run through
   :func:`~repro.differential.oracle.run_case`;
3. each failure is minimized with the delta-debugging shrinker while
   the same ``(kind, strategy)`` disagreement persists, and -- when a
   corpus directory is given -- written there as a replayable repro
   file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from ..budget import Budget
from .cases import Case, load_corpus, save_case
from .generator import CaseGenerator, GeneratorConfig
from .oracle import (
    DEFAULT_FUZZ_BUDGET,
    OracleVerdict,
    make_failure_predicate,
    run_case,
)
from .shrinker import shrink_case

__all__ = ["FuzzConfig", "FuzzFailure", "FuzzReport", "run_fuzz"]


@dataclass(frozen=True)
class FuzzConfig:
    """One fuzz campaign's parameters.

    ``parallel_workers`` adds a worker-pool Separable run per listed
    worker count to every case (corpus and generated), cross-checked
    against the reference -- the parallel-vs-serial half of the oracle.
    ``orders`` adds a semi-naive run per listed join order (``cost``,
    ``adaptive``) the same way -- the planner-vs-greedy half.
    ``backends`` re-runs every applicable strategy (and every listed
    order) over each case migrated onto each named storage backend --
    the backend-vs-memory half.
    """

    iterations: int = 200
    seed: int = 0
    strategies: Optional[Sequence[str]] = None
    corpus_dir: Optional[Path] = None
    budget: Budget = DEFAULT_FUZZ_BUDGET
    shrink: bool = True
    max_shrink_attempts: int = 2000
    generator: GeneratorConfig = GeneratorConfig()
    parallel_workers: Optional[Sequence[int]] = None
    orders: Optional[Sequence[str]] = None
    backends: Optional[Sequence[str]] = None


@dataclass
class FuzzFailure:
    """One disagreement, before and after shrinking."""

    index: int
    case: Case
    verdict: OracleVerdict
    shrunk: Optional[Case] = None
    repro_path: Optional[Path] = None
    repro_written: bool = False

    def describe(self) -> str:
        rules, facts = self.case.size()
        lines = [
            f"case #{self.index} ({rules} rules, {facts} facts): "
            + "; ".join(str(d) for d in self.verdict.disagreements)
        ]
        for d in self.verdict.disagreements:
            if d.profile is None:
                continue
            lines.append(
                f"  evidence[{d.strategy}]: "
                f"iterations={d.profile.get('iterations', '?')} "
                f"max_relation={d.profile.get('max_relation_size', '?')} "
                f"examined={d.profile.get('tuples_examined', '?')} "
                f"spans={len(d.profile.get('spans', ()))}"
            )
        if self.shrunk is not None:
            s_rules, s_facts = self.shrunk.size()
            lines.append(
                f"  shrunk to {s_rules} rules, {s_facts} facts"
            )
        if self.repro_path is not None:
            verb = "written to" if self.repro_written else "at"
            lines.append(f"  repro {verb} {self.repro_path}")
        return "\n".join(lines)


@dataclass
class FuzzReport:
    """Everything a campaign did, for CLI output and assertions."""

    config: FuzzConfig
    iterations_run: int = 0
    separable_cases: int = 0
    mutant_cases: int = 0
    strategy_runs: int = 0
    skipped_runs: int = 0
    corpus_replayed: int = 0
    failures: list[FuzzFailure] = field(default_factory=list)
    corpus_failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures and not self.corpus_failures

    def summary(self) -> str:
        lines = [
            f"fuzz: seed={self.config.seed} "
            f"iterations={self.iterations_run} "
            f"(separable={self.separable_cases} "
            f"near-miss={self.mutant_cases}) "
            f"strategy runs={self.strategy_runs} "
            f"skipped={self.skipped_runs} "
            f"corpus replayed={self.corpus_replayed}",
        ]
        for failure in self.corpus_failures:
            lines.append("corpus " + failure.describe())
        for failure in self.failures:
            lines.append(failure.describe())
        lines.append(
            "result: "
            + ("all strategies agree" if self.ok else
               f"{len(self.failures) + len(self.corpus_failures)} "
               f"disagreement(s)")
        )
        return "\n".join(lines)


def _account(report: FuzzReport, verdict: OracleVerdict) -> None:
    for outcome in verdict.outcomes.values():
        if outcome.ran:
            report.strategy_runs += 1
        elif outcome.skipped is not None:
            report.skipped_runs += 1


def _shrink_failure(
    failure: FuzzFailure, config: FuzzConfig
) -> None:
    """Minimize the failing case, preserving its first disagreement."""
    signature = failure.verdict.disagreements[0].signature
    predicate = make_failure_predicate(
        signature, strategies=config.strategies, budget=config.budget,
        parallel_workers=config.parallel_workers, orders=config.orders,
        backends=config.backends,
    )
    result = shrink_case(
        failure.case, predicate, max_attempts=config.max_shrink_attempts
    )
    failure.shrunk = result.case.with_note(
        (failure.case.note + " shrunk").strip()
    )


def run_fuzz(config: FuzzConfig = FuzzConfig()) -> FuzzReport:
    """Run one campaign; see the module docstring for the phases."""
    report = FuzzReport(config=config)

    if config.corpus_dir is not None:
        for path, case in load_corpus(config.corpus_dir):
            verdict = run_case(
                case, strategies=config.strategies, budget=config.budget,
                parallel_workers=config.parallel_workers,
                orders=config.orders,
                backends=config.backends,
            )
            report.corpus_replayed += 1
            _account(report, verdict)
            if not verdict.ok:
                report.corpus_failures.append(
                    FuzzFailure(
                        index=-1, case=case, verdict=verdict,
                        repro_path=path,
                    )
                )

    generator = CaseGenerator(seed=config.seed, config=config.generator)
    for index in range(config.iterations):
        case = generator.draw_case()
        if case.expect_separable:
            report.separable_cases += 1
        else:
            report.mutant_cases += 1
        verdict = run_case(
            case, strategies=config.strategies, budget=config.budget,
            parallel_workers=config.parallel_workers,
            orders=config.orders,
            backends=config.backends,
        )
        report.iterations_run += 1
        _account(report, verdict)
        if verdict.ok:
            continue
        failure = FuzzFailure(index=index, case=case, verdict=verdict)
        if config.shrink:
            _shrink_failure(failure, config)
        if config.corpus_dir is not None:
            kind, strategy = verdict.disagreements[0].signature
            target = (
                Path(config.corpus_dir)
                / f"shrunk-seed{config.seed}-case{index}-"
                  f"{kind}-{strategy}.dl"
            )
            failure.repro_path = save_case(
                failure.shrunk or failure.case, target
            )
            failure.repro_written = True
        report.failures.append(failure)
    return report
