"""Greedy delta-debugging shrinker for failing differential cases.

A raw fuzz failure carries a program with several classes and rules, a
dozen relations, and tens of facts -- far more than the disagreement
needs.  :func:`shrink_case` minimizes the ``(program, database, query)``
triple while a caller-supplied predicate (usually
:func:`repro.differential.oracle.make_failure_predicate`) keeps
reporting the *same* failure:

1. drop whole rules;
2. drop whole relations;
3. drop individual facts;
4. merge constants (rewrite every occurrence of one constant -- in
   facts and in the query -- to a smaller one), shrinking the active
   domain;

each pass greedily and all four repeated to a fixpoint.  The result is
the paper-example-sized repro that gets written to the corpus.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

from ..datalog.atoms import Atom
from ..datalog.database import Database
from ..datalog.programs import Program
from ..datalog.terms import Constant
from .cases import Case

__all__ = ["shrink_case", "ShrinkResult"]


def _rebuild_database(
    facts: dict[str, list[tuple]], arities: dict[str, int]
) -> Database:
    db = Database()
    for name, arity in arities.items():
        db.ensure(name, arity)
        for fact in facts.get(name, ()):
            db.add_fact(name, fact)
    return db


def _database_facts(db: Database) -> dict[str, list[tuple]]:
    return {
        name: sorted(db.tuples(name), key=repr)
        for name in sorted(db.predicates())
    }


def _database_arities(db: Database) -> dict[str, int]:
    return {
        name: db.arity(name) or 0 for name in sorted(db.predicates())
    }


def _merge_constant(case: Case, old: object, new: object) -> Case:
    """Rewrite every occurrence of ``old`` to ``new`` in facts + query."""
    facts = {
        name: [
            tuple(new if v == old else v for v in fact)
            for fact in tuples
        ]
        for name, tuples in _database_facts(case.database).items()
    }
    db = _rebuild_database(facts, _database_arities(case.database))
    query = Atom(
        case.query.predicate,
        tuple(
            Constant(new)
            if isinstance(t, Constant) and t.value == old
            else t
            for t in case.query.args
        ),
    )
    return replace(case, database=db, query=query)


class ShrinkResult:
    """The minimized case plus bookkeeping about the search."""

    def __init__(self, case: Case, attempts: int, passes: int) -> None:
        self.case = case
        self.attempts = attempts
        self.passes = passes

    def __iter__(self):  # allow `case, attempts, passes = result`
        yield self.case
        yield self.attempts
        yield self.passes


def shrink_case(
    case: Case,
    still_fails: Callable[[Case], bool],
    max_attempts: int = 5000,
) -> ShrinkResult:
    """Minimize ``case`` while ``still_fails`` keeps returning True.

    ``still_fails`` must return True for ``case`` itself (the failure
    to preserve); it is expected to swallow exceptions from mangled
    candidates and report them as not-failing.  ``max_attempts`` bounds
    the total number of candidate evaluations.
    """
    if not still_fails(case):
        raise ValueError(
            "shrink_case requires a failing case: still_fails(case) "
            "returned False for the starting point"
        )

    attempts = 0
    passes = 0

    def try_candidate(candidate: Case) -> bool:
        nonlocal attempts
        if attempts >= max_attempts:
            return False
        attempts += 1
        return still_fails(candidate)

    current = case
    changed = True
    while changed and attempts < max_attempts:
        changed = False
        passes += 1

        # Pass 1: drop whole rules.
        index = 0
        while index < len(current.program.rules):
            rules = list(current.program.rules)
            del rules[index]
            try:
                candidate = replace(current, program=Program(rules))
            except Exception:
                index += 1
                continue
            if try_candidate(candidate):
                current = candidate
                changed = True
            else:
                index += 1

        # Pass 2: drop whole relations.
        for name in list(_database_facts(current.database)):
            facts = _database_facts(current.database)
            arities = _database_arities(current.database)
            if not facts.get(name):
                continue
            facts[name] = []
            candidate = replace(
                current, database=_rebuild_database(facts, arities)
            )
            if try_candidate(candidate):
                current = candidate
                changed = True

        # Pass 3: drop individual facts.
        for name in list(_database_facts(current.database)):
            index = 0
            while index < len(_database_facts(current.database)[name]):
                facts = _database_facts(current.database)
                arities = _database_arities(current.database)
                del facts[name][index]
                candidate = replace(
                    current, database=_rebuild_database(facts, arities)
                )
                if try_candidate(candidate):
                    current = candidate
                    changed = True
                else:
                    index += 1

        # Pass 4: merge constants down to the smallest one.
        constants = sorted(
            current.database.distinct_constants()
            | {
                t.value
                for t in current.query.args
                if isinstance(t, Constant)
            },
            key=repr,
        )
        if len(constants) > 1:
            target = constants[0]
            for old in constants[1:]:
                candidate = _merge_constant(current, old, target)
                if try_candidate(candidate):
                    current = candidate
                    changed = True

    return ShrinkResult(current, attempts, passes)
