"""Differential testing: generate, cross-check, shrink, replay.

The paper's central claim (Theorem 2.1 / Theorem 3.1) is that the
Separable schema computes *exactly* the answers of naive evaluation.
This package turns that pairwise-agreement obligation across all nine
strategies in :data:`repro.engine.STRATEGIES` into an executable
artifact:

* :mod:`~repro.differential.layouts` builds guaranteed-separable
  programs from an explicit layout description (shared with the
  hypothesis strategies in ``tests/property/strategies.py``);
* :mod:`~repro.differential.generator` draws seeded random cases --
  separable programs, adversarial *near-miss* non-separable mutants,
  random EDBs, and random full/partial/free selections;
* :mod:`~repro.differential.oracle` evaluates one case under every
  applicable strategy and diffs answer sets, detection verdicts, and
  statistics invariants;
* :mod:`~repro.differential.shrinker` minimizes a failing case by
  greedy delta debugging over rules, relations, facts, and constants;
* :mod:`~repro.differential.cases` serializes cases as replayable
  ``.dl`` repro files (the fuzz corpus);
* :mod:`~repro.differential.runner` drives a whole campaign, backing
  the ``repro-datalog fuzz`` CLI subcommand.
"""

from .cases import Case, load_case, save_case
from .generator import CaseGenerator, GeneratorConfig
from .oracle import (
    DEFAULT_FUZZ_BUDGET,
    Disagreement,
    OracleVerdict,
    StrategyOutcome,
    applicable_strategies,
    make_failure_predicate,
    run_case,
)
from .runner import FuzzConfig, FuzzFailure, FuzzReport, run_fuzz
from .shrinker import shrink_case
from .layouts import BuiltRule, BuiltSeparable, SeparableLayout, build_separable

__all__ = [
    "BuiltRule",
    "BuiltSeparable",
    "Case",
    "CaseGenerator",
    "DEFAULT_FUZZ_BUDGET",
    "Disagreement",
    "FuzzConfig",
    "FuzzFailure",
    "FuzzReport",
    "GeneratorConfig",
    "OracleVerdict",
    "SeparableLayout",
    "StrategyOutcome",
    "applicable_strategies",
    "build_separable",
    "load_case",
    "make_failure_predicate",
    "run_case",
    "run_fuzz",
    "save_case",
    "shrink_case",
]
