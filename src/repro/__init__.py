"""repro: a reproduction of Naughton's *Compiling Separable Recursions*.

A pure-Python deductive-database stack built around the paper's
contribution -- the Separable evaluation algorithm for selections on
separable recursions -- together with the general strategies it is
compared against (Generalized Magic Sets, the Generalized Counting
Method) and the Datalog substrate they all run on.

Quickstart::

    from repro import Engine, parse_program

    parsed = parse_program('''
        buys(X, Y) :- friend(X, W) & buys(W, Y).
        buys(X, Y) :- idol(X, W) & buys(W, Y).
        buys(X, Y) :- perfectFor(X, Y).
        friend(tom, sue).  idol(sue, ann).  perfectFor(ann, camera).
    ''')
    engine = Engine(parsed.program, parsed.database)
    result = engine.query("buys(tom, Y)?")      # strategy="auto"
    print(result.sorted(), result.strategy)     # separable

See DESIGN.md for the module map and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from .budget import UNLIMITED, Budget
from .core import (
    SeparabilityReport,
    analyze_recursion,
    evaluate_separable,
    is_separable,
    require_separable,
)
from .datalog import (
    Atom,
    Database,
    Program,
    Relation,
    Rule,
    atom,
    naive_evaluate,
    parse_atom,
    parse_program,
    parse_query,
    parse_rule,
    seminaive_evaluate,
)
from .engine import STRATEGIES, Engine, QueryResult
from .rewriting import evaluate_counting, evaluate_magic, magic_rewrite
from .stats import EvaluationStats

__version__ = "1.0.0"

__all__ = [
    "UNLIMITED",
    "Budget",
    "SeparabilityReport",
    "analyze_recursion",
    "evaluate_separable",
    "is_separable",
    "require_separable",
    "Atom",
    "Database",
    "Program",
    "Relation",
    "Rule",
    "atom",
    "naive_evaluate",
    "parse_atom",
    "parse_program",
    "parse_query",
    "parse_rule",
    "seminaive_evaluate",
    "STRATEGIES",
    "Engine",
    "QueryResult",
    "evaluate_counting",
    "evaluate_magic",
    "magic_rewrite",
    "EvaluationStats",
    "__version__",
]
