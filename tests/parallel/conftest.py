"""Shared fixtures: one small two-class separable workload.

Class 1 descends on column 0 (through ``a``), class 2 ascends on
column 1 (through ``b``); ``e`` is the exit relation.  Queries with
both columns bound take the Lemma 2.1 partial-selection path (branch
fan-out); one bound column takes the full-selection path (carry
partitioning).
"""

import pytest

from repro.datalog.database import Database
from repro.datalog.parser import parse_program

TWO_CLASS_SRC = """
t(X, Y) :- a(X, X1) & t(X1, Y).
t(X, Y) :- b(Y1, Y) & t(X, Y1).
t(X, Y) :- e(X, Y).
"""


def two_class_workload(n: int = 10):
    program = parse_program(TWO_CLASS_SRC).program
    db = Database()
    for i in range(n):
        db.add_fact("a", (f"x{i}", f"x{i + 1}"))
        db.add_fact("b", (f"z{i}", f"z{i + 1}"))
    for i in range(0, n, 2):
        db.add_fact("e", (f"x{i}", f"z{i}"))
    return program, db


@pytest.fixture
def two_class():
    return two_class_workload()
