"""The pickle contracts the worker-pool transport depends on.

A database crosses the process boundary exactly once per install; what
arrives must be the same data (aliasing included) with none of the
parent's live wiring (observers, caches).  Budget trips must survive
the trip back with their structured context intact.
"""

import pickle

from repro.datalog.database import Database, Relation
from repro.errors import BudgetExceeded
from repro.parallel.worker import WorkerStateMissing
from repro.stats import EvaluationStats


class TestRelationPickle:
    def test_tuples_survive_and_observers_do_not(self):
        rel = Relation("a", 2, [("x", "y"), ("y", "z")])
        events = []
        rel.observe(lambda r, fact, sign: events.append((fact, sign)))

        clone = pickle.loads(pickle.dumps(rel))

        assert clone.name == "a" and clone.arity == 2
        assert set(clone) == {("x", "y"), ("y", "z")}
        assert clone._observers == ()
        # Mutating the clone must not feed the parent's observer.
        clone.add_all([("z", "w")])
        assert events == []

    def test_indexes_rebuild_on_the_receiving_side(self):
        rel = Relation("a", 2, [(f"x{i}", f"x{i + 1}") for i in range(8)])
        # Force a secondary index in the parent, then ship.
        assert rel.lookup((0,), ("x3",)) == [("x3", "x4")]
        clone = pickle.loads(pickle.dumps(rel))
        assert clone._indexes == {}
        assert clone.lookup((0,), ("x3",)) == [("x3", "x4")]
        assert clone.lookup((1,), ("x1",)) == [("x0", "x1")]


class TestDatabasePickle:
    def test_aliased_mounts_stay_aliased(self):
        shared = Relation("edge", 2, [("a", "b")])
        db = Database()
        db.attach(shared, "edge")
        db.attach(shared, "alias")

        clone = pickle.loads(pickle.dumps(db))

        assert clone.relation("edge") is clone.relation("alias")
        clone.add_fact("edge", ("b", "c"))
        assert ("b", "c") in clone.relation("alias")
        # ... and the clone is a private snapshot of the original.
        assert ("b", "c") not in shared

    def test_observers_stay_behind(self):
        db = Database()
        db.ensure("edge", 2)
        events = []
        db.observe(lambda rel, fact, sign: events.append(fact))
        db.add_fact("edge", ("a", "b"))
        assert len(events) == 1

        clone = pickle.loads(pickle.dumps(db))
        assert clone._observers == []
        assert clone.relation("edge")._observers == ()
        clone.add_fact("edge", ("b", "c"))
        assert len(events) == 1


class TestExceptionPickle:
    def test_budget_exceeded_keeps_structured_context(self):
        stats = EvaluationStats()
        stats.bump_produced()
        partial = frozenset({("a", "b")})
        exc = BudgetExceeded(
            "tuples exhausted", stats=stats, limit="total_tuples",
            partial=partial,
        )

        clone = pickle.loads(pickle.dumps(exc))

        assert isinstance(clone, BudgetExceeded)
        assert str(clone) == "tuples exhausted"
        assert clone.limit == "total_tuples"
        assert clone.partial == partial
        assert clone.stats.tuples_produced == 1

    def test_worker_state_missing_round_trips(self):
        exc = WorkerStateMissing(7)
        clone = pickle.loads(pickle.dumps(exc))
        assert isinstance(clone, WorkerStateMissing)
        assert clone.token == 7
