"""Parallel evaluation must be a pure optimization: identical answers
and identical merged counters, run after run, at every worker and
partition count -- all equal to the serial evaluation."""

import pytest

from repro.engine import Engine
from repro.parallel import ParallelConfig, get_executor

from .conftest import two_class_workload

QUERIES = [
    "t(x0, Y)?",   # full selection: carry partitioning
    "t(X, z8)?",   # full selection on the other class
    "t(x0, z6)?",  # partial selection: Lemma 2.1 branch fan-out
    "t(x3, z9)?",
]


def _run(program, db, query, executor=None):
    result = Engine(program, db).query(
        query, strategy="separable", parallel=executor
    )
    return (
        frozenset(result.answers),
        result.stats.tuples_produced,
        result.stats.iterations,
    )


class TestParallelEqualsSerial:
    @pytest.mark.parametrize("query", QUERIES)
    def test_answers_and_counters_match_serial(self, two_class, query):
        program, db = two_class
        serial = _run(program, db, query)
        parallel = _run(program, db, query,
                        get_executor(ParallelConfig.eager(2)))
        assert parallel == serial

    @pytest.mark.parametrize("partitions", [1, 2, 3, 5])
    def test_partition_count_is_invisible(self, two_class, partitions):
        program, db = two_class
        serial = _run(program, db, "t(x0, Y)?")
        executor = get_executor(
            ParallelConfig.eager(2, partitions=partitions)
        )
        assert _run(program, db, "t(x0, Y)?", executor) == serial


class TestRunToRunDeterminism:
    def test_two_runs_are_identical(self, two_class):
        program, db = two_class
        executor = get_executor(ParallelConfig.eager(2))
        runs = [
            [_run(program, db, q, executor) for q in QUERIES]
            for _ in range(2)
        ]
        assert runs[0] == runs[1]
