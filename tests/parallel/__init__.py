"""Regression tests for the parallel Separable executor.

Determinism, fault propagation, budget contracts across process
boundaries, pickle portability of the payload types, and the
parent/worker isolation the "spawn" start method is supposed to buy.
"""
