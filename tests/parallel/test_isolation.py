"""What "spawn" buys and the executor must preserve: workers share no
module-global state with the parent, and the parent's live wiring never
crosses the boundary."""

import os

import pytest

from repro.datalog.plan_cache import PLAN_CACHE
from repro.engine import Engine
from repro.parallel import ParallelConfig, ParallelExecutor, get_executor

from .conftest import two_class_workload


class TestStartMethod:
    @pytest.mark.parametrize("method", ["fork", "forkserver"])
    def test_non_spawn_start_methods_are_rejected(self, method):
        with pytest.raises(ValueError, match="spawn"):
            ParallelExecutor(ParallelConfig(workers=2, start_method=method))

    def test_spawn_is_the_frozen_default(self):
        assert ParallelConfig().start_method == "spawn"
        assert ParallelConfig.eager(2).start_method == "spawn"


class TestNoStateLeaks:
    def test_workers_hold_private_plan_caches_and_no_observers(self):
        program, db = two_class_workload()
        # Live parent-side wiring the workers must never see: a warm
        # plan cache and a mutation observer on every relation.
        events = []
        db.observe(lambda rel, fact, sign: events.append(fact))
        engine = Engine(program, db)
        serial = engine.query("t(x0, Y)?", strategy="separable")
        parent_cache = PLAN_CACHE.stats()
        assert parent_cache["size"] > 0

        executor = get_executor(ParallelConfig.eager(2))
        parallel = engine.query(
            "t(x0, Y)?", strategy="separable", parallel=executor
        )
        assert parallel.answers == serial.answers

        probes = executor.probe()
        assert len(probes) == 2
        parent_pid = os.getpid()
        for probe in probes:
            assert probe["pid"] != parent_pid
            # A spawn worker re-imports the package: its PLAN_CACHE is
            # its own, populated only by what it compiled itself --
            # never a shadow of the parent's.
            cache = probe["plan_cache"]
            assert cache["compiles"] >= 1
            assert cache["size"] == cache["compiles"] == cache["misses"]
            # The installed snapshot arrived observer-free.
            assert all(
                count == 0
                for count in probe["relation_observers"].values()
            )
        # Worker-side compiles never inflated the parent's cache, and
        # worker-side mutations of the shipped snapshot (the pseudo-
        # relation machinery) never fed the parent's observer beyond
        # what the parent's own evaluation did.
        assert PLAN_CACHE.stats()["size"] == parent_cache["size"]
        assert events == []
