"""Failure modes: worker exceptions, budget trips mid-fan-out, and
wall-clock deadlines against a genuinely stalled worker.  The pool must
survive every one of them."""

import pytest

from repro.budget import Budget
from repro.errors import BudgetExceeded
from repro.parallel import ParallelConfig, get_executor
from repro.parallel import worker as _worker
from repro.service import QueryService, ServiceConfig

from ..conftest import oracle_answers
from .conftest import two_class_workload


class TestWorkerExceptions:
    def test_original_exception_propagates_and_pool_survives(self):
        executor = get_executor(ParallelConfig.eager(2))
        with pytest.raises(ValueError, match="boom"):
            executor.debug_call(
                _worker._raise_task, (ValueError, "boom"), timeout=60
            )
        # No hang, and the pool still answers: every worker reports.
        probes = executor.probe()
        assert len(probes) == 2
        assert all(p["pid"] for p in probes)


class TestBudgetMidFanOut:
    def test_partial_result_is_well_formed(self):
        program, db = two_class_workload()
        # Small enough to trip inside the fan-out, large enough that
        # plan compilation itself succeeds.
        config = ServiceConfig(
            workers=2,
            max_retries=0,
            budget=Budget(max_total_tuples=6),
            parallel=ParallelConfig.eager(2),
        )
        service = QueryService(program, db, config)
        try:
            result = service.query("t(x0, z6)?", strategy="separable")
        finally:
            service.close()

        assert result.status in ("partial", "error")
        assert result.limit == "total_tuples"
        if result.status == "partial":
            partial = result.partial
            assert partial is not None
            assert partial.limit == "total_tuples"
            assert partial.answers == result.answers
            assert partial.stats is not None
            assert partial.stats.tuples_produced > 0
            # Whatever completed is sound: a subset of the full answer.
            full = oracle_answers(program, db, result.query)
            assert result.answers <= full


class TestStalledWorkerDeadline:
    def test_wall_clock_fires_and_pool_stays_up(self):
        executor = get_executor(ParallelConfig.eager(2))
        pool = executor._ensure_pool()
        # A worker that sleeps through every budget check: only the
        # parent-side backstop in _wait can end this.
        stalled = pool.apply_async(_worker._sleep_task, ((5.0,),))
        with pytest.raises(BudgetExceeded) as excinfo:
            executor._wait(stalled, 0.05)
        assert excinfo.value.limit == "wall_clock"
        assert excinfo.value.retryable
        # The abandoned task keeps its worker busy but the pool itself
        # is healthy: new tasks run to completion on the other worker.
        assert executor.debug_call(
            _worker._sleep_task, (0.0,), timeout=60
        ) == 0.0
