"""Corpus replay under the parallel-vs-serial differential harness:
every stored repro case must agree with its serial reference at 1, 2,
and 4 workers, forever."""

from pathlib import Path

import pytest

from repro.differential import load_case, run_case

CORPUS = Path(__file__).parents[1] / "differential" / "corpus"
WORKER_COUNTS = (1, 2, 4)


@pytest.mark.parametrize(
    "path", sorted(CORPUS.glob("*.dl")), ids=lambda p: p.stem
)
def test_corpus_case_agrees_at_every_worker_count(path):
    case = load_case(path)
    verdict = run_case(case, parallel_workers=WORKER_COUNTS)
    assert verdict.ok, verdict.summary()


def test_parallel_sweep_actually_ran_on_separable_cases():
    # At least one corpus case is separable, and for those the sweep
    # must contribute one named outcome per worker count.
    sweeps = 0
    for path in sorted(CORPUS.glob("*.dl")):
        verdict = run_case(load_case(path), parallel_workers=(1, 2))
        ran = [s for s in verdict.strategies_run
               if s.startswith("parallel[")]
        if ran:
            sweeps += 1
            assert set(ran) == {"parallel[1]", "parallel[2]"}
    assert sweeps > 0
