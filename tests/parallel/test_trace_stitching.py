"""Cross-process trace stitching: worker spans come home, counters
reconcile with the serial run.

Two reconciliation strengths, matching the two parallel axes:

* **Branch fan-out** (Lemma 2.1 union branches shipped whole): every
  portable counter total is *byte-identical* to the serial trace --
  each branch runs the same plan over the same data, just elsewhere.
* **Carry partitioning**: per-partition joins legitimately rescan
  relations and re-choose greedy join orders, so scan-shaped counters
  (``atom_lookups``, ``tuples_examined``) inflate; the per-rule
  ``rule_apps:``/``rule_out:`` totals and ``iterations`` still
  reconcile exactly, because the parent replays rule accounting from
  the merged per-join outputs.
"""

import json

import pytest

from repro.datalog.database import Database
from repro.datalog.parser import parse_program
from repro.engine import Engine
from repro.observability import (
    RingBufferSink,
    Tracer,
    replay_trace,
    reconciled_counter_totals,
    to_chrome_trace,
    to_metrics_text,
    trace_violations,
)
from repro.parallel import ParallelConfig, get_executor

from .conftest import two_class_workload

# Example 2.4's shape: class e1 = columns {0, 1} (descends through
# ``a``), class e2 = column {2} (ascends through ``b``).  Binding only
# column 0 -- t(x0, Y, Z)? -- is a *partial* selection of e1, which is
# what triggers the Lemma 2.1 branch fan-out the stitching ships home.
EX24_SRC = """
t(X, Y, Z) :- a(X, Y, U, V) & t(U, V, Z).
t(X, Y, Z) :- t(X, Y, W) & b(W, Z).
t(X, Y, Z) :- t0(X, Y, Z).
"""


def branching_workload(n: int = 6, branches: int = 3):
    program = parse_program(EX24_SRC).program
    db = Database()
    for j in range(branches):
        db.add_fact("a", ("x0", "y0", f"p{j}_0", f"q{j}_0"))
        for i in range(n):
            db.add_fact(
                "a",
                (f"p{j}_{i}", f"q{j}_{i}",
                 f"p{j}_{i + 1}", f"q{j}_{i + 1}"),
            )
        for i in range(0, n, 2):
            db.add_fact("t0", (f"p{j}_{i}", f"q{j}_{i}", "z0"))
    for i in range(n):
        db.add_fact("b", (f"z{i}", f"z{i + 1}"))
    return program, db


#: Fan-out only: partitioning disabled so every remote call ships a
#: whole branch and the byte-identity contract applies.
def _fanout_config(workers: int) -> ParallelConfig:
    return ParallelConfig(
        workers=workers,
        min_branch_tasks=2,
        min_partition_tuples=1 << 30,
    )


FANOUT_QUERY = "t(x0, Y, Z)?"


def _totals(tracer) -> str:
    return json.dumps(
        reconciled_counter_totals(tracer), sort_keys=True
    )


class TestBranchFanoutByteIdentity:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_reconciled_totals_byte_identical_to_serial(self, workers):
        program, db = branching_workload()
        engine = Engine(program, db)
        serial = Tracer()
        ref = engine.query(
            FANOUT_QUERY, strategy="separable", tracer=serial
        )
        executor = get_executor(_fanout_config(workers))
        stitched = Tracer()
        out = engine.query(
            FANOUT_QUERY, strategy="separable", tracer=stitched,
            parallel=executor,
        )
        assert out.answers == ref.answers
        assert _totals(stitched) == _totals(serial)
        assert trace_violations(stitched) == []

    def test_branch_spans_come_home(self):
        program, db = branching_workload()
        executor = get_executor(_fanout_config(2))
        tracer = Tracer()
        Engine(program, db).query(
            FANOUT_QUERY, strategy="separable", tracer=tracer,
            parallel=executor,
        )
        hosts = list(tracer.spans("parallel.worker"))
        branches = list(tracer.spans("worker.branch"))
        assert len(hosts) == 3  # one per Lemma 2.1 seed
        assert len(branches) == 3
        for host in hosts:
            assert isinstance(host.attrs["worker_pid"], int)
            assert host.attrs["task"] == "branch"
        # One host per distinct Lemma 2.1 seed, installed in the
        # sideways pass's deterministic order.
        seeds = [tuple(h.attrs["seed"]) for h in hosts]
        assert len(set(seeds)) == 3


class TestPartitionedCarryReconciliation:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_rule_counters_and_iterations_reconcile(self, workers):
        program, db = two_class_workload()
        engine = Engine(program, db)
        serial = Tracer()
        ref = engine.query(
            "t(x0, Y)?", strategy="separable", tracer=serial
        )
        executor = get_executor(ParallelConfig.eager(workers))
        stitched = Tracer()
        out = engine.query(
            "t(x0, Y)?", strategy="separable", tracer=stitched,
            parallel=executor,
        )
        assert out.answers == ref.answers
        assert out.stats.iterations == ref.stats.iterations
        serial_totals = reconciled_counter_totals(serial)
        stitched_totals = reconciled_counter_totals(stitched)
        for name in set(serial_totals) | set(stitched_totals):
            if name.startswith(("rule_apps:", "rule_out:")) or \
                    name == "iterations":
                assert stitched_totals.get(name, 0) == \
                    serial_totals.get(name, 0), name
        assert trace_violations(stitched) == []

    def test_partition_fragments_nest_inside_the_loop(self):
        program, db = two_class_workload()
        executor = get_executor(ParallelConfig.eager(2))
        tracer = Tracer()
        Engine(program, db).query(
            "t(x0, Y)?", strategy="separable", tracer=tracer,
            parallel=executor,
        )
        hosts = list(tracer.spans("parallel.worker"))
        assert hosts and all(
            h.attrs["task"] == "partition" for h in hosts
        )
        assert list(tracer.spans("worker.partition"))


class TestChromeLanes:
    def test_one_lane_per_worker_pid(self):
        program, db = branching_workload()
        executor = get_executor(_fanout_config(2))
        tracer = Tracer()
        Engine(program, db).query(
            FANOUT_QUERY, strategy="separable", tracer=tracer,
            parallel=executor,
        )
        data = to_chrome_trace(tracer)
        events = data["traceEvents"]
        worker_pids = {
            e["pid"] for e in events if e["ph"] in "BE"
        } - {1}
        assert worker_pids  # at least one remote lane
        named = {
            e["pid"]: e["args"]["name"]
            for e in events if e["ph"] == "M"
        }
        assert named[1] == "parent"
        for pid in worker_pids:
            assert named[pid] == f"worker {pid}"
        # Per-lane B/E events balance in document order: each worker
        # lane reads as a well-formed track on its own.
        for pid in worker_pids | {1}:
            depth = 0
            for e in events:
                if e["pid"] != pid or e["ph"] not in "BE":
                    continue
                depth += 1 if e["ph"] == "B" else -1
                assert depth >= 0
            assert depth == 0
        # Counter-total C events stay on the parent lane.
        assert all(
            e["pid"] == 1
            for e in events
            if e["ph"] == "C" and "." not in e["name"]
        )

    def test_stitched_trace_replays_byte_identical(self):
        program, db = branching_workload()
        executor = get_executor(_fanout_config(2))
        sink = RingBufferSink()
        tracer = Tracer(sink=sink)
        Engine(program, db).query(
            FANOUT_QUERY, strategy="separable", tracer=tracer,
            parallel=executor,
        )
        replayed = replay_trace(list(sink.events))
        assert json.dumps(to_chrome_trace(tracer), sort_keys=True) == \
            json.dumps(to_chrome_trace(replayed), sort_keys=True)
        assert to_metrics_text(tracer) == to_metrics_text(replayed)


class TestZeroOverheadDefault:
    def test_untraced_runs_ship_no_fragments(self):
        program, db = branching_workload()
        executor = get_executor(_fanout_config(2))
        engine = Engine(program, db)
        # Warm up (installs the db in the workers), then measure.
        engine.query(
            FANOUT_QUERY, strategy="separable", parallel=executor
        )
        before = executor.fragments_received
        for _ in range(2):
            engine.query(
                FANOUT_QUERY, strategy="separable", parallel=executor
            )
        assert executor.fragments_received == before

    def test_traced_runs_do_ship_fragments(self):
        program, db = branching_workload()
        executor = get_executor(_fanout_config(2))
        before = executor.fragments_received
        Engine(program, db).query(
            FANOUT_QUERY, strategy="separable", tracer=Tracer(),
            parallel=executor,
        )
        assert executor.fragments_received == before + 3
