"""Tests for the programmatic reproduction reports."""

import pytest

from repro.reporting import (
    experiment_e1,
    experiment_e2,
    experiment_e4,
    experiment_e5,
    experiment_e6,
    to_markdown,
)


class TestExperimentSweeps:
    def test_e1_shapes(self):
        rows = experiment_e1(ns=(4, 6))
        counting = {
            r["n"]: r["max_relation"]
            for r in rows
            if r["method"] == "counting"
        }
        separable = {
            r["n"]: r["max_relation"]
            for r in rows
            if r["method"] == "separable"
        }
        assert counting == {4: 15, 6: 63}          # 2^n - 1
        assert separable == {4: 4, 6: 6}           # n

    def test_e2_shapes(self):
        rows = experiment_e2(ns=(5, 9))
        magic = {
            r["n"]: r["max_relation"] for r in rows if r["method"] == "magic"
        }
        assert magic == {5: 25, 9: 81}             # n^2

    def test_e4_shapes(self):
        rows = experiment_e4(cases=((3, 2),))
        magic = [r for r in rows if r["method"] == "magic"][0]
        separable = [r for r in rows if r["method"] == "separable"][0]
        assert magic["max_relation"] == 9          # n^k
        assert separable["max_relation"] <= 3      # n^(k-1)

    def test_e5_shapes(self):
        rows = experiment_e5(cases=((4, 3),))
        counting = [r for r in rows if r["method"] == "counting"][0]
        assert counting["max_relation"] == 40      # 1 + 3 + 9 + 27

    def test_e6_detects(self):
        rows = experiment_e6(rs=(2, 4))
        assert all(r["separable"] for r in rows)
        assert [r["rules"] for r in rows] == [2, 4]


class TestMarkdown:
    def test_renders_tables(self):
        text = to_markdown({"demo": [{"method": "m", "n": 3}]})
        assert "## demo" in text
        assert "| method | n |" in text
        assert "| m | 3 |" in text

    def test_empty_experiment(self):
        text = to_markdown({"empty": []})
        assert "_no rows_" in text

    def test_ragged_rows_tolerated(self):
        text = to_markdown(
            {"r": [{"method": "a", "n": 1}, {"method": "b", "extra": 9}]}
        )
        assert "extra" in text
