"""Tests for the Lemma 2.1 rewrite: partial selections via t_full/t_part."""

import pytest

from repro.core.api import evaluate_separable
from repro.core.detection import require_separable
from repro.core.rewrite import (
    choose_rewrite_class,
    program_without_class,
    rewrite_partial_selection,
)
from repro.datalog.database import Database
from repro.datalog.parser import parse_atom, parse_program
from repro.datalog.seminaive import seminaive_evaluate
from repro.workloads.paper import example_2_4_program

from ..conftest import oracle_answers


@pytest.fixture
def ex24_analysis():
    return require_separable(example_2_4_program(), "t")


class TestProgramWithoutClass:
    def test_drops_class_rules(self, ex24_analysis):
        e1 = ex24_analysis.classes[0]
        part = program_without_class(ex24_analysis, e1)
        assert len(part.rules_for("t")) == 2  # rule 2 + exit
        assert all(
            "a" not in r.body_predicates() for r in part.rules_for("t")
        )

    def test_dropped_class_columns_become_persistent(self, ex24_analysis):
        e1 = ex24_analysis.classes[0]
        part = program_without_class(ex24_analysis, e1)
        part_analysis = require_separable(part, "t")
        assert set(part_analysis.pers_positions) >= set(e1.positions)


class TestExplicitRewrite:
    """The Example 2.4 rewrite displayed in the paper, verified
    semantically: the rewritten program defines the same ``t``."""

    DB = Database.from_facts(
        {
            "a": [
                ("c", "d", "e", "f"),
                ("e", "f", "g", "h"),
                ("c", "x", "e", "f"),
                ("g", "h", "c", "d"),  # adds a cycle through class e1
            ],
            "b": [("p", "q"), ("q", "r"), ("z", "p")],
            "t0": [("g", "h", "p"), ("e", "f", "z"), ("c", "d", "z")],
        }
    )

    def test_same_extent_for_t(self, ex24_analysis):
        e1 = ex24_analysis.classes[0]
        rewritten = rewrite_partial_selection(ex24_analysis, e1)
        original_t = seminaive_evaluate(
            example_2_4_program(), self.DB
        ).tuples("t")
        rewritten_t = seminaive_evaluate(rewritten, self.DB).tuples("t")
        assert rewritten_t == original_t

    def test_rewrite_defines_three_predicates(self, ex24_analysis):
        e1 = ex24_analysis.classes[0]
        rewritten = rewrite_partial_selection(ex24_analysis, e1)
        assert rewritten.idb_predicates == {"t", "t_full", "t_part"}

    def test_t_full_is_whole_recursion(self, ex24_analysis):
        e1 = ex24_analysis.classes[0]
        rewritten = rewrite_partial_selection(ex24_analysis, e1)
        full_def = rewritten.definition("t_full")
        assert len(full_def.recursive_rules) == 2
        assert len(full_def.exit_rules) == 1

    def test_bridging_rules(self, ex24_analysis):
        e1 = ex24_analysis.classes[0]
        rewritten = rewrite_partial_selection(ex24_analysis, e1)
        t_rules = rewritten.rules_for("t")
        bodies = [r.body_predicates() for r in t_rules]
        assert {"t_part"} in bodies
        assert any("t_full" in b and "a" in b for b in bodies)

    def test_custom_names(self, ex24_analysis):
        e1 = ex24_analysis.classes[0]
        rewritten = rewrite_partial_selection(
            ex24_analysis, e1, full_name="f", part_name="p"
        )
        assert {"f", "p"} <= rewritten.idb_predicates

    def test_name_collision_rejected(self, ex24_analysis):
        e1 = ex24_analysis.classes[0]
        with pytest.raises(ValueError):
            rewrite_partial_selection(ex24_analysis, e1, full_name="t")


class TestChooseRewriteClass:
    def test_picks_partially_bound(self, ex24_analysis):
        cls = choose_rewrite_class(ex24_analysis, {0})
        assert cls.positions == (0, 1)

    def test_prefers_most_bound(self):
        program = parse_program(
            """
            t(X, Y, Z, W) :- a(X, Y, Z, P, Q, R) & t(P, Q, R, W).
            t(X, Y, Z, W) :- t(X, Y, Z, V) & b(V, W).
            t(X, Y, Z, W) :- t0(X, Y, Z, W).
            """
        ).program
        analysis = require_separable(program, "t")
        # class {0,1,2} has 2 of 3 bound; nothing else is partial.
        cls = choose_rewrite_class(analysis, {0, 1})
        assert cls.positions == (0, 1, 2)

    def test_no_partial_class_raises(self, ex24_analysis):
        with pytest.raises(ValueError):
            choose_rewrite_class(ex24_analysis, {0, 1})  # e1 fully bound


class TestOperationalPartialEvaluation:
    """evaluate_separable on partial selections == oracle."""

    def test_example_2_4_partial(self, example_2_4):
        program, db = example_2_4
        query = parse_atom("t(c, Y, Z)")
        assert evaluate_separable(program, db, query) == oracle_answers(
            program, db, query
        )

    def test_partial_on_second_component(self, example_2_4):
        program, db = example_2_4
        query = parse_atom("t(X, d, Z)")
        assert evaluate_separable(program, db, query) == oracle_answers(
            program, db, query
        )

    def test_partial_with_cyclic_class_data(self, ex24_analysis):
        program = example_2_4_program()
        query = parse_atom("t(c, Y, Z)")
        assert evaluate_separable(
            program, TestExplicitRewrite.DB, query
        ) == oracle_answers(program, TestExplicitRewrite.DB, query)

    def test_partial_plus_residual_constant(self, example_2_4):
        program, db = example_2_4
        query = parse_atom("t(c, Y, r)")
        assert evaluate_separable(program, db, query) == oracle_answers(
            program, db, query
        )

    def test_repeated_query_variable(self, example_2_4):
        program, db = example_2_4
        db = db.copy()
        db.add_fact("t0", ("c", "d", "d"))
        query = parse_atom("t(c, Y, Y)")
        assert evaluate_separable(program, db, query) == oracle_answers(
            program, db, query
        )
