"""Tests for the human-readable compiled forms: Figure 3/4 listings and
the relational-algebra rendering, checked structurally."""

import pytest

from repro.core.algebra import plan_to_algebra_text
from repro.core.compiler import compile_selection
from repro.core.detection import require_separable
from repro.core.selections import classify_selection
from repro.datalog.parser import parse_atom
from repro.workloads.paper import (
    example_1_1_program,
    example_1_2_program,
    example_2_4_program,
)


def plan_for(program, predicate, query_text):
    analysis = require_separable(program, predicate)
    return compile_selection(
        classify_selection(analysis, parse_atom(query_text))
    )


class TestFigure3Listing:
    """Figure 3's instantiated algorithm for Example 1.1, line by line."""

    def test_full_listing_structure(self):
        text = plan_for(
            example_1_1_program(), "buys", "buys(tom, Y)"
        ).describe()
        lines = [line.strip() for line in text.splitlines()]
        assert lines[0] == "separable plan for buys/2"
        assert any("seed columns  (1,)" in line for line in lines)
        # f_1 has one term per rule of e_1 (friend and idol).
        f1_terms = [line for line in lines if line.startswith("[r")]
        assert len(f1_terms) == 2
        assert any("friend(X, W)" in line for line in f1_terms)
        assert any("idol(X, W)" in line for line in f1_terms)
        # the exit join is seen_1 |x| perfectFor, as in the figure
        assert any(
            "__seen1__(X) & perfectFor(X, Y)" in line for line in lines
        )
        # Example 1.1 has no second loop (ans := carry_2).
        assert any("up loop: none" in line for line in lines)

    def test_figure_4_has_both_loops(self):
        text = plan_for(
            example_1_2_program(), "buys", "buys(tom, Y)"
        ).describe()
        assert "down loop (f_1):" in text
        assert "up loop (f_2):" in text
        assert "cheaper(Y, W)" in text

    def test_listing_stable_across_calls(self):
        plan = plan_for(example_1_1_program(), "buys", "buys(tom, Y)")
        assert plan.describe() == plan.describe()


class TestAlgebraListing:
    def test_every_join_term_rendered(self):
        plan = plan_for(example_2_4_program(), "t", "t(c, d, Z)")
        text = plan_to_algebra_text(plan)
        assert text.count("[r") == len(plan.down_joins) + len(plan.up_joins)
        assert text.count("[exit") == len(plan.exit_joins)

    def test_projection_wraps_joins(self):
        plan = plan_for(example_1_2_program(), "buys", "buys(tom, Y)")
        text = plan_to_algebra_text(plan)
        for marker in ("π[", "⋈", "__carry__", "__seen1__"):
            assert marker in text

    def test_constants_render_as_selections(self):
        from repro.core.algebra import compile_join
        from repro.core.plan import CarryJoin, CARRY
        from repro.datalog.atoms import Atom, atom
        from repro.datalog.relalg import to_text
        from repro.datalog.terms import Variable

        join = CarryJoin(
            label="demo",
            body=(
                Atom(CARRY, (Variable("X"),)),
                atom("edge", "X", "W", "fixed"),
            ),
            output=(Variable("W"),),
            rule_index=0,
        )
        text = to_text(compile_join(join).expression)
        assert "σ[__k2=fixed]" in text


class TestSeedAndAnswerArities:
    @pytest.mark.parametrize(
        "query,seed_arity,answer_arity",
        [
            ("t(c, d, Z)", 2, 1),
            ("t(X, Y, z)", 1, 2),
        ],
    )
    def test_arity_accessors(self, query, seed_arity, answer_arity):
        plan = plan_for(example_2_4_program(), "t", query)
        assert plan.seed_arity == seed_arity
        assert plan.answer_arity == answer_arity
