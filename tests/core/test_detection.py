"""Unit tests for separability detection (Definition 2.4, Section 3.1)."""

import pytest

from repro.core.detection import (
    analyze_recursion,
    is_separable,
    require_separable,
)
from repro.datalog.errors import NotSeparableError
from repro.datalog.parser import parse_program
from repro.workloads.paper import (
    example_1_1_program,
    example_1_2_program,
    example_2_4_program,
    lemma_4_2_program,
    section_3_2_program,
    section_5_nonseparable_program,
)


def program(text):
    return parse_program(text).program


class TestPaperPrograms:
    """Every recursion the paper labels separable (or not) is classified
    the same way by the detector."""

    def test_example_1_1(self):
        assert is_separable(example_1_1_program(), "buys")

    def test_example_1_2(self):
        assert is_separable(example_1_2_program(), "buys")

    def test_example_2_4(self):
        assert is_separable(example_2_4_program(), "t")

    def test_section_3_2(self):
        assert is_separable(section_3_2_program(), "t")

    @pytest.mark.parametrize("k,p", [(1, 1), (2, 2), (3, 4)])
    def test_lemma_4_families(self, k, p):
        assert is_separable(lemma_4_2_program(k, p), "t")

    def test_section_5_condition_4_violation(self):
        report = analyze_recursion(section_5_nonseparable_program(), "t")
        assert not report.separable
        failed = [c.number for c in report.conditions if not c.holds]
        assert failed == [4]


class TestConditionViolations:
    def test_condition_1_shifting(self):
        report = analyze_recursion(
            program(
                "t(X, Y) :- a(X, W) & t(Y, W).\nt(X, Y) :- t0(X, Y)."
            ),
            "t",
        )
        assert not report.separable
        assert not report.conditions[0].holds
        assert "shift" in report.conditions[0].violations[0]

    def test_condition_2_head_body_mismatch(self):
        # a touches head columns {1, 2} but only body column 2 (W is a
        # don't-care variable ranging over t's first column).
        report = analyze_recursion(
            program(
                "t(X, Y) :- a(X, Y) & t(W, Y).\n"
                "t(X, Y) :- t0(X, Y)."
            ),
            "t",
        )
        assert not report.separable
        assert not report.conditions[2 - 1].holds

    def test_condition_3_overlapping_classes(self):
        # rule 1 touches {1,2}, rule 2 touches {2,3}: overlap, not equal.
        report = analyze_recursion(
            program(
                """
                t(X, Y, Z) :- a(X, Y, U, V) & t(U, V, Z).
                t(X, Y, Z) :- b(Y, Z, P, Q) & t(X, P, Q).
                t(X, Y, Z) :- t0(X, Y, Z).
                """
            ),
            "t",
        )
        assert not report.separable
        assert not report.conditions[3 - 1].holds

    def test_condition_4_disconnected(self):
        report = analyze_recursion(section_5_nonseparable_program(), "t")
        assert not report.conditions[4 - 1].holds
        assert "connected" in report.conditions[4 - 1].violations[0]

    def test_condition_4_empty_body(self):
        report = analyze_recursion(
            program("t(X, Y) :- t(X, Y).\nt(X, Y) :- t0(X, Y)."), "t"
        )
        assert not report.separable
        assert "no nonrecursive" in report.conditions[4 - 1].violations[0]


class TestPrerequisites:
    def test_nonlinear(self):
        report = analyze_recursion(
            program("t(X, Y) :- t(X, W) & t(W, Y).\nt(X, Y) :- e(X, Y)."),
            "t",
        )
        assert not report.separable
        assert any("linear" in p for p in report.prerequisites)

    def test_unsafe(self):
        report = analyze_recursion(
            program("t(X, Y) :- a(X, W) & t(W, X).\nt(X, Y) :- e(X)."),
            "t",
        )
        assert not report.separable
        assert report.prerequisites

    def test_no_exit_rule(self):
        report = analyze_recursion(
            program("t(X, Y) :- a(X, W) & t(W, Y)."), "t"
        )
        assert not report.separable
        assert any("exit" in p for p in report.prerequisites)

    def test_mutual_recursion(self):
        report = analyze_recursion(
            program(
                """
                t(X, Y) :- a(X, W) & s(W, Y).
                s(X, Y) :- b(X, W) & t(W, Y).
                t(X, Y) :- t0(X, Y).
                s(X, Y) :- s0(X, Y).
                """
            ),
            "t",
        )
        assert not report.separable
        assert any("mutually recursive" in p for p in report.prerequisites)

    def test_constant_in_recursive_body(self):
        report = analyze_recursion(
            program(
                "t(X, Y) :- a(X, W, Y) & t(W, c).\nt(X, Y) :- t0(X, Y)."
            ),
            "t",
        )
        assert not report.separable
        assert any("constant" in p for p in report.prerequisites)


class TestEdgeCases:
    def test_nonrecursive_definition_trivially_separable(self):
        report = analyze_recursion(program("p(X, Y) :- q(X, Y)."), "p")
        assert report.separable
        assert report.equivalence_class_count == 0
        assert report.analysis.pers_positions == (0, 1)

    def test_redundant_rule_excluded_from_classes(self):
        report = analyze_recursion(
            program(
                """
                t(X, Y) :- a(X, W) & t(W, Y).
                t(X, Y) :- c(A, B) & t(X, Y).
                t(X, Y) :- t0(X, Y).
                """
            ),
            "t",
        )
        assert report.separable
        assert report.analysis.redundant_rule_indices == (1,)
        assert len(report.analysis.classes) == 1

    def test_unrectified_heads_handled(self):
        # Repeated head variable; rectification runs inside detection.
        report = analyze_recursion(
            program(
                "t(X, X) :- a(X, W) & t(W, W).\nt(X, Y) :- t0(X, Y)."
            ),
            "t",
        )
        # After rectification the eq atom joins the connected set.
        assert report.separable

    def test_transitive_closure_separable(self):
        assert is_separable(
            program("tc(X, Y) :- e(X, W) & tc(W, Y).\ntc(X, Y) :- e(X, Y)."),
            "tc",
        )

    def test_same_generation_not_separable(self):
        # The classic non-separable linear recursion: up and down parts
        # connected through the recursive atom's two columns.
        report = analyze_recursion(
            program(
                """
                sg(X, Y) :- up(X, U) & sg(U, V) & down(V, Y).
                sg(X, Y) :- flat(X, Y).
                """
            ),
            "sg",
        )
        assert not report.separable

    def test_explain_mentions_classes(self):
        report = analyze_recursion(example_1_2_program(), "buys")
        text = report.explain()
        assert "e_1" in text and "e_2" in text and "t|pers" in text


class TestRequireSeparable:
    def test_returns_analysis(self):
        analysis = require_separable(example_1_1_program(), "buys")
        assert analysis.predicate == "buys"

    def test_raises_with_report(self):
        with pytest.raises(NotSeparableError) as excinfo:
            require_separable(section_5_nonseparable_program(), "t")
        assert excinfo.value.report is not None
        assert not excinfo.value.report.separable
