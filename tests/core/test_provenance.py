"""Tests for answer justifications (the paper's J(a), Section 3.4).

The key validation mirrors Lemma 3.1: for every answer, rebuild the
expansion string whose derivation is the reconstructed J(a), substitute
the selection constants, evaluate it as a conjunctive query -- and the
answer must be in its relation.
"""

import pytest

from repro.core.api import evaluate_separable
from repro.core.compiler import compile_selection
from repro.core.detection import require_separable
from repro.core.evaluator import execute_plan
from repro.core.provenance import execute_plan_traced, explain, justify
from repro.core.selections import classify_selection
from repro.datalog.atoms import Atom
from repro.datalog.database import Database
from repro.datalog.errors import NotFullSelectionError
from repro.datalog.expansion import string_for_derivation
from repro.datalog.parser import parse_atom, parse_program
from repro.datalog.terms import Constant, Variable
from repro.workloads.generators import cycle
from repro.workloads.paper import example_1_1_program, example_1_2_program


def validate_justification(program, db, query, full_answer, justification):
    """Lemma 3.1 check: the answer lies in the relation of the string
    with derivation J(a)."""
    definition = program.definition(query.predicate)
    string = string_for_derivation(
        definition,
        query=Atom(
            query.predicate,
            tuple(Constant(v) for v in full_answer),
        ),
        derivation=justification.derivation,
        exit_index=justification.exit_index,
    )
    # All head terms are the answer constants; the string's relation
    # must contain the (fully ground) head tuple.
    results = string.query().evaluate(db)
    assert full_answer in results, (
        f"answer {full_answer} not produced by its justification "
        f"string {string}"
    )


class TestTracedExecutionMatchesPlain:
    @pytest.mark.parametrize(
        "query_text", ["buys(tom, Y)", "buys(X, camera)"]
    )
    def test_same_answers(self, example_1_1, query_text):
        program, db = example_1_1
        analysis = require_separable(program, "buys")
        selection = classify_selection(analysis, parse_atom(query_text))
        plan = compile_selection(selection)
        plain = execute_plan(plan, db, [selection.seed])
        traced, trace = execute_plan_traced(plan, db, [selection.seed])
        assert plain == traced
        for answer in traced:
            justify(trace, answer)  # reconstructible for every answer

    def test_unknown_answer_rejected(self, example_1_1):
        program, db = example_1_1
        analysis = require_separable(program, "buys")
        selection = classify_selection(analysis, parse_atom("buys(tom, Y)"))
        plan = compile_selection(selection)
        _, trace = execute_plan_traced(plan, db, [selection.seed])
        with pytest.raises(KeyError):
            justify(trace, ("definitely-not-an-answer",))


class TestJustificationsValidate:
    """Every justification's derivation string reproduces its answer."""

    def test_example_1_1(self, example_1_1):
        program, db = example_1_1
        query = parse_atom("buys(tom, Y)")
        explained = explain(program, db, query)
        assert explained  # nonempty
        assert frozenset(explained) == evaluate_separable(
            program, db, query
        )
        for answer, justification in explained.items():
            validate_justification(program, db, query, answer, justification)

    def test_example_1_2_both_loops(self, example_1_2):
        program, db = example_1_2
        query = parse_atom("buys(tom, Y)")
        explained = explain(program, db, query)
        # at least one answer uses the cheaper (up) class
        assert any(j.up_rules for j in explained.values())
        for answer, justification in explained.items():
            validate_justification(program, db, query, answer, justification)

    def test_pers_selection(self, example_1_1):
        program, db = example_1_1
        query = parse_atom("buys(X, camera)")
        explained = explain(program, db, query)
        for answer, justification in explained.items():
            assert justification.down_rules == ()  # dummy class: no down
            validate_justification(program, db, query, answer, justification)

    def test_transitive_closure_on_cycle(self):
        program = parse_program(
            "tc(X, Y) :- e(X, W) & tc(W, Y).\ntc(X, Y) :- e0(X, Y)."
        ).program
        db = Database.from_facts(
            {"e": cycle(5), "e0": [("a3", "out")]}
        )
        query = parse_atom("tc(a0, Y)")
        explained = explain(program, db, query)
        assert set(explained) == {("a0", "out")}
        for answer, justification in explained.items():
            validate_justification(program, db, query, answer, justification)

    def test_three_column_recursion(self, example_2_4):
        program, db = example_2_4
        query = parse_atom("t(c, d, Z)")
        explained = explain(program, db, query)
        assert explained
        for answer, justification in explained.items():
            validate_justification(program, db, query, answer, justification)


class TestJustificationStructure:
    def test_direct_answer_has_empty_derivation(self, example_1_1):
        program, db = example_1_1
        # ann has a perfectFor tuple directly: derivation should be empty.
        explained = explain(program, db, parse_atom("buys(ann, Y)"))
        direct = explained[("ann", "camera")]
        assert direct.derivation == ()
        assert direct.seed == ("ann",)

    def test_derivation_depth_matches_chain_length(self):
        program = parse_program(
            "tc(X, Y) :- e(X, W) & tc(W, Y).\ntc(X, Y) :- e0(X, Y)."
        ).program
        db = Database.from_facts(
            {
                "e": [("a0", "a1"), ("a1", "a2"), ("a2", "a3")],
                "e0": [("a3", "end")],
            }
        )
        explained = explain(program, db, parse_atom("tc(a0, Y)"))
        justification = explained[("a0", "end")]
        assert justification.derivation == (0, 0, 0)

    def test_str_rendering(self, example_1_2):
        program, db = example_1_2
        explained = explain(program, db, parse_atom("buys(tom, Y)"))
        text = str(next(iter(explained.values())))
        assert text.startswith("J(")
        assert "exit1" in text

    def test_partial_selection_rejected(self, example_2_4):
        program, db = example_2_4
        with pytest.raises(NotFullSelectionError):
            explain(program, db, parse_atom("t(c, Y, Z)"))
