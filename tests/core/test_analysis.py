"""Unit tests for the structural analysis: t^h, t^b, classes, t|pers."""

import pytest

from repro.core.analysis import (
    analyze_definition,
    analyze_rule,
    build_classes,
)
from repro.datalog.parser import parse_program, parse_rule
from repro.workloads.paper import (
    example_1_1_program,
    example_1_2_program,
    example_2_4_program,
    section_3_2_program,
)


def rule_analysis(text, predicate="t", index=0):
    return analyze_rule(parse_rule(text), predicate, index)


class TestTouchedPositions:
    def test_left_linear(self):
        a = rule_analysis("t(X, Y) :- a(X, W) & t(W, Y).")
        assert a.touched_head == (0,)
        assert a.touched_body == (0,)
        assert a.touched_agree

    def test_right_linear(self):
        a = rule_analysis("t(X, Y) :- t(X, W) & b(W, Y).")
        assert a.touched_head == (1,)
        assert a.touched_body == (1,)

    def test_two_column_class(self):
        a = rule_analysis("t(X, Y, Z) :- a(X, Y, U, V) & t(U, V, Z).")
        assert a.touched_head == (0, 1)
        assert a.touched_body == (0, 1)

    def test_disagreement_detected(self):
        # a touches head column 1 but body column 2.
        a = rule_analysis("t(X, Y) :- a(X, W) & t(Y, W).")
        assert not a.touched_agree

    def test_redundant_rule(self):
        a = rule_analysis("t(X, Y) :- c(A, B) & t(X, Y).")
        assert a.is_redundant
        assert a.touched_head == ()


class TestShifting:
    def test_no_shifting(self):
        assert rule_analysis("t(X, Y) :- a(X, W) & t(W, Y).").shifting == ()

    def test_swap_is_shifting(self):
        a = rule_analysis("t(X, Y) :- a(X, W) & t(Y, X).")
        shifted_vars = {v.name for v, _, _ in a.shifting}
        assert "X" in shifted_vars and "Y" in shifted_vars

    def test_same_position_repeat_not_shifting(self):
        # X appears at head position 1 and body position 1: no shift.
        a = rule_analysis("t(X, Y) :- a(X, W) & t(X, Y).")
        assert a.shifting == ()

    def test_partial_shift(self):
        # Y at head position 2 and body position 1.
        a = rule_analysis("t(X, Y) :- a(X, W) & t(Y, W).")
        assert any(v.name == "Y" for v, _, _ in a.shifting)


class TestConnectedness:
    def test_single_component(self):
        a = rule_analysis("t(X, Y) :- a(X, P) & b(P, Q) & t(Q, Y).")
        assert a.connected_component_count == 1

    def test_two_components(self):
        a = rule_analysis("t(X, Y) :- a(X, W) & t(W, Z) & b(Z, Y).")
        assert a.connected_component_count == 2

    def test_zero_components(self):
        a = rule_analysis("t(X, Y) :- t(X, Y).")
        assert a.connected_component_count == 0


class TestDefinitionsFromThePaper:
    def test_example_1_1_classes(self):
        program = example_1_1_program()
        _, _, analyses = analyze_definition(program.definition("buys"))
        classes = build_classes(analyses)
        assert len(classes) == 1
        assert classes[0].positions == (0,)
        assert classes[0].rule_indices == (0, 1)
        assert classes[0].width == 1

    def test_example_1_2_classes(self):
        program = example_1_2_program()
        _, _, analyses = analyze_definition(program.definition("buys"))
        classes = build_classes(analyses)
        assert [c.positions for c in classes] == [(0,), (1,)]

    def test_example_2_4_classes(self):
        program = example_2_4_program()
        _, _, analyses = analyze_definition(program.definition("t"))
        classes = build_classes(analyses)
        assert [c.positions for c in classes] == [(0, 1), (2,)]

    def test_section_3_2_classes(self):
        program = section_3_2_program()
        _, _, analyses = analyze_definition(program.definition("t"))
        classes = build_classes(analyses)
        assert [c.positions for c in classes] == [(0,), (1,)]
        assert classes[0].rule_indices == (0, 1)
        assert classes[1].rule_indices == (2, 3)


class TestRecursionAnalysisAccessors:
    def test_pers_positions_example_1_1(self):
        from repro.core.detection import require_separable

        analysis = require_separable(example_1_1_program(), "buys")
        assert analysis.pers_positions == (1,)
        assert analysis.class_of_position(0) is not None
        assert analysis.class_of_position(1) is None

    def test_class_rule_index_sets(self):
        from repro.core.detection import require_separable

        analysis = require_separable(example_1_2_program(), "buys")
        assert analysis.class_rule_index_sets() == (
            frozenset({0}),
            frozenset({1}),
        )

    def test_rules_of_class(self):
        from repro.core.detection import require_separable

        analysis = require_separable(example_1_1_program(), "buys")
        rules = analysis.rules_of_class(analysis.classes[0])
        assert [a.index for a in rules] == [0, 1]


class TestExpansionRegex:
    """The Section 3.2 regular-expression description of expansions."""

    def test_section_3_2_verbatim(self):
        from repro.core.detection import require_separable
        from repro.workloads.paper import section_3_2_program

        analysis = require_separable(section_3_2_program(), "t")
        assert analysis.expansion_regex() == "(a1 + a2)* t0 (b1 + b2)*"

    def test_example_1_1(self):
        from repro.core.detection import require_separable

        analysis = require_separable(example_1_1_program(), "buys")
        assert analysis.expansion_regex() == "(friend + idol)* perfectFor"

    def test_example_1_2_selected_class_controls_sides(self):
        from repro.core.detection import require_separable

        analysis = require_separable(example_1_2_program(), "buys")
        assert analysis.expansion_regex(1) == "friend* perfectFor cheaper*"
        assert analysis.expansion_regex(2) == "cheaper* perfectFor friend*"

    def test_nonrecursive_definition(self):
        from repro.core.detection import require_separable
        from repro.datalog.parser import parse_program

        analysis = require_separable(
            parse_program("p(X) :- q(X).").program, "p"
        )
        assert analysis.expansion_regex() == "q"

    def test_multi_atom_rule_label(self):
        from repro.core.detection import require_separable
        from repro.datalog.parser import parse_program

        program = parse_program(
            """
            t(X, Y) :- a(X, M) & b(M, W) & t(W, Y).
            t(X, Y) :- t0(X, Y).
            """
        ).program
        analysis = require_separable(program, "t")
        assert analysis.expansion_regex() == "a.b* t0"
