"""Unit tests for plan execution: the carry/seen loops of Figure 2."""

import pytest

from repro.budget import Budget
from repro.core.api import evaluate_separable
from repro.core.compiler import compile_selection
from repro.core.detection import require_separable
from repro.core.evaluator import execute_plan
from repro.core.selections import classify_selection
from repro.datalog.database import Database
from repro.datalog.errors import BudgetExceeded, NotFullSelectionError
from repro.datalog.parser import parse_atom, parse_program
from repro.stats import EvaluationStats
from repro.workloads.generators import chain, cycle, grid
from repro.workloads.paper import example_1_1_program

from ..conftest import oracle_answers


def run(program, db, query_text, **kwargs):
    query = parse_atom(query_text)
    answers = evaluate_separable(program, db, query, **kwargs)
    return answers, oracle_answers(program, db, query)


class TestAgainstOracle:
    def test_example_1_1(self, example_1_1):
        program, db = example_1_1
        answers, expected = run(program, db, "buys(tom, Y)")
        assert answers == expected
        assert answers  # nonempty on this EDB

    def test_example_1_1_pers_query(self, example_1_1):
        program, db = example_1_1
        answers, expected = run(program, db, "buys(X, camera)")
        assert answers == expected

    def test_example_1_1_fully_bound(self, example_1_1):
        program, db = example_1_1
        answers, expected = run(program, db, "buys(tom, camera)")
        assert answers == expected == {("tom", "camera")}

    def test_example_1_1_no_answers(self, example_1_1):
        program, db = example_1_1
        answers, expected = run(program, db, "buys(nobody, Y)")
        assert answers == expected == frozenset()

    def test_example_1_2(self, example_1_2):
        program, db = example_1_2
        for q in ["buys(tom, Y)", "buys(X, cup)", "buys(sue, Y)"]:
            answers, expected = run(program, db, q)
            assert answers == expected

    def test_example_2_4_full(self, example_2_4):
        program, db = example_2_4
        for q in ["t(c, d, Z)", "t(X, Y, r)", "t(c, x, Z)"]:
            answers, expected = run(program, db, q)
            assert answers == expected

    def test_transitive_closure(self, transitive_closure):
        program, db = transitive_closure
        for q in ["tc(a, Y)", "tc(X, d)", "tc(b, Y)"]:
            answers, expected = run(program, db, q)
            assert answers == expected


class TestCyclicData:
    """Termination on cycles (Lemma 3.4) with correct answers."""

    def test_cycle(self):
        program = parse_program(
            "tc(X, Y) :- e(X, W) & tc(W, Y).\ntc(X, Y) :- e(X, Y)."
        ).program
        db = Database.from_facts({"e": cycle(6)})
        answers, expected = run(program, db, "tc(a0, Y)")
        assert answers == expected
        assert len(answers) == 6

    def test_self_loop(self):
        program = parse_program(
            "tc(X, Y) :- e(X, W) & tc(W, Y).\ntc(X, Y) :- e(X, Y)."
        ).program
        db = Database.from_facts({"e": [("a", "a"), ("a", "b")]})
        answers, expected = run(program, db, "tc(a, Y)")
        assert answers == expected

    def test_cyclic_example_1_1(self, example_1_1):
        program, db = example_1_1
        db = db.copy()
        db.add_fact("friend", ("joe", "tom"))  # close a friend cycle
        answers, expected = run(program, db, "buys(tom, Y)")
        assert answers == expected


class TestRelationSizes:
    """The O-bounds of Lemma 4.1 hold on concrete instances."""

    def test_monadic_relations_only(self):
        program = example_1_1_program()
        n = 30
        db = Database.from_facts(
            {
                "friend": chain(n, "a"),
                "idol": chain(n, "a"),
                "perfectFor": [(f"a{n-1}", "thing")],
            }
        )
        stats = EvaluationStats()
        evaluate_separable(
            program, db, parse_atom("buys(a0, Y)"), stats=stats
        )
        # Lemma 4.1 with w(e1) = 1, k = 2: every relation is O(n).
        assert stats.max_relation_size <= n

    def test_each_tuple_examined_once_along_path(self):
        """Section 3.2: 'examines each tuple at most once'."""
        program = parse_program(
            "tc(X, Y) :- e(X, W) & tc(W, Y).\ntc(X, Y) :- e0(X, Y)."
        ).program
        n = 20
        db = Database.from_facts(
            {"e": chain(n, "a"), "e0": [(f"a{n-1}", "end")]}
        )
        stats = EvaluationStats()
        evaluate_separable(
            program, db, parse_atom("tc(a0, Y)"), stats=stats
        )
        # Each chain edge examined at most twice (once by the down
        # loop's probe, once rejected after the frontier passed).
        assert stats.tuples_examined <= 2 * (n + 2)


class TestBudget:
    def test_budget_exceeded_raises(self):
        program = example_1_1_program()
        db = Database.from_facts(
            {
                "friend": chain(50, "a"),
                "idol": [],
                "perfectFor": [("a49", "thing")],
            }
        )
        db.ensure("idol", 2)
        with pytest.raises(BudgetExceeded):
            evaluate_separable(
                program,
                db,
                parse_atom("buys(a0, Y)"),
                stats=EvaluationStats(),
                budget=Budget(max_relation_tuples=10),
            )


class TestExecutePlanDirect:
    def test_seed_arity_checked(self, example_1_1):
        program, db = example_1_1
        analysis = require_separable(program, "buys")
        selection = classify_selection(analysis, parse_atom("buys(tom, Y)"))
        plan = compile_selection(selection)
        with pytest.raises(ValueError):
            execute_plan(plan, db, [("too", "wide")])

    def test_multiple_seeds_union(self, example_1_1):
        program, db = example_1_1
        analysis = require_separable(program, "buys")
        selection = classify_selection(analysis, parse_atom("buys(tom, Y)"))
        plan = compile_selection(selection)
        merged = execute_plan(plan, db, [("tom",), ("joe",)])
        tom_only = execute_plan(plan, db, [("tom",)])
        joe_only = execute_plan(plan, db, [("joe",)])
        assert merged == tom_only | joe_only

    def test_no_constants_raises(self, example_1_1):
        program, db = example_1_1
        with pytest.raises(NotFullSelectionError):
            evaluate_separable(program, db, parse_atom("buys(X, Y)"))


class TestGridWorkload:
    def test_grid_matches_oracle(self):
        program = parse_program(
            "tc(X, Y) :- e(X, W) & tc(W, Y).\ntc(X, Y) :- e(X, Y)."
        ).program
        db = Database.from_facts({"e": grid(4, 4)})
        answers, expected = run(program, db, "tc(g0_0, Y)")
        assert answers == expected
        assert len(answers) == 15  # every other grid node
