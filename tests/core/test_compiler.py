"""Unit tests for plan compilation (Section 3.3, Figures 3 and 4)."""

import pytest

from repro.core.compiler import compile_plan, compile_selection
from repro.core.detection import require_separable
from repro.core.plan import CARRY, SEEN
from repro.core.selections import classify_selection
from repro.datalog.errors import NotFullSelectionError
from repro.datalog.parser import parse_atom
from repro.workloads.paper import (
    example_1_1_program,
    example_1_2_program,
    example_2_4_program,
)


def plan_for(program, predicate, query_text):
    analysis = require_separable(program, predicate)
    selection = classify_selection(analysis, parse_atom(query_text))
    return compile_selection(selection)


class TestFigure3:
    """The instantiation for Example 1.1, query buys(tom, Y)? (Figure 3)."""

    def test_shape(self):
        plan = plan_for(example_1_1_program(), "buys", "buys(tom, Y)")
        assert plan.selected_positions == (0,)
        assert plan.up_positions == (1,)
        assert len(plan.down_joins) == 2   # friend and idol
        assert len(plan.exit_joins) == 1   # perfectFor
        assert plan.up_joins == ()         # ans := seen_2 directly

    def test_down_join_bodies(self):
        plan = plan_for(example_1_1_program(), "buys", "buys(tom, Y)")
        predicates = sorted(
            a.predicate
            for j in plan.down_joins
            for a in j.body
            if a.predicate != CARRY
        )
        assert predicates == ["friend", "idol"]
        for j in plan.down_joins:
            assert any(a.predicate == CARRY for a in j.body)
            assert len(j.output) == 1

    def test_exit_join_uses_seen(self):
        plan = plan_for(example_1_1_program(), "buys", "buys(tom, Y)")
        exit_preds = {a.predicate for a in plan.exit_joins[0].body}
        assert SEEN in exit_preds
        assert "perfectFor" in exit_preds

    def test_describe_readable(self):
        plan = plan_for(example_1_1_program(), "buys", "buys(tom, Y)")
        text = plan.describe()
        assert "down loop" in text
        assert "friend" in text and "idol" in text


class TestFigure4:
    """The instantiation for Example 1.2, query buys(tom, Y)? (Figure 4)."""

    def test_shape(self):
        plan = plan_for(example_1_2_program(), "buys", "buys(tom, Y)")
        assert len(plan.down_joins) == 1   # friend
        assert len(plan.up_joins) == 1     # cheaper
        assert plan.selected_class_index == 1

    def test_up_join_uses_cheaper(self):
        plan = plan_for(example_1_2_program(), "buys", "buys(tom, Y)")
        up_preds = {a.predicate for a in plan.up_joins[0].body}
        assert "cheaper" in up_preds and CARRY in up_preds


class TestPersDriven:
    def test_dummy_class_skips_down_loop(self):
        plan = plan_for(example_1_1_program(), "buys", "buys(X, camera)")
        assert plan.down_joins == ()
        assert plan.selected_class_index is None
        assert plan.selected_positions == (1,)
        assert plan.up_positions == (0,)
        # Every real class now runs in the up loop.
        assert len(plan.up_joins) == 2

    def test_describe_mentions_dummy(self):
        plan = plan_for(example_1_1_program(), "buys", "buys(X, camera)")
        assert "dummy" in plan.describe()


class TestMultiClass:
    def test_example_2_4_selected_class_e1(self):
        plan = plan_for(example_2_4_program(), "t", "t(c, d, Z)")
        assert plan.selected_positions == (0, 1)
        assert plan.up_positions == (2,)
        assert plan.seed_arity == 2
        assert plan.answer_arity == 1

    def test_example_2_4_selected_class_e2(self):
        plan = plan_for(example_2_4_program(), "t", "t(X, Y, z)")
        assert plan.selected_positions == (2,)
        assert plan.up_positions == (0, 1)
        assert len(plan.up_joins) == 1  # class e_1's single rule


class TestValidation:
    def test_partial_selection_rejected(self):
        analysis = require_separable(example_2_4_program(), "t")
        selection = classify_selection(analysis, parse_atom("t(c, Y, Z)"))
        with pytest.raises(NotFullSelectionError):
            compile_selection(selection)

    def test_compile_plan_requires_exactly_one_component(self):
        analysis = require_separable(example_1_1_program(), "buys")
        with pytest.raises(ValueError):
            compile_plan(analysis)
        with pytest.raises(ValueError):
            compile_plan(
                analysis,
                selected_class=analysis.classes[0],
                pers_positions=(1,),
            )

    def test_pers_positions_validated(self):
        analysis = require_separable(example_1_1_program(), "buys")
        with pytest.raises(ValueError):
            compile_plan(analysis, pers_positions=(0,))  # 0 is a class col
