"""Tests for the relational-algebra backend of the Separable compiler."""

import pytest

from repro.core.algebra import (
    compile_join,
    execute_plan_algebra,
    plan_to_algebra_text,
)
from repro.core.compiler import compile_selection
from repro.core.detection import require_separable
from repro.core.evaluator import execute_plan
from repro.core.selections import classify_selection
from repro.datalog.database import Database
from repro.datalog.parser import parse_atom, parse_program
from repro.workloads.generators import cycle, grid
from repro.workloads.paper import (
    example_1_1_program,
    example_1_2_program,
    example_2_4_program,
)


def plan_for(program, query_text):
    query = parse_atom(query_text)
    analysis = require_separable(program, query.predicate)
    selection = classify_selection(analysis, query)
    return compile_selection(selection), selection


def both_backends(program, db, query_text):
    plan, selection = plan_for(program, query_text)
    direct = execute_plan(plan, db, [selection.seed])
    algebra = execute_plan_algebra(plan, db, [selection.seed])
    return direct, algebra


class TestBackendAgreement:
    def test_example_1_1(self, example_1_1):
        program, db = example_1_1
        for q in ["buys(tom, Y)", "buys(X, camera)"]:
            direct, algebra = both_backends(program, db, q)
            assert direct == algebra

    def test_example_1_2(self, example_1_2):
        program, db = example_1_2
        direct, algebra = both_backends(program, db, "buys(tom, Y)")
        assert direct == algebra and direct

    def test_example_2_4(self, example_2_4):
        program, db = example_2_4
        for q in ["t(c, d, Z)", "t(X, Y, r)"]:
            direct, algebra = both_backends(program, db, q)
            assert direct == algebra

    def test_cyclic_data(self):
        program = parse_program(
            "tc(X, Y) :- e(X, W) & tc(W, Y).\ntc(X, Y) :- e0(X, Y)."
        ).program
        db = Database.from_facts({"e": cycle(7), "e0": [("a4", "out")]})
        direct, algebra = both_backends(program, db, "tc(a0, Y)")
        assert direct == algebra == {("out",)}

    def test_grid(self):
        program = parse_program(
            "tc(X, Y) :- e(X, W) & tc(W, Y).\ntc(X, Y) :- e0(X, Y)."
        ).program
        db = Database.from_facts(
            {"e": grid(4, 4), "e0": [("g3_3", "end")]}
        )
        direct, algebra = both_backends(program, db, "tc(g0_0, Y)")
        assert direct == algebra

    def test_rectified_program_with_eq_atoms(self):
        """Repeated head variables produce eq atoms; the algebra must
        fold them into selections/extends."""
        program = parse_program(
            """
            t(X, Y) :- a(X, W) & t(W, Y).
            t(X, X) :- b(X).
            """
        ).program
        db = Database.from_facts(
            {"a": [("p", "q"), ("q", "r")], "b": [("r",), ("q",)]}
        )
        direct, algebra = both_backends(program, db, "t(p, Y)")
        assert direct == algebra == {("r",), ("q",)}

    def test_stats_shapes_match(self, example_1_1):
        from repro.stats import EvaluationStats

        program, db = example_1_1
        plan, selection = plan_for(program, "buys(tom, Y)")
        direct_stats = EvaluationStats()
        execute_plan(plan, db, [selection.seed], stats=direct_stats)
        algebra_stats = EvaluationStats()
        execute_plan_algebra(plan, db, [selection.seed],
                             stats=algebra_stats)
        assert (
            direct_stats.relation_sizes == algebra_stats.relation_sizes
        )


class TestCompiledForm:
    def test_text_rendering(self):
        plan, _ = plan_for(example_1_2_program(), "buys(tom, Y)")
        text = plan_to_algebra_text(plan)
        assert "π[" in text and "⋈" in text
        assert "friend" in text and "cheaper" in text
        assert "down loop f_1" in text and "up loop f_2" in text

    def test_output_indexes_handle_repeats(self):
        """A recursive call repeating a variable still round-trips."""
        program = parse_program(
            """
            t(X, Y) :- a(X, Y, W) & t(W, W).
            t(X, Y) :- t0(X, Y).
            """
        ).program
        db = Database.from_facts(
            {
                "a": [("s", "u", "m"), ("m", "m", "n")],
                "t0": [("n", "n"), ("m", "m"), ("s", "z")],
            }
        )
        query = parse_atom("t(s, u)")
        analysis = require_separable(program, "t")
        selection = classify_selection(analysis, query)
        plan = compile_selection(selection)
        join = compile_join(plan.down_joins[0])
        assert len(join.output_indexes) == 2
        assert join.output_indexes == (0, 0)  # (W, W) from one column
        direct = execute_plan(plan, db, [selection.seed])
        algebra = execute_plan_algebra(plan, db, [selection.seed])
        assert direct == algebra
