"""Direct tests of Theorem 2.1 via expansions and containment mappings.

Theorem 2.1: for a separable recursion, two expansion strings ``s`` and
``s'`` with ``D_i(s) = D_i(s')`` for every equivalence class ``e_i``
define the same relation.  We generate bounded expansions of the
paper's recursions, group strings by their per-class derivation
projections, and check containment mappings in both directions within
every group (and, as a sanity check, on actual databases).
"""

import itertools

import pytest

from repro.core.detection import require_separable
from repro.datalog.atoms import atom
from repro.datalog.conjunctive import containment_mapping, equivalent
from repro.datalog.database import Database
from repro.datalog.expansion import expansion_strings
from repro.workloads.generators import random_graph
from repro.workloads.paper import (
    example_1_1_program,
    example_1_2_program,
    example_2_4_program,
    section_3_2_program,
)


def grouped_strings(program, predicate, query, depth):
    """Expansion strings grouped by per-class derivation projections."""
    analysis = require_separable(program, predicate)
    definition = program.definition(predicate)
    class_sets = analysis.class_rule_index_sets()
    strings = expansion_strings(definition, query, depth)
    groups = {}
    for s in strings:
        key = s.project_derivation(class_sets)
        groups.setdefault(key, []).append(s)
    return groups


class TestTheorem21:
    @pytest.mark.parametrize(
        "program_factory,predicate,query,depth",
        [
            (example_1_1_program, "buys", atom("buys", "X", "Y"), 3),
            (example_1_2_program, "buys", atom("buys", "X", "Y"), 4),
            (example_2_4_program, "t", atom("t", "X", "Y", "Z"), 4),
            (section_3_2_program, "t", atom("t", "X", "Y"), 3),
        ],
    )
    def test_equal_projections_imply_equivalence(
        self, program_factory, predicate, query, depth
    ):
        groups = grouped_strings(program_factory(), predicate, query, depth)
        multi = {k: v for k, v in groups.items() if len(v) > 1}
        # The theorem is vacuous unless interleavings actually collide:
        # with >= 2 classes they must.
        if len(groups) < len(
            list(itertools.chain.from_iterable(groups.values()))
        ):
            assert multi
        for strings in multi.values():
            reference = strings[0].query()
            for other in strings[1:]:
                assert equivalent(reference, other.query()), (
                    f"strings with equal projections differ:\n"
                    f"  {reference}\n  {other.query()}"
                )

    def test_example_1_2_interleavings_collapse(self):
        """(r1 r2) and (r2 r1) have equal projections and one relation."""
        groups = grouped_strings(
            example_1_2_program(), "buys", atom("buys", "X", "Y"), 2
        )
        key = (((0,)), ((1,)))
        # projections: D_1 = (0,), D_2 = (1,) -- two orders, one group.
        matching = [
            v for k, v in groups.items() if k == ((0,), (1,))
        ]
        assert matching and len(matching[0]) == 2

    def test_different_projections_generally_differ(self):
        """Sanity: strings with different projections need not be
        equivalent (so the grouping is doing real work)."""
        groups = grouped_strings(
            example_1_2_program(), "buys", atom("buys", "X", "Y"), 2
        )
        depth1_friend = groups[((0,), ())][0].query()
        depth1_cheaper = groups[((), (1,))][0].query()
        assert not equivalent(depth1_friend, depth1_cheaper)

    def test_equivalence_confirmed_on_concrete_database(self):
        """Equal-projection strings evaluate identically on real data."""
        db = Database.from_facts(
            {
                "friend": random_graph(8, 14, seed=3, prefix="p"),
                "cheaper": random_graph(8, 14, seed=4, prefix="q"),
                "perfectFor": [("p1", "q2"), ("p3", "q5"), ("p0", "q0")],
            }
        )
        groups = grouped_strings(
            example_1_2_program(), "buys", atom("buys", "X", "Y"), 3
        )
        for strings in groups.values():
            if len(strings) < 2:
                continue
            results = {s.query().evaluate(db) for s in strings}
            assert len(results) == 1

    def test_nonseparable_counterexample(self):
        """For a non-separable recursion the analogous grouping fails:
        same multiset of rule applications, different relations.

        We use a shifting-variable recursion where application order
        matters.
        """
        from repro.datalog.parser import parse_program

        program = parse_program(
            """
            t(X, Y) :- a(X, W) & t(W, Y).
            t(X, Y) :- b(X, W) & t(W, Y).
            t(X, Y) :- t0(X, Y).
            """
        ).program
        definition = program.definition("t")
        strings = expansion_strings(definition, atom("t", "X", "Y"), 2)
        ab = next(s for s in strings if s.derivation == (0, 1))
        ba = next(s for s in strings if s.derivation == (1, 0))
        # Here both rules are in ONE class, so Theorem 2.1 does not
        # claim equivalence -- and indeed a-then-b differs from b-then-a.
        assert not equivalent(ab.query(), ba.query())
        # but each is equivalent to itself under the mapping test
        assert containment_mapping(ab.query(), ab.query()) is not None
