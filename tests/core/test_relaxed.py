"""Section 5: evaluation with Condition 4 relaxed.

"Finally, if we remove condition 4, the separable evaluation algorithm
will still produce the correct answer.  However, it loses the
'focussing' effect of the selection constant."  We verify both halves:
the relaxed mode matches the oracle on the paper's Section 5 recursion
(and on chain-rule variants), and its sideways pass examines the whole
``b`` relation even when most of it is irrelevant.
"""

import pytest

from repro.core.api import evaluate_separable
from repro.core.detection import (
    analyze_recursion,
    require_separable,
)
from repro.datalog.database import Database
from repro.datalog.errors import NotSeparableError
from repro.datalog.parser import parse_atom, parse_program
from repro.engine import Engine
from repro.stats import EvaluationStats
from repro.workloads.generators import chain, random_dag, random_graph
from repro.workloads.paper import section_5_nonseparable_program

from ..conftest import oracle_answers


@pytest.fixture
def section5():
    program = section_5_nonseparable_program()
    db = Database.from_facts(
        {
            "a": [("c", "m"), ("m", "n"), ("q", "m")],
            "t0": [("n", "u"), ("m", "v"), ("c", "w")],
            "b": [("u", "p"), ("p", "r"), ("v", "s"), ("w", "z")],
        }
    )
    return program, db


class TestDetectionSideOfRelaxation:
    def test_report_flags_relaxability(self):
        report = analyze_recursion(section_5_nonseparable_program(), "t")
        assert not report.separable
        assert report.separable_up_to_condition_4
        assert report.analysis is not None

    def test_condition_1_failure_is_not_relaxable(self):
        program = parse_program(
            "t(X, Y) :- a(X, W) & t(Y, W).\nt(X, Y) :- t0(X, Y)."
        ).program
        report = analyze_recursion(program, "t")
        assert not report.separable_up_to_condition_4

    def test_require_separable_strict_vs_relaxed(self):
        program = section_5_nonseparable_program()
        with pytest.raises(NotSeparableError):
            require_separable(program, "t")
        analysis = require_separable(program, "t", allow_disconnected=True)
        # one class covering both columns (a touches 1, b touches 2)
        assert analysis.classes[0].positions == (0, 1)


class TestRelaxedCorrectness:
    def test_partial_selection_matches_oracle(self, section5):
        program, db = section5
        query = parse_atom("t(c, Y)")
        got = evaluate_separable(
            program, db, query, allow_disconnected=True
        )
        assert got == oracle_answers(program, db, query)
        assert got  # nonempty: depth-matched chains exist

    def test_full_selection_matches_oracle(self, section5):
        program, db = section5
        for q in ["t(c, z)", "t(c, s)", "t(n, p)"]:
            query = parse_atom(q)
            got = evaluate_separable(
                program, db, query, allow_disconnected=True
            )
            assert got == oracle_answers(program, db, query), q

    def test_depth_matching_preserved(self):
        """The chain rule requires equal a-depth and b-depth; the
        relaxed pair-carry must not mix depths."""
        program = section_5_nonseparable_program()
        db = Database.from_facts(
            {
                "a": [("c", "d"), ("d", "e")],
                "t0": [("e", "u0"), ("c", "u0")],
                "b": [("u0", "u1"), ("u1", "u2"), ("u2", "u3")],
            }
        )
        query = parse_atom("t(c, Y)")
        got = evaluate_separable(program, db, query, allow_disconnected=True)
        assert got == oracle_answers(program, db, query)
        assert ("c", "u2") in got      # depth 2 both sides
        assert ("c", "u3") not in got  # depth mismatch

    def test_cyclic_data_terminates(self):
        program = section_5_nonseparable_program()
        db = Database.from_facts(
            {
                "a": [("c", "d"), ("d", "c")],
                "t0": [("c", "u"), ("d", "u")],
                "b": [("u", "u")],
            }
        )
        query = parse_atom("t(c, Y)")
        got = evaluate_separable(program, db, query, allow_disconnected=True)
        assert got == oracle_answers(program, db, query)

    def test_random_graph_agreement(self):
        program = section_5_nonseparable_program()
        db = Database.from_facts(
            {
                "a": random_dag(8, 14, seed=21, prefix="x"),
                "t0": [("x5", "y0"), ("x2", "y1")],
                "b": random_graph(6, 10, seed=22, prefix="y"),
            }
        )
        query = parse_atom("t(x0, Y)")
        got = evaluate_separable(program, db, query, allow_disconnected=True)
        assert got == oracle_answers(program, db, query)


class TestUnfocusedBehaviour:
    def test_whole_b_relation_examined(self):
        """The Section 5 remark: the sideways pass scans all of ``b``
        even when the reachable part is tiny."""
        program = section_5_nonseparable_program()
        big_b = chain(400, "zz")
        db = Database.from_facts(
            {
                "a": [("c", "m")],
                "t0": [("m", "u")],
                "b": [("u", "p")] + big_b,
            }
        )
        stats = EvaluationStats()
        query = parse_atom("t(c, Y)")
        got = evaluate_separable(
            program, db, query, allow_disconnected=True, stats=stats
        )
        assert got == oracle_answers(program, db, query)
        # Unfocused: the pass touched (roughly) the whole b relation.
        assert stats.tuples_examined >= len(big_b)


class TestEngineStrategy:
    def test_relaxed_strategy(self, section5):
        program, db = section5
        engine = Engine(program, db)
        result = engine.query("t(c, Y)?", strategy="relaxed")
        from repro.datalog.parser import parse_query

        assert result.answers == oracle_answers(
            program, db, parse_query("t(c, Y)?")
        )

    def test_strict_strategy_still_rejects(self, section5):
        program, db = section5
        engine = Engine(program, db)
        with pytest.raises(NotSeparableError):
            engine.query("t(c, Y)?", strategy="separable")

    def test_relaxed_rejects_condition_1_failures(self):
        program = parse_program(
            "t(X, Y) :- a(X, W) & t(Y, W).\nt(X, Y) :- t0(X, Y)."
        ).program
        engine = Engine(program, Database())
        with pytest.raises(NotSeparableError, match="Condition 4 relaxed"):
            engine.query("t(c, Y)?", strategy="relaxed")

    def test_auto_still_prefers_magic_for_nonseparable(self, section5):
        program, db = section5
        engine = Engine(program, db)
        assert engine.query("t(c, Y)?").strategy == "magic"

    def test_relaxed_on_fully_separable_program(self, example_1_1):
        """relaxed is a superset: it runs plain separable programs too."""
        program, db = example_1_1
        engine = Engine(program, db)
        relaxed = engine.query("buys(tom, Y)?", strategy="relaxed")
        strict = engine.query("buys(tom, Y)?", strategy="separable")
        assert relaxed.answers == strict.answers
