"""Unit tests for selection classification (Definition 2.7)."""

import pytest

from repro.core.detection import require_separable
from repro.core.selections import classify_selection, require_full
from repro.datalog.errors import NotFullSelectionError
from repro.datalog.parser import parse_atom
from repro.workloads.paper import (
    example_1_1_program,
    example_1_2_program,
    example_2_4_program,
)


@pytest.fixture
def ex11():
    return require_separable(example_1_1_program(), "buys")


@pytest.fixture
def ex12():
    return require_separable(example_1_2_program(), "buys")


@pytest.fixture
def ex24():
    return require_separable(example_2_4_program(), "t")


class TestClassDrivenSelections:
    def test_bound_class_column(self, ex11):
        s = classify_selection(ex11, parse_atom("buys(tom, Y)"))
        assert s.is_full
        assert s.selected_class is not None
        assert s.selected_positions == (0,)
        assert s.seed == ("tom",)

    def test_example_1_2_first_column(self, ex12):
        s = classify_selection(ex12, parse_atom("buys(tom, Y)"))
        assert s.is_full
        assert s.selected_class.index == 1

    def test_example_1_2_second_column(self, ex12):
        s = classify_selection(ex12, parse_atom("buys(X, cup)"))
        assert s.is_full
        assert s.selected_class.index == 2
        assert s.selected_positions == (1,)

    def test_fully_bound_query(self, ex12):
        s = classify_selection(ex12, parse_atom("buys(tom, cup)"))
        assert s.is_full
        assert s.residual_bound()  # the other column becomes a filter

    def test_widest_class_preferred(self, ex24):
        s = classify_selection(ex24, parse_atom("t(c, d, e)"))
        assert s.is_full
        assert s.selected_class.positions == (0, 1)


class TestPersDrivenSelections:
    def test_pers_constant_is_full(self, ex11):
        # Column 2 of Example 1.1 is persistent.
        s = classify_selection(ex11, parse_atom("buys(X, camera)"))
        assert s.is_full
        assert s.selected_class is None
        assert s.selected_positions == (1,)

    def test_pers_preferred_over_class(self, ex11):
        s = classify_selection(ex11, parse_atom("buys(tom, camera)"))
        assert s.selected_class is None  # pers wins
        assert s.selected_positions == (1,)
        assert s.residual_bound() == {0: "tom"}


class TestPartialSelections:
    def test_example_2_4_partial(self, ex24):
        """The paper's running non-full example: t(c, Y, Z)?."""
        s = classify_selection(ex24, parse_atom("t(c, Y, Z)"))
        assert not s.is_full
        assert s.has_constants
        assert [c.index for c in s.partially_bound_classes()] == [1]

    def test_no_constants(self, ex11):
        s = classify_selection(ex11, parse_atom("buys(X, Y)"))
        assert not s.is_full
        assert not s.has_constants

    def test_require_full_raises(self, ex24):
        s = classify_selection(ex24, parse_atom("t(c, Y, Z)"))
        with pytest.raises(NotFullSelectionError):
            require_full(s)

    def test_require_full_passes(self, ex24):
        s = classify_selection(ex24, parse_atom("t(c, d, Z)"))
        assert require_full(s) is s


class TestValidation:
    def test_wrong_predicate(self, ex11):
        with pytest.raises(ValueError):
            classify_selection(ex11, parse_atom("other(tom, Y)"))

    def test_wrong_arity(self, ex11):
        with pytest.raises(ValueError):
            classify_selection(ex11, parse_atom("buys(tom)"))
