"""Tier-1 entry point for the differential fuzzing subsystem.

Runs a small fixed-seed budget of the generator + oracle (so every CI
run cross-checks all nine strategies on fresh random cases), replays
every stored corpus repro file, and pins down the generator's
contracts: determinism from the seed, detection ground truth, and
round-tripping of cases through the repro-file format.

The long campaign at the bottom is opt-in via ``pytest -m fuzz``.
"""

from pathlib import Path

import pytest

from repro.core.detection import analyze_recursion
from repro.differential import (
    Case,
    CaseGenerator,
    FuzzConfig,
    applicable_strategies,
    load_case,
    run_case,
    run_fuzz,
)
from repro.differential.cases import case_from_text
from repro.engine import STRATEGIES

CORPUS = Path(__file__).parent / "corpus"


class TestFixedSeedSmoke:
    """The tier-1 budget: 50 cases, every applicable strategy, <60s."""

    def test_50_iterations_agree(self):
        report = run_fuzz(FuzzConfig(iterations=50, seed=7))
        assert report.ok, report.summary()
        assert report.iterations_run == 50
        # Both halves of the distribution actually showed up.
        assert report.separable_cases > 0
        assert report.mutant_cases > 0
        # Several strategies ran per case on average.
        assert report.strategy_runs >= 3 * report.iterations_run

    def test_strategy_subset_campaign(self):
        report = run_fuzz(
            FuzzConfig(
                iterations=10,
                seed=21,
                strategies=("separable", "magic", "seminaive"),
            )
        )
        assert report.ok, report.summary()

    def test_order_sweep_campaign(self):
        report = run_fuzz(
            FuzzConfig(
                iterations=15,
                seed=11,
                strategies=("seminaive",),
                orders=("cost", "adaptive"),
            )
        )
        assert report.ok, report.summary()


class TestOrderSweep:
    """The planner-vs-greedy differential rows on single cases."""

    def test_outcomes_recorded_per_order(self):
        case = CaseGenerator(seed=5).draw_case()
        verdict = run_case(case, orders=("cost", "adaptive"))
        assert verdict.ok, verdict.summary()
        for order in ("cost", "adaptive"):
            outcome = verdict.outcomes[f"order[{order}]"]
            assert outcome.ran or outcome.skipped

    def test_order_answers_match_reference(self):
        gen = CaseGenerator(seed=17)
        checked = 0
        for _ in range(10):
            verdict = run_case(gen.draw_case(), orders=("cost",))
            assert verdict.ok, verdict.summary()
            outcome = verdict.outcomes.get("order[cost]")
            if outcome is not None and outcome.ran:
                assert outcome.answers == verdict.reference
                checked += 1
        assert checked > 0

    def test_finding_profile_carries_replan_counters(self):
        case = CaseGenerator(seed=5).draw_case()
        verdict = run_case(case, orders=("adaptive",))
        # No finding on an agreeing case; check the machinery instead:
        # the sweep ran and its outcome is addressable for shrinking.
        assert "order[adaptive]" in verdict.outcomes


class TestCorpusReplay:
    """Every stored repro file must keep agreeing forever."""

    def test_corpus_is_nonempty(self):
        assert sorted(CORPUS.glob("*.dl")), (
            "the checked-in corpus should seed the replay test"
        )

    @pytest.mark.parametrize(
        "path", sorted(CORPUS.glob("*.dl")), ids=lambda p: p.name
    )
    def test_replay(self, path):
        verdict = run_case(load_case(path))
        assert verdict.ok, verdict.summary()


class TestGeneratorContracts:
    def test_deterministic_from_seed(self):
        first = [c.to_text() for c in CaseGenerator(seed=11).cases(10)]
        second = [c.to_text() for c in CaseGenerator(seed=11).cases(10)]
        assert first == second

    def test_seeds_differ(self):
        a = [c.to_text() for c in CaseGenerator(seed=1).cases(5)]
        b = [c.to_text() for c in CaseGenerator(seed=2).cases(5)]
        assert a != b

    def test_detection_ground_truth(self):
        """Separable-by-construction and near-miss labels are exact."""
        seen = {True: 0, False: 0}
        for case in CaseGenerator(seed=3).cases(40):
            report = analyze_recursion(case.program, case.query.predicate)
            assert report.separable == case.expect_separable, (
                f"{case.note}\n{case.to_text()}\n{report.explain()}"
            )
            seen[case.expect_separable] += 1
        assert seen[True] and seen[False]

    def test_case_roundtrips_through_repro_file(self):
        for case in CaseGenerator(seed=5).cases(5):
            again = case_from_text(case.to_text())
            assert again.program == case.program
            assert str(again.query) == str(case.query)
            assert again.expect_separable == case.expect_separable
            for name in case.database.predicates():
                # Empty relations are not representable as facts; every
                # stored fact must survive exactly.
                assert again.database.tuples(name) == (
                    case.database.tuples(name)
                )


class TestOracle:
    def test_unknown_strategy_subset_rejected(self):
        case = next(CaseGenerator(seed=9).cases(1))
        with pytest.raises(ValueError, match="unknown strategies"):
            applicable_strategies(case, subset=["quantum"])

    def test_auto_always_applicable(self):
        case = next(CaseGenerator(seed=9).cases(1))
        names = applicable_strategies(case)
        assert "auto" in names
        assert set(names) <= set(STRATEGIES)
        # The fallbacks are applicable to everything.
        for always in ("magic", "seminaive", "naive"):
            assert always in names

    def test_trace_invariants_catch_leaked_span(self, monkeypatch):
        """A strategy that leaks an open span yields a ``trace`` finding."""
        from repro.engine import Engine

        original = Engine._dispatch
        leaks = []  # keep the context managers alive past dispatch

        def dispatch(self, strategy, query, report, stats, tracer=None,
                     budget=None, memo=None):
            if tracer is not None and strategy == "seminaive":
                # Open a span without ever closing it: the exact bug
                # Tracer.span's finally-block exists to prevent.
                leak = tracer.span("leaky")
                leak.__enter__()
                leaks.append(leak)
            return original(self, strategy, query, report, stats, tracer,
                            budget, memo)

        monkeypatch.setattr(Engine, "_dispatch", dispatch)
        case = load_case(CORPUS / "cyclic-transitive-closure.dl")
        verdict = run_case(case)
        assert not verdict.ok
        kinds = {(d.kind, d.strategy) for d in verdict.disagreements}
        assert ("trace", "seminaive") in kinds, verdict.summary()

    def test_fanout_hourglass_deltas_are_non_monotone(self):
        """The corpus fan-out case really does grow its deltas again.

        Guards the reason the monotone-terminating invariant is not a
        stricter "deltas shrink" check: this trace is correct yet its
        per-round delta series shrinks and then grows.
        """
        from repro.engine import Engine
        from repro.observability import Tracer, trace_violations

        case = load_case(CORPUS / "fanout-hourglass.dl")
        tracer = Tracer()
        engine = Engine(case.program, case.database)
        engine.query(case.query, strategy="seminaive", tracer=tracer)
        assert trace_violations(tracer) == []
        (scc,) = tracer.spans("seminaive.scc")
        deltas = scc.series["delta:tc"]
        rising = [i for i in range(1, len(deltas))
                  if deltas[i] > deltas[i - 1]]
        assert rising, f"expected a growing round in {deltas}"

    def test_reference_matches_conftest_oracle(self):
        from repro.differential.oracle import (
            DEFAULT_FUZZ_BUDGET,
            reference_answers,
        )

        from ..conftest import oracle_answers

        for case in CaseGenerator(seed=13).cases(5):
            assert reference_answers(case, DEFAULT_FUZZ_BUDGET) == (
                oracle_answers(case.program, case.database, case.query)
            )


@pytest.mark.fuzz
class TestLongCampaign:
    """Opt-in deep run: ``pytest -m fuzz tests/differential``."""

    @pytest.mark.parametrize("seed", [1234, 99])
    def test_500_iterations(self, seed):
        report = run_fuzz(FuzzConfig(iterations=500, seed=seed))
        assert report.ok, report.summary()
