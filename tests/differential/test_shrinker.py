"""Shrinker tests: an injected strategy bug is caught and minimized.

The central scenario monkeypatches a deliberately broken ``magic``
strategy into the engine (it silently drops any answer mentioning the
constant ``poison``), feeds the oracle a noisy case -- extra rules, an
unrelated helper recursion, junk facts -- and asserts the shrinker
reduces the disagreement to a paper-example-sized repro while the same
``(kind, strategy)`` failure keeps reproducing.
"""

import pytest

from repro.datalog.database import Database
from repro.datalog.parser import parse_program, parse_query
from repro.differential import (
    Case,
    make_failure_predicate,
    run_case,
    shrink_case,
)
from repro.engine import Engine

NOISY_PROGRAM = """
tc(X, Y) :- edge(X, W) & tc(W, Y).
tc(X, Y) :- edge(X, Y).
helper(X, Y) :- edge(X, Y) & extra(Y, Z).
helper(X, Y) :- extra(X, Y).
"""


def _noisy_case() -> Case:
    parsed = parse_program(NOISY_PROGRAM)
    db = Database.from_facts(
        {
            "edge": [
                ("a", "b"),
                ("b", "poison"),
                ("poison", "d"),
                ("d", "e"),
                ("x", "y"),
            ],
            "extra": [
                ("a", "a"),
                ("b", "c"),
                ("m", "n"),
            ],
        }
    )
    return Case(
        program=parsed.program,
        database=db,
        query=parse_query("tc(a, Y)?"),
        expect_separable=True,
        note="injected-broken-magic fixture",
    )


@pytest.fixture
def broken_magic(monkeypatch):
    """A strategy stub that silently loses answers mentioning 'poison'."""
    original = Engine._dispatch

    def dispatch(self, strategy, query, report, stats, tracer=None,
                 budget=None, memo=None):
        answers = original(self, strategy, query, report, stats, tracer,
                           budget, memo)
        if strategy == "magic":
            answers = frozenset(a for a in answers if "poison" not in a)
        return answers

    monkeypatch.setattr(Engine, "_dispatch", dispatch)


class TestInjectedBug:
    def test_oracle_catches_broken_strategy(self, broken_magic):
        verdict = run_case(_noisy_case())
        assert not verdict.ok
        strategies = {d.strategy for d in verdict.disagreements}
        assert "magic" in strategies
        kinds = {d.kind for d in verdict.disagreements}
        assert "answers" in kinds

    def test_shrinks_to_minimal_repro(self, broken_magic):
        case = _noisy_case()
        verdict = run_case(case)
        signature = next(
            d for d in verdict.disagreements if d.strategy == "magic"
        ).signature
        predicate = make_failure_predicate(signature)
        result = shrink_case(case, predicate)
        rules, facts = result.case.size()
        assert rules <= 3, result.case.to_text()
        assert facts <= 6, result.case.to_text()
        # The minimized case still reproduces the same failure ...
        assert predicate(result.case)
        # ... and is a strict reduction of the noisy original.
        assert (rules, facts) < case.size()

    def test_shrunk_case_replays_from_disk(self, broken_magic, tmp_path):
        from repro.differential import load_case, save_case

        case = _noisy_case()
        verdict = run_case(case)
        signature = verdict.disagreements[0].signature
        predicate = make_failure_predicate(signature)
        result = shrink_case(case, predicate)
        path = save_case(result.case, tmp_path / "repro.dl")
        replayed = load_case(path)
        assert predicate(replayed)


class TestShrinkerContracts:
    def test_rejects_non_failing_start(self):
        case = _noisy_case()
        with pytest.raises(ValueError, match="failing case"):
            shrink_case(case, lambda c: False)

    def test_idempotent(self, broken_magic):
        case = _noisy_case()
        signature = run_case(case).disagreements[0].signature
        predicate = make_failure_predicate(signature)
        once = shrink_case(case, predicate)
        twice = shrink_case(once.case, predicate)
        assert twice.case.size() == once.case.size()

    def test_merges_constants(self):
        # Failure predicate: the 'edge' relation is nonempty.  The
        # shrinker should drop every rule, every other fact, and merge
        # the surviving fact's constants into one.
        case = _noisy_case()

        def has_edge(candidate: Case) -> bool:
            try:
                return bool(candidate.database.tuples("edge"))
            except Exception:
                return False

        result = shrink_case(case, has_edge)
        assert len(result.case.program) == 0
        assert result.case.database.total_tuples() == 1
        assert len(result.case.database.distinct_constants()) == 1

    def test_attempt_bound_respected(self, broken_magic):
        case = _noisy_case()
        signature = run_case(case).disagreements[0].signature
        predicate = make_failure_predicate(signature)
        result = shrink_case(case, predicate, max_attempts=3)
        assert result.attempts <= 3
        # Whatever came back still fails.
        assert predicate(result.case)
