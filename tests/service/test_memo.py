"""FullSelectionMemo: LRU bounds, coalescing, leader-failure recovery."""

import threading

import pytest

from repro.service import FullSelectionMemo


class TestBasics:
    def test_miss_then_hit(self):
        memo = FullSelectionMemo(maxsize=4)
        calls = []
        value = memo.get_or_run(("k",), lambda: calls.append(1) or "v")
        assert value == "v"
        assert memo.get_or_run(("k",), lambda: calls.append(1) or "v2") == "v"
        assert len(calls) == 1
        assert memo.stats() == {
            "size": 1, "hits": 1, "misses": 1, "coalesced": 0, "evictions": 0,
            "repaired": 0, "survived": 0,
        }

    def test_maxsize_must_be_positive(self):
        with pytest.raises(ValueError):
            FullSelectionMemo(maxsize=0)

    def test_clear_resets(self):
        memo = FullSelectionMemo(maxsize=4)
        memo.get_or_run(("k",), lambda: "v")
        memo.clear()
        assert len(memo) == 0
        assert memo.stats()["misses"] == 0

    def test_scoped_keys_do_not_collide(self):
        memo = FullSelectionMemo(maxsize=8)
        a = memo.scoped("snap-a")
        b = memo.scoped("snap-b")
        assert a.get_or_run(("k",), lambda: "from-a") == "from-a"
        assert b.get_or_run(("k",), lambda: "from-b") == "from-b"
        assert a.get_or_run(("k",), lambda: "never") == "from-a"
        assert memo.stats()["misses"] == 2


class TestLRU:
    def test_evicts_least_recently_used_not_insertion_order(self):
        memo = FullSelectionMemo(maxsize=2)
        memo.get_or_run(("a",), lambda: 1)
        memo.get_or_run(("b",), lambda: 2)
        memo.get_or_run(("a",), lambda: None)  # refresh a
        memo.get_or_run(("c",), lambda: 3)  # evicts b, not a
        assert memo.get_or_run(("a",), lambda: "recomputed") == 1
        assert memo.get_or_run(("b",), lambda: "recomputed") == "recomputed"
        assert memo.stats()["evictions"] >= 1

    def test_just_inserted_entry_survives_eviction(self):
        memo = FullSelectionMemo(maxsize=1)
        for i in range(5):
            assert memo.get_or_run(("k", i), lambda i=i: i) == i
            # The entry inserted last must be the one resident.
            assert memo.get_or_run(("k", i), lambda: "lost") == i
        assert len(memo) == 1


class TestCoalescing:
    def test_concurrent_identical_keys_compute_once(self):
        memo = FullSelectionMemo(maxsize=8)
        gate = threading.Event()
        calls = []
        results = []

        def compute():
            calls.append(1)
            gate.wait(5.0)
            return "shared"

        def worker():
            results.append(memo.get_or_run(("k",), compute))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        # Wait until one leader is inside compute and others are parked.
        deadline = threading.Event()
        for _ in range(100):
            if calls and memo.stats()["coalesced"] >= 7:
                break
            deadline.wait(0.02)
        gate.set()
        for t in threads:
            t.join(5.0)
        assert results == ["shared"] * 8
        assert len(calls) == 1
        stats = memo.stats()
        assert stats["misses"] == 1
        assert stats["coalesced"] == 7

    def test_leader_failure_promotes_a_follower(self):
        memo = FullSelectionMemo(maxsize=8)
        leader_entered = threading.Event()
        release_leader = threading.Event()
        outcomes = []

        def failing_compute():
            leader_entered.set()
            release_leader.wait(5.0)
            raise RuntimeError("leader budget tripped")

        def leader():
            try:
                memo.get_or_run(("k",), failing_compute)
            except RuntimeError as exc:
                outcomes.append(("leader-error", str(exc)))

        def follower():
            outcomes.append(
                ("follower", memo.get_or_run(("k",), lambda: "recovered"))
            )

        t_leader = threading.Thread(target=leader)
        t_leader.start()
        assert leader_entered.wait(5.0)
        t_follower = threading.Thread(target=follower)
        t_follower.start()
        # Let the follower park on the in-flight entry, then fail the leader.
        for _ in range(100):
            if memo.stats()["coalesced"] >= 1:
                break
            threading.Event().wait(0.02)
        release_leader.set()
        t_leader.join(5.0)
        t_follower.join(5.0)
        assert ("leader-error", "leader budget tripped") in outcomes
        assert ("follower", "recovered") in outcomes
        # The failure cached nothing; the retry's value is resident.
        assert memo.get_or_run(("k",), lambda: "never") == "recovered"

    def test_exception_propagates_only_to_leader(self):
        memo = FullSelectionMemo(maxsize=8)
        with pytest.raises(RuntimeError):
            memo.get_or_run(("k",), lambda: (_ for _ in ()).throw(
                RuntimeError("boom")))
        # Key is not poisoned.
        assert memo.get_or_run(("k",), lambda: "fine") == "fine"
