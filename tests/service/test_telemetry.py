"""Request tracing, slow-query log, and HTTP telemetry endpoints."""

import json
import urllib.error
import urllib.request

import pytest

from repro.datalog.database import Database
from repro.observability import RingBufferSink
from repro.parallel import ParallelConfig
from repro.service import (
    QueryService,
    SLOWLOG_SCHEMA,
    ServiceConfig,
    ServiceHTTPD,
    SlowlogRing,
    build_slowlog_record,
    validate_slowlog_record,
)
from repro.workloads import paper


@pytest.fixture
def ex11():
    program = paper.example_1_1_program()
    db = Database.from_facts(
        {
            "friend": [("tom", "sue"), ("sue", "ann")],
            "idol": [("tom", "ann")],
            "perfectFor": [("ann", "camera"), ("sue", "boat")],
        }
    )
    return program, db


def _service(program, db, **config_kwargs):
    config_kwargs.setdefault("workers", 1)
    return QueryService(program, db, ServiceConfig(**config_kwargs))


class TestSampler:
    @pytest.mark.parametrize(
        "rate,sampled_seqs",
        [
            (0.0, set()),
            (1.0, {1, 2, 3, 4, 5, 6, 7, 8}),
            (0.5, {2, 4, 6, 8}),
            (0.25, {4, 8}),
        ],
    )
    def test_deterministic_over_sequence_numbers(
        self, ex11, rate, sampled_seqs
    ):
        program, db = ex11
        with _service(program, db, trace_sample=rate) as service:
            got = {
                seq for seq in range(1, 9) if service._sampled(seq)
            }
        assert got == sampled_seqs

    def test_rate_validated_by_records_landed(self, ex11):
        # End to end: rate 0.5 over 4 serial requests lands exactly
        # the 2nd and 4th in the slowlog.
        program, db = ex11
        with _service(program, db, trace_sample=0.5) as service:
            results = [
                service.query("buys(tom, Y)?") for _ in range(4)
            ]
        records = service.slowlog()
        assert [r["trace_id"] for r in records] == [
            results[1].trace_id, results[3].trace_id,
        ]

    def test_every_request_gets_a_trace_id(self, ex11):
        program, db = ex11
        with _service(program, db) as service:  # sampling off
            first = service.query("buys(tom, Y)?")
            second = service.query("buys(sue, Y)?")
        assert first.trace_id == "req-00000001"
        assert second.trace_id == "req-00000002"
        assert service.slowlog() == []  # ids exist even when untraced


class TestSlowlogRecords:
    def test_sampled_records_validate_against_schema(self, ex11):
        program, db = ex11
        with _service(program, db, trace_sample=1.0) as service:
            result = service.query("buys(tom, Y)?")
        (record,) = service.slowlog()
        assert validate_slowlog_record(record) == []
        assert record["schema"] == SLOWLOG_SCHEMA
        assert record["trace_id"] == result.trace_id
        assert record["query"] == "buys(tom, Y)"
        assert record["reason"] == ["sampled"]
        assert record["status"] == "ok"
        assert record["answers"] == len(result.answers)
        assert record["worker_fragments"] == 0  # serial evaluation
        assert record["spans"] > 0
        assert record["counter_totals"].get("tuples_examined", 0) > 0
        assert set(record["memo"]) == {
            "hits", "misses", "coalesced", "size",
        }
        # JSON round-trips (the sink writes these as JSONL).
        assert json.loads(json.dumps(record)) == record

    def test_threshold_zero_marks_every_request_slow(self, ex11):
        program, db = ex11
        with _service(
            program, db, trace_sample=0.5, slow_query_threshold_s=0.0
        ) as service:
            for _ in range(4):
                service.query("buys(tom, Y)?")
        records = service.slowlog()
        assert [r["reason"] for r in records] == [
            ["slow"], ["sampled", "slow"], ["slow"], ["sampled", "slow"],
        ]
        assert all(validate_slowlog_record(r) == [] for r in records)

    def test_high_threshold_records_nothing(self, ex11):
        program, db = ex11
        with _service(
            program, db, slow_query_threshold_s=3600.0
        ) as service:
            service.query("buys(tom, Y)?")
        assert service.slowlog() == []

    def test_error_requests_still_land_with_error_field(self, ex11):
        program, db = ex11
        with _service(program, db, trace_sample=1.0) as service:
            result = service.query("nosuch(X)?")
        assert result.status == "error"
        (record,) = service.slowlog()
        assert validate_slowlog_record(record) == []
        assert record["status"] == "error"
        assert record["error"]

    def test_records_flow_through_the_sink(self, ex11):
        program, db = ex11
        sink = RingBufferSink()
        with QueryService(
            program, db,
            ServiceConfig(workers=1, trace_sample=1.0),
            sink=sink,
        ) as service:
            service.query("buys(tom, Y)?")
        slow = [
            e for e in sink.events if e.get("type") == "slow_query"
        ]
        assert len(slow) == 1
        assert validate_slowlog_record(slow[0]) == []
        # The regular per-completion event still arrives too.
        assert any(
            e.get("type") == "service_request" for e in sink.events
        )

    def test_lifetime_counters_identical_traced_or_not(self, ex11):
        program, db = ex11

        def run(rate):
            with _service(program, db, trace_sample=rate) as service:
                service.query("buys(tom, Y)?")
            counters = service.metrics.tracer.counters()
            # Drop the nondeterministic plan-cache interaction: the
            # process-wide cache may be warm or cold depending on test
            # order.
            return {
                k: v for k, v in counters.items()
                if not k.startswith("plan_cache")
            }

        assert run(0.0) == run(1.0)

    def test_parallel_request_counts_worker_fragments(self):
        program = paper.example_2_4_program()
        db = Database()
        for j in range(3):
            db.add_fact("a", ("x0", "y0", f"p{j}_0", f"q{j}_0"))
            for i in range(4):
                db.add_fact(
                    "a",
                    (f"p{j}_{i}", f"q{j}_{i}",
                     f"p{j}_{i + 1}", f"q{j}_{i + 1}"),
                )
                db.add_fact("t0", (f"p{j}_{i}", f"q{j}_{i}", "z0"))
        db.add_fact("b", ("z0", "z1"))
        with _service(
            program, db,
            trace_sample=1.0,
            parallel=ParallelConfig(
                workers=2,
                min_branch_tasks=2,
                min_partition_tuples=1 << 30,
            ),
        ) as service:
            result = service.query("t(x0, Y, Z)?")
        assert result.ok
        (record,) = service.slowlog()
        assert record["worker_fragments"] > 0


class TestSlowlogValidation:
    def _valid(self):
        return build_slowlog_record(
            trace_id="req-00000001",
            query="t(X)",
            strategy="separable",
            status="ok",
            reason=["sampled"],
            latency_s=0.01,
            answers=3,
            attempts=1,
            counter_totals={"tuples_examined": 5},
            memo={"hits": 0, "misses": 1, "coalesced": 0, "size": 1},
            worker_fragments=0,
            spans=4,
        )

    def test_builder_output_is_valid(self):
        assert validate_slowlog_record(self._valid()) == []

    def test_rejects_non_dict(self):
        assert validate_slowlog_record([]) != []

    @pytest.mark.parametrize("field", [
        "schema", "trace_id", "latency_s", "counter_totals",
        "worker_fragments",
    ])
    def test_rejects_missing_field(self, field):
        record = self._valid()
        del record[field]
        problems = validate_slowlog_record(record)
        assert any(field in p for p in problems)

    def test_rejects_wrong_schema_version(self):
        record = self._valid()
        record["schema"] = "repro-slowlog/99"
        assert validate_slowlog_record(record) != []

    def test_rejects_unknown_or_empty_reason(self):
        record = self._valid()
        record["reason"] = ["because"]
        assert validate_slowlog_record(record) != []
        record["reason"] = []
        assert validate_slowlog_record(record) != []

    def test_rejects_non_int_counter_totals(self):
        record = self._valid()
        record["counter_totals"] = {"tuples_examined": "5"}
        assert validate_slowlog_record(record) != []

    def test_rejects_wrong_field_type(self):
        record = self._valid()
        record["attempts"] = "1"
        assert validate_slowlog_record(record) != []


class TestSlowlogRing:
    def test_bounded_eviction_keeps_newest(self):
        ring = SlowlogRing(capacity=3)
        for i in range(5):
            ring.append({"i": i})
        assert len(ring) == 3
        assert ring.total == 5
        assert [r["i"] for r in ring.recent()] == [2, 3, 4]

    def test_recent_n_returns_newest_oldest_first(self):
        ring = SlowlogRing(capacity=10)
        for i in range(4):
            ring.append({"i": i})
        assert [r["i"] for r in ring.recent(2)] == [2, 3]
        assert ring.recent(0) == []
        assert [r["i"] for r in ring.recent(99)] == [0, 1, 2, 3]


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.status, resp.headers, resp.read().decode("utf-8")


class TestServiceHTTPD:
    @pytest.fixture
    def served(self, ex11):
        program, db = ex11
        with _service(
            program, db, trace_sample=1.0
        ) as service, ServiceHTTPD(service) as httpd:
            service.query("buys(tom, Y)?")
            yield service, httpd

    def test_metrics_endpoint_serves_the_exposition(self, served):
        service, httpd = served
        status, headers, body = _get(httpd.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith(
            "text/plain; version=0.0.4"
        )
        assert body == service.metrics_text()
        for pinned in (
            'repro_service_requests_total{status="ok"} 1',
            "repro_service_memo_hit_ratio",
            "repro_service_snapshot_cache_entries 1",
            "repro_service_plan_cache_entries",
            'repro_service_span_seconds_total{span="separable.',
        ):
            assert pinned in body, pinned

    def test_healthz_flips_to_503_on_close(self, served):
        service, httpd = served
        status, _, body = _get(httpd.url + "/healthz")
        payload = json.loads(body)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["queue_depth"] == 0
        assert payload["in_flight"] == 0
        service.close()
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(httpd.url + "/healthz")
        assert excinfo.value.code == 503
        assert json.loads(excinfo.value.read())["status"] == "closed"

    def test_slowlog_endpoint_slices_newest(self, served):
        service, httpd = served
        service.query("buys(sue, Y)?")
        _, _, body = _get(httpd.url + "/slowlog")
        records = json.loads(body)
        assert [r["query"] for r in records] == [
            "buys(tom, Y)", "buys(sue, Y)",
        ]
        assert all(validate_slowlog_record(r) == [] for r in records)
        _, _, body = _get(httpd.url + "/slowlog?n=1")
        assert [r["query"] for r in json.loads(body)] == [
            "buys(sue, Y)",
        ]

    def test_slowlog_rejects_non_integer_n(self, served):
        _, httpd = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(httpd.url + "/slowlog?n=soon")
        assert excinfo.value.code == 400

    def test_unknown_path_is_404(self, served):
        _, httpd = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(httpd.url + "/nope")
        assert excinfo.value.code == 404

    def test_ephemeral_port_is_real(self, served):
        _, httpd = served
        assert httpd.port > 0
        assert httpd.url.endswith(str(httpd.port))


class TestMetricsDict:
    def test_evaluator_phases_report_time_shares(self, ex11):
        from repro.datalog.plan_cache import PLAN_CACHE

        program, db = ex11
        # The stats are process-global and cumulative; reset so the
        # order-mix assertion below sees only this service's requests.
        PLAN_CACHE.clear()
        with _service(program, db) as service:
            service.query("buys(tom, Y)?")
            snap = service.metrics_dict()
        phases = snap["evaluator_phases"]
        assert phases  # the separable evaluator opened spans
        total_share = sum(p["share"] for p in phases.values())
        assert total_share == pytest.approx(1.0)
        for phase in phases.values():
            assert phase["seconds"] >= 0.0
            assert phase["count"] >= 1
        assert snap["snapshot_cache"] == {"entries": 1, "capacity": 4}
        assert set(snap["plan_cache"]) >= {
            "size", "hits", "misses", "evictions", "orders",
        }
        # The service plans with the engine's default order only.
        assert set(snap["plan_cache"]["orders"]) <= {"greedy"}


class TestPlanCacheExposition:
    def test_evictions_and_order_mix_are_exported(self):
        from repro.service.metrics import ServiceMetrics

        text = ServiceMetrics().to_metrics_text(plan_cache_stats={
            "size": 2, "hits": 5, "misses": 3, "compiles": 3,
            "evictions": 1, "orders": {"greedy": 6, "cost": 2},
        })
        for pinned in (
            "repro_service_plan_cache_entries 2",
            "repro_service_plan_cache_evictions_total 1",
            'repro_service_plan_requests_total{order="cost"} 2',
            'repro_service_plan_requests_total{order="greedy"} 6',
        ):
            assert pinned in text, pinned

    def test_idle_cache_omits_order_series(self):
        from repro.service.metrics import ServiceMetrics

        text = ServiceMetrics().to_metrics_text(plan_cache_stats={
            "size": 0, "hits": 0, "misses": 0, "compiles": 0,
            "evictions": 0, "orders": {},
        })
        assert "repro_service_plan_cache_evictions_total 0" in text
        assert "repro_service_plan_requests_total" not in text
