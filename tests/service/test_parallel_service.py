"""The query service with a worker pool underneath: snapshot-isolated
answers stay oracle-exact under mixed read/write load with parallel AND
incremental evaluation on, and the memo still collapses duplicate
in-flight evaluations onto one run."""

from concurrent.futures import wait

from repro.datalog.database import Database
from repro.parallel import ParallelConfig
from repro.service import QueryService, ServiceConfig
from repro.workloads import paper

from ..conftest import oracle_answers


def _chain_db(n: int) -> Database:
    return Database.from_facts(
        {
            "friend": [(f"a{i}", f"a{i + 1}") for i in range(1, n)],
            "idol": [(f"a{i}", f"a{i + 1}") for i in range(1, n)],
            "perfectFor": [(f"a{n}", f"b{n}")],
        }
    )


class TestParallelServiceStress:
    def test_mixed_read_write_matches_per_fingerprint_oracle(self):
        program = paper.example_1_1_program()
        n = 10
        service = QueryService(
            program,
            _chain_db(n),
            ServiceConfig(
                workers=4,
                incremental=True,
                parallel=ParallelConfig.eager(2),
            ),
        )
        states: dict[tuple, Database] = {}
        states[service.edb.fingerprint()] = service.edb.copy()

        def mutate_and_record(name: str, fact: tuple) -> None:
            def fn(db):
                db.add_fact(name, fact)
                states[db.fingerprint()] = db.copy()

            service.mutate(fn)

        futures = []
        try:
            for i in range(96):
                if i % 8 == 3:
                    mutate_and_record(
                        "perfectFor", (f"a{(i % n) + 1}", f"gift{i}")
                    )
                if i % 24 == 11:
                    mutate_and_record("friend", (f"w{i}", "a1"))
                constant = f"a{(i % n) + 1}"
                futures.append(
                    service.submit(
                        f"buys({constant}, Y)?", strategy="separable"
                    )
                )
            done, not_done = wait(futures, timeout=120)
            assert not not_done
            results = [f.result() for f in futures]
        finally:
            service.close()

        assert len(results) == 96
        assert all(r.status == "ok" for r in results)
        oracle_cache: dict[tuple, frozenset] = {}
        for result in results:
            assert result.fingerprint in states, "torn snapshot"
            key = (result.fingerprint, str(result.query))
            if key not in oracle_cache:
                oracle_cache[key] = oracle_answers(
                    program, states[result.fingerprint], result.query
                )
            assert result.answers == oracle_cache[key], (
                f"{result.query} diverged from serial evaluation on "
                f"its snapshot under parallel+incremental serving"
            )


class TestParallelCoalescing:
    def test_duplicate_queries_evaluate_once(self):
        program = paper.example_1_1_program()
        service = QueryService(
            program,
            _chain_db(12),
            ServiceConfig(
                workers=4,
                parallel=ParallelConfig.eager(2),
            ),
        )
        try:
            results = service.batch(
                ["buys(a1, Y)?"] * 12, strategy="separable"
            )
            memo = service.memo.stats()
        finally:
            service.close()
        assert all(r.status == "ok" for r in results)
        assert len({r.answers for r in results}) == 1
        # The in-flight memo's contract is unchanged by the process
        # pool: one miss did the work, everyone else piggybacked.
        assert memo["misses"] == 1
        assert memo["hits"] + memo["coalesced"] == 11
