"""Concurrency stress: snapshot isolation, evaluate-once coalescing,
deadline isolation, plan-cache counter consistency.

The acceptance scenario for the query service: 8 workers serving
hundreds of mixed-strategy requests while the EDB mutates underneath,
with every answer checked against a serial oracle evaluation of the
exact database state (by fingerprint) the request was served against.
"""

import threading
from concurrent.futures import wait

import pytest

from repro.budget import Budget
from repro.datalog.database import Database
from repro.datalog.parser import parse_query
from repro.datalog.plan_cache import PLAN_CACHE
from repro.service import QueryService, ServiceConfig
from repro.workloads import paper

from ..conftest import oracle_answers


def _chain_db(n: int) -> Database:
    return Database.from_facts(
        {
            "friend": [(f"a{i}", f"a{i + 1}") for i in range(1, n)],
            "idol": [(f"a{i}", f"a{i + 1}") for i in range(1, n)],
            "perfectFor": [(f"a{n}", f"b{n}")],
        }
    )


class TestMixedWorkloadStress:
    def test_snapshot_isolated_answers_match_serial_oracle(self):
        program = paper.example_1_1_program()
        n = 12
        service = QueryService(
            program, _chain_db(n), ServiceConfig(workers=8)
        )
        # Every database state the service can ever serve, keyed by
        # fingerprint.  States are recorded atomically with the
        # mutation that creates them (same lock as snapshot capture),
        # so a request fingerprint outside this dict would be a torn
        # snapshot -- exactly what isolation forbids.
        states: dict[tuple, Database] = {}
        states[service.edb.fingerprint()] = service.edb.copy()

        def mutate_and_record(name: str, fact: tuple) -> None:
            def fn(db):
                db.add_fact(name, fact)
                states[db.fingerprint()] = db.copy()

            service.mutate(fn)

        strategies = ["auto", "auto", "auto", "separable", "magic",
                      "seminaive"]
        futures = []
        try:
            for i in range(240):
                if i % 12 == 5:
                    mutate_and_record(
                        "perfectFor", (f"a{(i % n) + 1}", f"gift{i}")
                    )
                if i % 31 == 17:
                    mutate_and_record("friend", (f"z{i}", "a1"))
                constant = f"a{(i % n) + 1}"
                futures.append(
                    service.submit(
                        f"buys({constant}, Y)?",
                        strategy=strategies[i % len(strategies)],
                    )
                )
            done, not_done = wait(futures, timeout=120)
            assert not not_done
            results = [f.result() for f in futures]
        finally:
            service.close()

        assert len(results) == 240
        assert all(r.status == "ok" for r in results)
        # Serial oracle over the exact state each request was served
        # against (memoized per (fingerprint, query) -- many repeats).
        oracle_cache: dict[tuple, frozenset] = {}
        for result in results:
            assert result.fingerprint in states
            key = (result.fingerprint, str(result.query))
            if key not in oracle_cache:
                oracle_cache[key] = oracle_answers(
                    program, states[result.fingerprint], result.query
                )
            assert result.answers == oracle_cache[key], (
                f"{result.query} diverged from serial evaluation on "
                f"its snapshot"
            )

    def test_plan_cache_counters_stay_consistent(self):
        program = paper.example_1_1_program()
        before = PLAN_CACHE.stats()
        service = QueryService(
            program, _chain_db(10), ServiceConfig(workers=8)
        )
        try:
            service.batch(
                [f"buys(a{(i % 10) + 1}, Y)?" for i in range(80)]
            )
        finally:
            service.close()
        after = PLAN_CACHE.stats()
        hits = after["hits"] - before["hits"]
        misses = after["misses"] - before["misses"]
        assert hits + misses > 0
        # Every lookup is either a hit or a miss -- no update was lost
        # to a data race between worker threads.
        assert hits >= 0 and misses >= 0
        assert after["size"] <= PLAN_CACHE.maxsize


class TestCoalescing:
    def test_concurrent_identical_full_selections_evaluate_once(self):
        program = paper.example_1_1_program()

        # Twin service: how many carry-loop iterations does ONE
        # evaluation of this full selection cost?
        twin = QueryService(program, _chain_db(14),
                            ServiceConfig(workers=1))
        try:
            twin.query("buys(a1, Y)?")
            loops_for_one = twin.metrics.tracer.counter_total(
                "span:separable.loop"
            )
        finally:
            twin.close()
        assert loops_for_one > 0

        # Now 16 identical requests race on 8 workers: the memo must
        # collapse them onto a single carry/seen run.
        service = QueryService(program, _chain_db(14),
                               ServiceConfig(workers=8))
        try:
            results = service.batch(["buys(a1, Y)?"] * 16)
            loops = service.metrics.tracer.counter_total(
                "span:separable.loop"
            )
            memo = service.memo.stats()
        finally:
            service.close()
        assert all(r.status == "ok" for r in results)
        assert len({r.answers for r in results}) == 1
        assert memo["misses"] == 1
        assert memo["hits"] + memo["coalesced"] == 15
        assert loops == loops_for_one, (
            "duplicate full selections re-ran the carry loop instead "
            "of coalescing"
        )


class TestDeadlineIsolation:
    def test_divergent_request_times_out_without_stalling_others(self):
        # Counting on Example 1.1 at n=26 wants an Omega(2^26)-tuple
        # count relation: it can only end by wall-clock trip.
        program = paper.example_1_1_program()
        db = paper.example_1_1_database(26)
        config = ServiceConfig(
            workers=4,
            max_retries=0,
            budget=Budget(max_wall_seconds=0.25),
        )
        service = QueryService(program, db, config)
        try:
            divergent = service.submit("buys(a1, Y)?", strategy="counting")
            fast = [
                service.submit("buys(a1, Y)?", strategy="separable")
                for _ in range(20)
            ]
            done, not_done = wait([divergent, *fast], timeout=60)
            assert not not_done, "a request stalled past the deadline"
            fast_results = [f.result() for f in fast]
            divergent_result = divergent.result()
            metrics = service.metrics_dict()
        finally:
            service.close()

        assert divergent_result.status == "error"
        assert divergent_result.limit == "wall_clock"
        assert metrics["deadline_trips"] >= 1
        assert all(r.status == "ok" for r in fast_results)
        expected = fast_results[0].answers
        assert all(r.answers == expected for r in fast_results)
        # The fast requests were not serialized behind the divergent
        # one: their p50 stays far under its 0.25s wall budget.
        fast_p50 = sorted(r.latency_s for r in fast_results)[10]
        assert fast_p50 < 0.25


class TestMutationAtomicity:
    def test_mutations_are_atomic_under_contention(self):
        program = paper.example_1_1_program()
        service = QueryService(
            program, _chain_db(8), ServiceConfig(workers=8)
        )
        seen_sizes = []
        stop = threading.Event()

        def churn():
            i = 0
            while not stop.is_set():
                # A two-fact mutation: no snapshot may see only half.
                def fn(db, i=i):
                    db.add_fact("friend", (f"p{i}", f"q{i}"))
                    db.add_fact("idol", (f"p{i}", f"q{i}"))

                service.mutate(fn)
                i += 1

        def observe():
            while not stop.is_set():
                sizes = service.mutate(
                    lambda db: (
                        len(db.relation("friend")),
                        len(db.relation("idol")),
                    )
                )
                seen_sizes.append(sizes)

        threads = [threading.Thread(target=churn),
                   threading.Thread(target=observe)]
        try:
            for t in threads:
                t.start()
            futures = [
                service.submit(f"buys(a{(i % 8) + 1}, Y)?")
                for i in range(40)
            ]
            done, not_done = wait(futures, timeout=60)
            assert not not_done
            assert all(f.result().status == "ok" for f in futures)
        finally:
            stop.set()
            for t in threads:
                t.join(10)
            service.close()
        # friend and idol grow in lockstep; observing them mid-mutation
        # would show friend one ahead of idol.
        assert seen_sizes
        assert all(f == i for f, i in seen_sizes)
