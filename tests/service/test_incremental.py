"""Incremental maintenance through the service: correctness + repair.

The ``ServiceConfig(incremental=True)`` path must be observably
equivalent to the rebuild-everything path (every answer still matches a
serial oracle on the exact fingerprint served), while the metrics prove
the cheap machinery actually ran: views repaired instead of rebuilt,
snapshots structurally shared, and memo entries surviving or repaired
across mutations instead of being dropped.
"""

from concurrent.futures import wait

from repro.datalog.database import Database
from repro.service import QueryService, ServiceConfig
from repro.workloads import paper

from ..conftest import oracle_answers


def _chain_db(n: int) -> Database:
    return Database.from_facts(
        {
            "friend": [(f"a{i}", f"a{i + 1}") for i in range(1, n)],
            "idol": [(f"a{i}", f"a{i + 1}") for i in range(1, n)],
            "perfectFor": [(f"a{n}", f"b{n}")],
        }
    )


class TestWriteHeavyStress:
    def test_answers_match_oracle_under_write_heavy_load(self):
        """8 workers, 100 queries, 50 mutations (1/3 of all operations,
        inserts *and* deletes): every answer equals a serial oracle on
        the fingerprint it was served against."""
        program = paper.example_1_1_program()
        n = 10
        service = QueryService(
            program, _chain_db(n),
            ServiceConfig(workers=8, incremental=True),
        )
        states: dict[tuple, Database] = {}
        states[service.edb.fingerprint()] = service.edb.copy()

        def mutate_and_record(fn):
            def wrapped(db):
                fn(db)
                states[db.fingerprint()] = db.copy()

            service.mutate(wrapped)

        pending_gifts = []
        futures = []
        try:
            for i in range(100):
                if i % 2 == 0:  # 50 mutations for 100 queries
                    if i % 6 == 4 and pending_gifts:
                        name, fact = pending_gifts.pop(0)
                        mutate_and_record(
                            lambda db, n_=name, f=fact:
                            db.remove_fact(n_, f)
                        )
                    else:
                        fact = (f"a{(i % n) + 1}", f"gift{i}")
                        pending_gifts.append(("perfectFor", fact))
                        mutate_and_record(
                            lambda db, f=fact:
                            db.add_fact("perfectFor", f)
                        )
                futures.append(
                    service.submit(f"buys(a{(i % n) + 1}, Y)?")
                )
            done, not_done = wait(futures, timeout=120)
            assert not not_done
            results = [f.result() for f in futures]
            metrics = service.metrics_dict()
        finally:
            service.close()

        assert all(r.status == "ok" for r in results)
        oracle_cache: dict[tuple, frozenset] = {}
        for result in results:
            assert result.fingerprint in states
            key = (result.fingerprint, str(result.query))
            if key not in oracle_cache:
                oracle_cache[key] = oracle_answers(
                    program, states[result.fingerprint], result.query
                )
            assert result.answers == oracle_cache[key]
        # The incremental path did the serving, not the fallback.
        assert metrics["view_repairs"] == 50
        assert metrics["view_rebuilds"] == 0
        assert metrics["snapshots_repaired"] > 0


class TestMemoSurvival:
    def test_class_confined_mutation_spares_the_other_class(self):
        """Theorem 2.1's independence, observed through the memo: a
        mutation whose IDB damage projects onto one new seed of class 2
        repairs the class-1 entries it dirtied and keeps the other
        class-2 entries verbatim -- ``memo_survived > 0``."""
        program = paper.example_1_2_program()
        edb = paper.example_1_2_database(6)
        service = QueryService(
            program, edb, ServiceConfig(workers=2, incremental=True)
        )
        try:
            # Populate: one class-1 entry (position 0 bound) and two
            # class-2 entries (position 1 bound).
            assert service.query("buys(a1, Y)?").ok
            assert service.query("buys(X, b3)?").ok
            assert service.query("buys(X, b4)?").ok
            before = service.memo.stats()
            assert before["size"] >= 3

            # zz undercuts b6: every buyer of b6 now also buys zz.
            # Changed buys facts are exactly {(a_i, zz)} -- they
            # project onto class 2 as the fresh seed (zz,) only.
            service.mutate(
                lambda db: db.add_fact("cheaper", ("zz", "b6"))
            )
            stats = service.memo.stats()
            assert stats["survived"] >= 2   # (b3,), (b4,) untouched
            assert stats["repaired"] >= 1   # (a1,) absorbed the gain

            # Surviving and repaired entries are served as hits, and
            # the repaired value includes the new product.
            hits_before = stats["hits"]
            for query in ("buys(X, b3)?", "buys(a1, Y)?"):
                result = service.query(query)
                assert result.answers == oracle_answers(
                    program, service.edb, result.query
                )
            assert ("a1", "zz") in service.query("buys(a1, Y)?").answers
            assert service.memo.stats()["hits"] > hits_before
        finally:
            service.close()

    def test_metrics_expose_the_repair_counters(self):
        program = paper.example_1_1_program()
        service = QueryService(
            program, _chain_db(4),
            ServiceConfig(workers=2, incremental=True),
        )
        try:
            assert service.query("buys(a1, Y)?").ok
            service.mutate(
                lambda db: db.add_fact("perfectFor", ("a2", "g"))
            )
            text = service.metrics_text()
        finally:
            service.close()
        assert 'repro_service_memo_events_total{kind="repaired"}' in text
        assert 'repro_service_memo_events_total{kind="survived"}' in text
        assert "repro_service_view_repairs_total 1" in text
        assert "repro_service_view_rebuilds_total 0" in text
        assert "repro_service_snapshots_repaired_total" in text


class TestIncrementalEquivalence:
    MUTATIONS = [
        ("add", "perfectFor", ("a2", "g0")),
        ("add", "friend", ("a4", "a1")),      # closes a cycle
        ("del", "perfectFor", ("a4", "b4")),
        ("del", "friend", ("a4", "a1")),
        ("add", "perfectFor", ("a1", "g1")),
        ("del", "idol", ("a2", "a3")),
    ]

    def test_incremental_service_matches_plain_service(self):
        program = paper.example_1_1_program()
        plain = QueryService(
            program, _chain_db(4), ServiceConfig(workers=2)
        )
        incremental = QueryService(
            program, _chain_db(4),
            ServiceConfig(workers=2, incremental=True),
        )
        queries = [f"buys(a{i}, Y)?" for i in range(1, 5)]
        try:
            for kind, name, fact in self.MUTATIONS:
                for service in (plain, incremental):
                    if kind == "add":
                        service.mutate(
                            lambda db, n=name, f=fact: db.add_fact(n, f)
                        )
                    else:
                        service.mutate(
                            lambda db, n=name, f=fact:
                            db.remove_fact(n, f)
                        )
                for query in queries:
                    a = plain.query(query)
                    b = incremental.query(query)
                    assert a.ok and b.ok
                    assert a.answers == b.answers, (kind, name, query)
        finally:
            plain.close()
            incremental.close()

    def test_deletion_is_absorbed_as_a_repair(self):
        program = paper.example_1_1_program()
        service = QueryService(
            program, _chain_db(4),
            ServiceConfig(workers=2, incremental=True),
        )
        try:
            assert ("a1", "b4") in service.query("buys(a1, Y)?").answers
            service.mutate(
                lambda db: db.remove_fact("friend", ("a3", "a4"))
            )
            service.mutate(
                lambda db: db.remove_fact("idol", ("a3", "a4"))
            )
            result = service.query("buys(a1, Y)?")
            assert result.answers == oracle_answers(
                program, service.edb, result.query
            )
            assert ("a1", "b4") not in result.answers
            metrics = service.metrics_dict()
        finally:
            service.close()
        assert metrics["view_repairs"] == 2
        assert metrics["view_rebuilds"] == 0


class TestOverflowFallback:
    def test_clear_falls_back_to_rebuild(self):
        program = paper.example_1_1_program()
        service = QueryService(
            program, _chain_db(4),
            ServiceConfig(workers=2, incremental=True),
        )
        try:
            assert service.query("buys(a1, Y)?").ok

            def wipe_friends(db):
                db.relation("friend").clear()

            service.mutate(wipe_friends)
            result = service.query("buys(a1, Y)?")
            assert result.answers == oracle_answers(
                program, service.edb, result.query
            )
            metrics = service.metrics_dict()
        finally:
            service.close()
        assert metrics["view_rebuilds"] == 1

    def test_direct_idb_write_falls_back_to_rebuild(self):
        # A delta protocol over base tables cannot describe a direct
        # write to a derived relation; the guard downgrades it to a
        # rebuild instead of silently corrupting the view.
        program = paper.example_1_1_program()
        service = QueryService(
            program, _chain_db(4),
            ServiceConfig(workers=2, incremental=True),
        )
        try:
            service.mutate(
                lambda db: db.add_fact("buys", ("zz", "manual"))
            )
            metrics = service.metrics_dict()
        finally:
            service.close()
        assert metrics["view_rebuilds"] == 1
