"""QueryService: statuses, deadlines, retries, snapshots, metrics, events."""

import pytest

from repro.budget import Budget
from repro.datalog.database import Database
from repro.datalog.errors import DatalogSyntaxError
from repro.observability import JsonlFileSink, read_events
from repro.service import QueryService, ServiceConfig
from repro.workloads import paper

from ..conftest import oracle_answers


@pytest.fixture
def ex11():
    program = paper.example_1_1_program()
    db = Database.from_facts(
        {
            "friend": [("tom", "sue"), ("sue", "ann"), ("ann", "joe")],
            "idol": [("tom", "ann"), ("joe", "kim")],
            "perfectFor": [
                ("ann", "camera"),
                ("kim", "tent"),
                ("sue", "boat"),
            ],
        }
    )
    return program, db


@pytest.fixture
def ex24():
    """Example 2.4 data where ``t(x0, Y, Z)?`` is a partial selection."""
    program = paper.example_2_4_program()
    n = 8
    db = Database.from_facts(
        {
            "a": [
                (f"x{i}", f"y{i}", f"x{i + 1}", f"y{i + 1}")
                for i in range(n)
            ],
            "b": [(f"w{i}", f"w{i + 1}") for i in range(n)],
            "t0": [(f"x{i}", f"y{i}", "w0") for i in range(n + 1)],
        }
    )
    return program, db


class TestServing:
    def test_ok_result_matches_oracle(self, ex11):
        program, db = ex11
        with QueryService(program, db) as service:
            result = service.query("buys(tom, Y)?")
        from repro.datalog.parser import parse_query

        assert result.ok and result.status == "ok"
        assert result.strategy == "separable"
        assert result.answers == oracle_answers(
            program, db, parse_query("buys(tom, Y)?")
        )
        assert result.attempts == 1
        assert result.stats is not None
        assert result.latency_s >= 0.0

    def test_batch_preserves_submission_order(self, ex11):
        program, db = ex11
        queries = ["buys(tom, Y)?", "buys(sue, Y)?", "buys(tom, Y)?"]
        with QueryService(program, db) as service:
            results = service.batch(queries)
        assert [str(r.query) for r in results] == [
            "buys(tom, Y)", "buys(sue, Y)", "buys(tom, Y)",
        ]
        assert results[0].answers == results[2].answers

    def test_repeats_hit_the_memo(self, ex11):
        program, db = ex11
        with QueryService(program, db) as service:
            service.batch(["buys(tom, Y)?"] * 10)
            stats = service.memo.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 9

    def test_submit_after_close_raises(self, ex11):
        program, db = ex11
        service = QueryService(program, db)
        service.close()
        with pytest.raises(RuntimeError):
            service.submit("buys(tom, Y)?")

    def test_malformed_query_fails_in_caller(self, ex11):
        program, db = ex11
        with QueryService(program, db) as service:
            with pytest.raises(DatalogSyntaxError):
                service.submit("buys(tom Y")

    def test_unknown_predicate_is_an_error_result(self, ex11):
        program, db = ex11
        with QueryService(program, db) as service:
            result = service.query("nope(tom, Y)?")
        assert result.status == "error"
        assert not result.answers
        assert "UnknownPredicateError" in result.error


class TestSnapshots:
    def test_mutation_changes_fingerprint_and_answers(self, ex11):
        program, db = ex11
        with QueryService(program, db) as service:
            before = service.query("buys(tom, Y)?")
            service.add_fact("perfectFor", ("joe", "kayak"))
            after = service.query("buys(tom, Y)?")
        assert before.fingerprint != after.fingerprint
        assert after.answers > before.answers
        assert ("tom", "kayak") in after.answers

    def test_snapshots_are_shared_per_fingerprint(self, ex11):
        program, db = ex11
        with QueryService(program, db) as service:
            service.batch(["buys(tom, Y)?", "buys(sue, Y)?"] * 3)
            metrics = service.metrics_dict()
        assert metrics["snapshots_created"] == 1

    def test_memo_is_scoped_to_the_snapshot(self, ex11):
        program, db = ex11
        with QueryService(program, db) as service:
            before = service.query("buys(tom, Y)?")
            service.add_fact("perfectFor", ("sue", "kayak"))
            after = service.query("buys(tom, Y)?")
        # Same query, new fingerprint: a fresh miss, never a stale hit.
        assert service.memo.stats()["misses"] == 2
        assert ("tom", "kayak") in after.answers
        assert ("tom", "kayak") not in before.answers


class TestDegradation:
    def test_partial_result_carries_completed_branches(self, ex24):
        program, db = ex24
        config = ServiceConfig(budget=Budget(max_total_tuples=24))
        with QueryService(program, db, config) as service:
            result = service.query("t(x0, Y, Z)?")
        assert result.status == "partial"
        assert result.limit == "total_tuples"
        assert result.partial is not None
        assert result.answers == result.partial.answers
        assert result.answers  # the t_part branch completed
        assert result.stats is not None and result.stats.tuples_produced > 0
        assert result.attempts == 1  # tuple trips are not retryable

    def test_budget_error_without_partial(self, ex24):
        program, db = ex24
        config = ServiceConfig(budget=Budget(max_total_tuples=5))
        with QueryService(program, db, config) as service:
            result = service.query("t(x0, Y, Z)?")
        assert result.status in ("partial", "error")
        if result.status == "error":
            assert not result.answers
        assert result.limit == "total_tuples"

    def test_deadline_trips_and_retries(self):
        # Counting on Example 1.1 builds an Omega(2^n) count relation:
        # effectively divergent at n=26, so every attempt trips its wall
        # clock until the deadline is spent.
        program = paper.example_1_1_program()
        db = paper.example_1_1_database(26)
        # A per-attempt wall limit (no overall deadline) retries until
        # max_retries is spent -- there is always "time remaining".
        config = ServiceConfig(
            max_retries=1,
            retry_backoff_s=0.01,
            budget=Budget(max_wall_seconds=0.05),
        )
        with QueryService(program, db, config) as service:
            result = service.query("buys(a1, Y)?", strategy="counting")
            metrics = service.metrics_dict()
        assert result.status == "error"
        assert result.limit == "wall_clock"
        assert result.attempts == 2  # initial + one retry
        assert metrics["retries"] == 1
        assert metrics["deadline_trips"] == 2

    def test_default_deadline_from_config(self):
        program = paper.example_1_1_program()
        db = paper.example_1_1_database(26)
        config = ServiceConfig(default_deadline_s=0.1, max_retries=0)
        with QueryService(program, db, config) as service:
            result = service.query("buys(a1, Y)?", strategy="counting")
        assert result.status == "error"
        assert result.limit == "wall_clock"
        assert result.attempts == 1


class TestObservability:
    def test_metrics_text_exposition(self, ex11):
        program, db = ex11
        with QueryService(program, db) as service:
            service.batch(["buys(tom, Y)?"] * 4)
            text = service.metrics_text()
        assert 'repro_service_requests_total{status="ok"} 4' in text
        assert "repro_service_latency_seconds_count 4" in text
        assert 'repro_service_memo_events_total{kind="hits"} 3' in text
        assert "repro_service_snapshots_total 1" in text
        # Evaluator counters aggregate through the shared MetricsTracer
        # under the same names the offline trace exporter uses.
        assert "repro_iterations_total" in text

    def test_metrics_dict_shape(self, ex11):
        program, db = ex11
        with QueryService(program, db) as service:
            service.query("buys(tom, Y)?")
            snap = service.metrics_dict()
        assert snap["requests_submitted"] == 1
        assert snap["by_status"] == {"ok": 1}
        assert snap["queue_depth"] == 0 and snap["in_flight"] == 0
        assert snap["latency_s"]["count"] == 1
        assert snap["memo"]["misses"] == 1
        assert "iterations" in snap["evaluator_counters"]

    def test_event_stream_is_replayable(self, ex11, tmp_path):
        program, db = ex11
        path = tmp_path / "service_events.jsonl"
        sink = JsonlFileSink(path)
        try:
            with QueryService(program, db, sink=sink) as service:
                service.batch(["buys(tom, Y)?", "buys(sue, Y)?"])
        finally:
            sink.close()
        events = read_events(path)
        assert events[0]["type"] == "trace_start"
        requests = [e for e in events if e["type"] == "service_request"]
        assert len(requests) == 2
        assert all(e["status"] == "ok" for e in requests)
        assert all("latency_s" in e and "queue_depth" in e for e in requests)
