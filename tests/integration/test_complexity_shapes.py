"""Integration tests asserting the Section 4 growth shapes on real runs.

These are the paper's headline claims, tested as *trends* at small n so
the suite stays fast; the benchmark harness sweeps the same inputs at
larger scale:

* E1 / Section 4: Generalized Counting generates a relation of size
  2^n - 1 on Example 1.1's database, Separable stays linear;
* E2 / Section 4: Magic Sets materializes the n^2-tuple ``buys`` on
  Example 1.2's database, Separable stays linear;
* E3 / Lemma 4.1: Separable's relations are bounded by
  n^max(w(e1), k - w(e1));
* E4 / Lemma 4.2: Magic Sets generates n^k tuples on the S^k_p family;
* E5 / Lemma 4.3: Counting generates sum of p^l tuples there.
"""

import pytest

from repro.core.api import evaluate_separable
from repro.datalog.parser import parse_atom
from repro.rewriting.counting import evaluate_counting
from repro.rewriting.magic import evaluate_magic
from repro.stats import EvaluationStats
from repro.workloads.paper import (
    example_1_1_database,
    example_1_1_program,
    example_1_2_database,
    example_1_2_program,
    lemma_4_2_database,
    lemma_4_2_program,
    lemma_4_3_database,
    lemma_4_3_program,
)


def run(evaluator, program, db, query_text):
    stats = EvaluationStats()
    answers = evaluator(program, db, parse_atom(query_text), stats=stats)
    return answers, stats


class TestE1CountingBlowup:
    @pytest.mark.parametrize("n", [3, 5, 7, 9])
    def test_count_exactly_2_to_n_minus_1(self, n):
        _, stats = run(
            evaluate_counting,
            example_1_1_program(),
            example_1_1_database(n),
            "buys(a1, Y)",
        )
        assert stats.relation_sizes["count"] == 2**n - 1

    @pytest.mark.parametrize("n", [3, 5, 7, 9])
    def test_separable_linear(self, n):
        _, stats = run(
            evaluate_separable,
            example_1_1_program(),
            example_1_1_database(n),
            "buys(a1, Y)",
        )
        assert stats.max_relation_size <= n

    @pytest.mark.parametrize("n", [5, 7])
    def test_same_answers(self, n):
        program = example_1_1_program()
        db = example_1_1_database(n)
        counting_answers, _ = run(
            evaluate_counting, program, db, "buys(a1, Y)"
        )
        separable_answers, _ = run(
            evaluate_separable, program, db, "buys(a1, Y)"
        )
        assert counting_answers == separable_answers == {
            ("a1", f"b{n}")
        }


class TestE2MagicBlowup:
    @pytest.mark.parametrize("n", [3, 6, 9])
    def test_magic_exactly_n_squared(self, n):
        _, stats = run(
            evaluate_magic,
            example_1_2_program(),
            example_1_2_database(n),
            "buys(a1, Y)",
        )
        assert stats.relation_sizes["buys__bf"] == n * n

    @pytest.mark.parametrize("n", [3, 6, 9])
    def test_separable_linear(self, n):
        _, stats = run(
            evaluate_separable,
            example_1_2_program(),
            example_1_2_database(n),
            "buys(a1, Y)",
        )
        assert stats.max_relation_size <= n

    @pytest.mark.parametrize("n", [4, 7])
    def test_same_answers(self, n):
        program = example_1_2_program()
        db = example_1_2_database(n)
        magic_answers, _ = run(evaluate_magic, program, db, "buys(a1, Y)")
        separable_answers, _ = run(
            evaluate_separable, program, db, "buys(a1, Y)"
        )
        assert magic_answers == separable_answers
        assert len(magic_answers) == n  # (a1, b_j) for every j


class TestE3Lemma41Bound:
    @pytest.mark.parametrize("k,w", [(2, 1), (3, 1), (3, 2), (4, 2)])
    def test_relations_bounded_by_lemma(self, k, w):
        """Build an S^k_p member whose e1 has width w by padding the
        Lemma 4.2 recursion; check max relation <= n^max(w, k-w)."""
        from repro.datalog.parser import parse_program

        n = 4
        head = ", ".join(f"X{j}" for j in range(1, k + 1))
        bound_head = ", ".join(f"X{j}" for j in range(1, w + 1))
        bound_body = ", ".join(f"W{j}" for j in range(1, w + 1))
        rest = ", ".join(f"X{j}" for j in range(w + 1, k + 1))
        body_args = ", ".join(x for x in [bound_body, rest] if x)
        program = parse_program(
            f"t({head}) :- a({bound_head}, {bound_body}) & t({body_args}).\n"
            f"t({head}) :- t0({head})."
        ).program
        from repro.datalog.database import Database
        import itertools

        consts = [f"c{i}" for i in range(1, n + 1)]
        a_tuples = [
            tuple(t)
            for t in itertools.islice(
                itertools.product(consts, repeat=2 * w), 3 * n
            )
        ]
        t0_tuples = [
            tuple(t)
            for t in itertools.islice(
                itertools.product(consts, repeat=k), 2 * n
            )
        ]
        db = Database.from_facts({"a": a_tuples, "t0": t0_tuples})
        query = "t(" + ", ".join(
            ["c1"] * w + [f"Q{j}" for j in range(k - w)]
        ) + ")"
        _, stats = run(evaluate_separable, program, db, query)
        assert stats.max_relation_size <= n ** max(w, k - w)


class TestE4Lemma42:
    @pytest.mark.parametrize("n,k", [(3, 2), (4, 2), (3, 3)])
    def test_magic_generates_n_to_k(self, n, k):
        p = 2
        _, stats = run(
            evaluate_magic,
            lemma_4_2_program(k, p),
            lemma_4_2_database(n, k, p),
            "t(c1, " + ", ".join(f"Q{j}" for j in range(k - 1)) + ")",
        )
        assert stats.relation_sizes[f"t__b{'f' * (k - 1)}"] == n**k

    @pytest.mark.parametrize("n,k", [(3, 2), (4, 2), (3, 3)])
    def test_separable_stays_at_n_to_k_minus_1(self, n, k):
        p = 2
        _, stats = run(
            evaluate_separable,
            lemma_4_2_program(k, p),
            lemma_4_2_database(n, k, p),
            "t(c1, " + ", ".join(f"Q{j}" for j in range(k - 1)) + ")",
        )
        # Lemma 4.1: w(e1) = 1, so the bound is n^(k-1).
        assert stats.max_relation_size <= n ** max(1, k - 1)


class TestE5Lemma43:
    @pytest.mark.parametrize("n,p", [(4, 2), (5, 3), (6, 2)])
    def test_counting_generates_sum_of_p_powers(self, n, p):
        _, stats = run(
            evaluate_counting,
            lemma_4_3_program(2, p),
            lemma_4_3_database(n, 2, p),
            "t(c1, Y)",
        )
        assert stats.relation_sizes["count"] == sum(
            p**level for level in range(n)
        )

    @pytest.mark.parametrize("n,p", [(4, 2), (5, 3)])
    def test_separable_linear_there(self, n, p):
        _, stats = run(
            evaluate_separable,
            lemma_4_3_program(2, p),
            lemma_4_3_database(n, 2, p),
            "t(c1, Y)",
        )
        assert stats.max_relation_size <= n + 1
