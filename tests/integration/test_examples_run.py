"""Every example script must run cleanly (they are part of the API
surface users copy from)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))

#: scripts that sweep adversarial databases and need a longer leash.
SLOW = {"complexity_showdown.py"}


@pytest.mark.parametrize(
    "script", SCRIPTS, ids=[s.name for s in SCRIPTS]
)
def test_example_runs(script):
    timeout = 300 if script.name in SLOW else 120
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert completed.returncode == 0, (
        f"{script.name} failed:\n{completed.stderr[-2000:]}"
    )
    assert completed.stdout.strip(), f"{script.name} printed nothing"


def test_expected_examples_present():
    names = {s.name for s in SCRIPTS}
    assert {
        "quickstart.py",
        "social_commerce.py",
        "partial_selections.py",
        "complexity_showdown.py",
        "transitive_closure.py",
        "explain_answers.py",
        "csv_pipeline.py",
    } <= names
