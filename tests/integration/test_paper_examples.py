"""End-to-end integration tests: every worked example in the paper.

Each test reproduces a concrete scenario the paper narrates -- the
buys/friend/idol story of Example 1.1, the cheaper-products twist of
Example 1.2, the ternary rewrite of Example 2.4, the ``(a1+a2)* t0
(b1+b2)*`` recursion of Section 3.2 -- end to end through the Engine,
checking answers, chosen strategy, and the structural facts the paper
states (class structure, plan shape).
"""

import pytest

from repro.datalog.database import Database
from repro.engine import STRATEGIES, Engine
from repro.workloads.paper import (
    example_1_1_program,
    example_1_2_program,
    example_2_4_program,
    section_3_2_program,
)

from ..conftest import oracle_answers


class TestExample11Story:
    """'A person will buy a product if it is perfect for them, or if
    their friend or idol has bought it.'"""

    @pytest.fixture
    def engine(self):
        db = Database.from_facts(
            {
                "friend": [
                    ("tom", "sue"),
                    ("sue", "ann"),
                    ("kim", "tom"),
                ],
                "idol": [("tom", "ann"), ("ann", "liz")],
                "perfectFor": [
                    ("liz", "guitar"),
                    ("ann", "camera"),
                    ("kim", "skates"),
                ],
            }
        )
        return Engine(example_1_1_program(), db)

    def test_purchases_propagate_through_friends_and_idols(self, engine):
        result = engine.query("buys(tom, Y)?")
        # tom -> sue -> ann buys camera; tom -> ann -> liz buys guitar.
        assert result.answers == {
            ("tom", "camera"),
            ("tom", "guitar"),
        }

    def test_who_buys_the_camera(self, engine):
        result = engine.query("buys(X, camera)?")
        assert result.answers == {
            ("ann", "camera"),
            ("sue", "camera"),
            ("tom", "camera"),
            ("kim", "camera"),
        }
        assert result.strategy == "separable"

    def test_class_structure_matches_example_2_3(self, engine):
        """Example 2.3: one class {column 1}, pers = {column 2}."""
        report = engine.report("buys")
        analysis = report.analysis
        assert len(analysis.classes) == 1
        assert analysis.classes[0].positions == (0,)
        assert analysis.classes[0].rule_indices == (0, 1)
        assert analysis.pers_positions == (1,)


class TestExample12Story:
    """'...they will buy a product if it is cheaper than another
    product they will buy.'"""

    @pytest.fixture
    def engine(self):
        db = Database.from_facts(
            {
                "friend": [("tom", "sue")],
                "cheaper": [
                    ("mug", "vase"),
                    ("spoon", "mug"),
                ],
                "perfectFor": [("sue", "vase")],
            }
        )
        return Engine(example_1_2_program(), db)

    def test_cheaper_chain_followed(self, engine):
        result = engine.query("buys(tom, Y)?")
        assert result.answers == {
            ("tom", "vase"),
            ("tom", "mug"),
            ("tom", "spoon"),
        }

    def test_two_singleton_classes(self, engine):
        analysis = engine.report("buys").analysis
        assert [c.positions for c in analysis.classes] == [(0,), (1,)]
        assert analysis.pers_positions == ()


class TestExample24Rewrite:
    """The partial selection t(c, Y, Z)? handled via Lemma 2.1."""

    @pytest.fixture
    def setup(self):
        db = Database.from_facts(
            {
                "a": [
                    ("c", "d", "m", "n"),
                    ("m", "n", "g", "h"),
                ],
                "b": [("w0", "w1"), ("w1", "w2")],
                "t0": [("g", "h", "w0"), ("c", "d", "w0")],
            }
        )
        return Engine(example_2_4_program(), db), db

    def test_partial_selection_answers(self, setup):
        engine, db = setup
        result = engine.query("t(c, Y, Z)?")
        from repro.datalog.parser import parse_query

        assert result.answers == oracle_answers(
            example_2_4_program(), db, parse_query("t(c, Y, Z)?")
        )
        assert result.strategy == "separable"
        assert result.answers  # nonempty: both direct and via a

    def test_full_selection_on_either_class(self, setup):
        engine, db = setup
        from repro.datalog.parser import parse_query

        for q in ["t(c, d, Z)?", "t(X, Y, w2)?"]:
            assert engine.query(q).answers == oracle_answers(
                example_2_4_program(), db, parse_query(q)
            )


class TestSection32Recursion:
    """The abstract recursion whose expansion is (a1+a2)* t0 (b1+b2)*."""

    @pytest.fixture
    def setup(self):
        db = Database.from_facts(
            {
                "a1": [("x0", "x1")],
                "a2": [("x1", "x2")],
                "t0": [("x2", "y0"), ("x0", "z0")],
                "b1": [("y0", "y1")],
                "b2": [("y1", "y2"), ("z0", "z1")],
            }
        )
        return Engine(section_3_2_program(), db), db

    def test_query_on_x0(self, setup):
        engine, db = setup
        from repro.datalog.parser import parse_query

        q = parse_query("t(x0, Y)?")
        result = engine.query(q)
        assert result.answers == oracle_answers(
            section_3_2_program(), db, q
        )
        # both sides of the regular expression are exercised
        assert ("x0", "y2") in result.answers  # a1 a2 t0 b1 b2
        assert ("x0", "z1") in result.answers  # t0 b2

    def test_plan_shape_matches_section_3_2(self, setup):
        engine, _ = setup
        from repro.core.compiler import compile_selection
        from repro.core.selections import classify_selection
        from repro.datalog.parser import parse_atom

        analysis = engine.report("t").analysis
        plan = compile_selection(
            classify_selection(analysis, parse_atom("t(x0, Y)"))
        )
        assert len(plan.down_joins) == 2  # a1, a2
        assert len(plan.up_joins) == 2    # b1, b2


class TestStrategyAgreementMatrix:
    """Every applicable strategy on every paper fixture agrees.

    The matrix spans all of ``STRATEGIES`` (not just the four classic
    ones): inapplicable combinations -- the advisor rejects e.g.
    ``counting`` on a multi-class recursion or ``pushdown`` on a full
    selection -- are skipped with the advisor's own reason, so the test
    doubles as a living record of which strategies cover which paper
    examples.
    """

    @pytest.mark.parametrize(
        "strategy", [s for s in STRATEGIES if s != "auto"]
    )
    @pytest.mark.parametrize(
        "fixture_name,query",
        [
            ("example_1_1", "buys(tom, Y)?"),
            ("example_1_1", "buys(X, camera)?"),
            ("example_1_2", "buys(tom, Y)?"),
            ("example_2_4", "t(c, d, Z)?"),
            ("transitive_closure", "tc(a, Y)?"),
        ],
    )
    def test_agreement(self, request, fixture_name, query, strategy):
        program, db = request.getfixturevalue(fixture_name)
        engine = Engine(program, db)
        from repro.datalog.parser import parse_query

        parsed = parse_query(query)
        advice = engine.advise(parsed)
        if strategy not in advice.applicable:
            pytest.skip(f"{strategy}: {advice.notes[strategy]}")
        assert engine.query(parsed, strategy=strategy).answers == (
            oracle_answers(program, db, parsed)
        )
