"""Integration tests over the named scenarios: every strategy the
engine would pick agrees with the oracle on realistic workloads."""

import pytest

from repro.engine import Engine
from repro.datalog.parser import parse_query
from repro.workloads.scenarios import flight_network, org_chart, social_commerce

from ..conftest import oracle_answers

SCENARIOS = {
    "social_commerce": social_commerce,
    "org_chart": org_chart,
    "flight_network": flight_network,
}


@pytest.fixture(params=sorted(SCENARIOS))
def scenario(request):
    return SCENARIOS[request.param]()


class TestScenarios:
    def test_separability_expectations(self, scenario):
        engine = Engine(scenario.program, scenario.database)
        for predicate in scenario.separable_predicates:
            assert engine.is_separable(predicate), predicate

    def test_auto_matches_oracle_on_every_query(self, scenario):
        engine = Engine(scenario.program, scenario.database)
        for query_text in scenario.queries:
            query = parse_query(query_text)
            result = engine.query(query)
            expected = oracle_answers(
                scenario.program, scenario.database, query
            )
            assert result.answers == expected, (scenario.name, query_text)

    def test_auto_picks_separable_where_possible(self, scenario):
        engine = Engine(scenario.program, scenario.database)
        for query_text in scenario.queries:
            query = parse_query(query_text)
            result = engine.query(query)
            if query.predicate in scenario.separable_predicates:
                assert result.strategy == "separable"
            else:
                assert result.strategy == "magic"

    def test_magic_also_matches_oracle(self, scenario):
        engine = Engine(scenario.program, scenario.database)
        for query_text in scenario.queries:
            query = parse_query(query_text)
            assert engine.query(
                query, strategy="magic"
            ).answers == oracle_answers(
                scenario.program, scenario.database, query
            )


class TestOrgChartSpecifics:
    def test_multi_idb_base_materialization(self):
        """chain_of_command depends on the derived 'oversees' IDB."""
        scenario = org_chart(depth=4)
        engine = Engine(scenario.program, scenario.database)
        result = engine.query("chain_of_command(emp0, Y)?")
        # the root oversees everyone reachable, including dotted lines
        assert len(result.answers) >= 2**4 - 2
        assert result.strategy == "separable"

    def test_plan_reused_across_constants(self):
        scenario = org_chart(depth=4)
        engine = Engine(scenario.program, scenario.database)
        first = engine.query("chain_of_command(emp0, Y)?")
        second = engine.query("chain_of_command(emp1, Y)?")
        assert first.plan is second.plan  # cached by binding pattern


class TestFlightNetworkSpecifics:
    def test_cheap_trip_not_separable(self):
        scenario = flight_network(cities=12)
        engine = Engine(scenario.program, scenario.database)
        report = engine.report("cheap_trip")
        assert not report.separable
        assert report.separable_up_to_condition_4  # Section 5 shape

    def test_relaxed_mode_on_cheap_trip(self):
        scenario = flight_network(cities=12)
        engine = Engine(scenario.program, scenario.database)
        query = parse_query("cheap_trip(city0, Y)?")
        relaxed = engine.query(query, strategy="relaxed")
        assert relaxed.answers == oracle_answers(
            scenario.program, scenario.database, query
        )
