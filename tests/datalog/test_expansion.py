"""Unit tests for Procedure Expand (Figure 1) and expansion semantics."""

import pytest

from repro.datalog.atoms import atom
from repro.datalog.database import Database
from repro.datalog.expansion import expand, expansion_strings
from repro.datalog.parser import parse_program
from repro.datalog.seminaive import seminaive_evaluate
from repro.workloads.paper import example_1_1_program


@pytest.fixture
def ex11_definition():
    return example_1_1_program().definition("buys")


class TestStructure:
    def test_counts_per_depth(self, ex11_definition):
        # With 2 recursive rules and 1 exit rule: depth d contributes 2^d
        # strings, so up to depth 3 there are 1 + 2 + 4 + 8 = 15.
        strings = expansion_strings(
            ex11_definition, atom("buys", "X", "Y"), 3
        )
        assert len(strings) == 15

    def test_breadth_first_order(self, ex11_definition):
        strings = expansion_strings(
            ex11_definition, atom("buys", "X", "Y"), 3
        )
        depths = [s.depth for s in strings]
        assert depths == sorted(depths)

    def test_example_2_1_shapes(self, ex11_definition):
        """The first strings listed in Example 2.1 of the paper."""
        strings = expansion_strings(
            ex11_definition, atom("buys", "X", "Y"), 2
        )
        shapes = {
            tuple(a.predicate for a in s.atoms()) for s in strings
        }
        assert ("perfectFor",) in shapes
        assert ("friend", "perfectFor") in shapes
        assert ("idol", "perfectFor") in shapes
        assert ("friend", "idol", "perfectFor") in shapes
        assert ("idol", "idol", "perfectFor") in shapes

    def test_derivations_enumerate_rule_sequences(self, ex11_definition):
        strings = expansion_strings(
            ex11_definition, atom("buys", "X", "Y"), 2
        )
        derivations = {s.derivation for s in strings}
        assert derivations == {
            (), (0,), (1,), (0, 0), (0, 1), (1, 0), (1, 1),
        }

    def test_distinguished_variables_unsubscripted(self, ex11_definition):
        """Distinguished variables stay unsubscripted (Section 2)."""
        from repro.datalog.terms import Variable

        for s in expansion_strings(ex11_definition, atom("buys", "X", "Y"), 2):
            variables = set()
            for a in s.atoms():
                variables |= a.variable_set()
            assert Variable("Y") in variables  # persists into perfectFor
            for v in variables - {Variable("X"), Variable("Y")}:
                assert "_" in v.name  # nondistinguished are subscripted

    def test_fresh_variables_per_step(self, ex11_definition):
        for s in expansion_strings(ex11_definition, atom("buys", "X", "Y"), 3):
            existential = [
                v
                for a in s.atoms()
                for v in a.variable_set()
                if v.name not in ("X", "Y")
            ]
            # within one string, each step introduced a distinct variable
            assert len(set(existential)) == s.depth

    def test_constant_query_substituted(self, ex11_definition):
        strings = expansion_strings(
            ex11_definition, atom("buys", "tom", "Y"), 1
        )
        for s in strings:
            first = s.atoms()[0]
            assert first.args[0].value == "tom"  # type: ignore[union-attr]

    def test_projection_methods(self, ex11_definition):
        strings = expansion_strings(
            ex11_definition, atom("buys", "X", "Y"), 2
        )
        s = next(x for x in strings if x.derivation == (0, 1))
        d1, d2 = s.project_derivation([frozenset({0}), frozenset({1})])
        assert d1 == (0,)
        assert d2 == (1,)
        assert [a.predicate for a in s.project_atoms(frozenset({0}))] == [
            "friend"
        ]

    def test_generator_is_lazy(self, ex11_definition):
        gen = expand(ex11_definition, atom("buys", "X", "Y"), 50)
        first = next(gen)
        assert first.depth == 0


class TestSemantics:
    """Union of bounded-expansion relations == bottom-up extent (acyclic)."""

    def test_union_matches_seminaive(self):
        program = example_1_1_program()
        db = Database.from_facts(
            {
                "friend": [("tom", "sue"), ("sue", "ann")],
                "idol": [("tom", "ann")],
                "perfectFor": [("ann", "camera"), ("sue", "boat")],
            }
        )
        definition = program.definition("buys")
        # Acyclic data of diameter 2: depth 4 is more than enough.
        union = set()
        for s in expansion_strings(definition, atom("buys", "X", "Y"), 4):
            union |= s.query().evaluate(db)
        oracle = seminaive_evaluate(program, db).tuples("buys")
        assert union == oracle

    def test_nonchain_rule_expansion(self):
        program = parse_program(
            """
            t(X, Y) :- a(X, P, Q) & c(Q, W) & t(W, Y).
            t(X, Y) :- t0(X, Y).
            """
        ).program
        strings = expansion_strings(
            program.definition("t"), atom("t", "X", "Y"), 2
        )
        shapes = [
            tuple(a.predicate for a in s.atoms()) for s in strings
        ]
        assert ("a", "c", "a", "c", "t0") in shapes


class TestStringForDerivation:
    def test_matches_expand_output(self, ex11_definition):
        from repro.datalog.expansion import string_for_derivation

        strings = expansion_strings(
            ex11_definition, atom("buys", "X", "Y"), 2
        )
        for s in strings:
            rebuilt = string_for_derivation(
                ex11_definition,
                atom("buys", "X", "Y"),
                s.derivation,
                s.exit_index,
            )
            # Same derivation, same shape (variable names may differ).
            assert rebuilt.derivation == s.derivation
            assert [a.predicate for a in rebuilt.atoms()] == [
                a.predicate for a in s.atoms()
            ]

    def test_constant_query(self, ex11_definition):
        from repro.datalog.expansion import string_for_derivation

        s = string_for_derivation(
            ex11_definition, atom("buys", "tom", "Y"), (0, 1), 0
        )
        preds = [a.predicate for a in s.atoms()]
        assert preds == ["friend", "idol", "perfectFor"]
        assert s.atoms()[0].args[0].value == "tom"

    def test_semantics_match_per_derivation(self, ex11_definition):
        """The relation of the rebuilt string equals the relation of
        the originally expanded string with the same derivation."""
        from repro.datalog.expansion import string_for_derivation

        db = Database.from_facts(
            {
                "friend": [("tom", "sue"), ("sue", "ann")],
                "idol": [("tom", "ann"), ("sue", "kim")],
                "perfectFor": [("ann", "camera"), ("kim", "boat")],
            }
        )
        for s in expansion_strings(
            ex11_definition, atom("buys", "X", "Y"), 3
        ):
            rebuilt = string_for_derivation(
                ex11_definition,
                atom("buys", "X", "Y"),
                s.derivation,
                s.exit_index,
            )
            assert rebuilt.query().evaluate(db) == s.query().evaluate(db)

    def test_nonrecursive_rule_index_rejected(self, ex11_definition):
        from repro.datalog.expansion import string_for_derivation

        with pytest.raises(IndexError):
            string_for_derivation(
                ex11_definition, atom("buys", "X", "Y"), (5,), 0
            )


class TestEvaluateByExpansion:
    def test_matches_seminaive_on_acyclic_data(self, ex11_definition):
        from repro.datalog.expansion import evaluate_by_expansion

        program = example_1_1_program()
        db = Database.from_facts(
            {
                "friend": [("tom", "sue"), ("sue", "ann")],
                "idol": [("tom", "ann")],
                "perfectFor": [("ann", "camera")],
            }
        )
        got = evaluate_by_expansion(
            ex11_definition, atom("buys", "tom", "Y"), db, max_depth=4
        )
        oracle = {
            t
            for t in seminaive_evaluate(program, db).tuples("buys")
            if t[0] == "tom"
        }
        assert got == oracle

    def test_depth_zero_is_exit_rule_only(self, ex11_definition):
        from repro.datalog.expansion import evaluate_by_expansion

        db = Database.from_facts(
            {
                "friend": [("tom", "sue")],
                "idol": [],
                "perfectFor": [("tom", "pen"), ("sue", "ink")],
            }
        )
        db.ensure("idol", 2)
        got = evaluate_by_expansion(
            ex11_definition, atom("buys", "tom", "Y"), db, max_depth=0
        )
        assert got == {("tom", "pen")}

    def test_insufficient_depth_is_incomplete(self, ex11_definition):
        from repro.datalog.expansion import evaluate_by_expansion

        db = Database.from_facts(
            {
                "friend": [("tom", "a"), ("a", "b"), ("b", "c")],
                "idol": [],
                "perfectFor": [("c", "prize")],
            }
        )
        db.ensure("idol", 2)
        shallow = evaluate_by_expansion(
            ex11_definition, atom("buys", "tom", "Y"), db, max_depth=2
        )
        deep = evaluate_by_expansion(
            ex11_definition, atom("buys", "tom", "Y"), db, max_depth=3
        )
        assert shallow == frozenset()
        assert deep == {("tom", "prize")}
