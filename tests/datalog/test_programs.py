"""Unit tests for program structure: IDB/EDB, definitions, strata."""

import pytest

from repro.datalog.errors import ArityError, NotLinearError
from repro.datalog.parser import parse_program
from repro.datalog.programs import Program


def program(text):
    return parse_program(text).program


EX11 = """
buys(X, Y) :- friend(X, W) & buys(W, Y).
buys(X, Y) :- idol(X, W) & buys(W, Y).
buys(X, Y) :- perfectFor(X, Y).
"""


class TestSplit:
    def test_idb_edb(self):
        p = program(EX11)
        assert p.idb_predicates == {"buys"}
        assert p.edb_predicates == {"friend", "idol", "perfectFor"}

    def test_predicates_and_arity(self):
        p = program(EX11)
        assert p.arity("buys") == 2
        assert p.arity("friend") == 2
        with pytest.raises(KeyError):
            p.arity("nothing")

    def test_conflicting_arity_rejected(self):
        with pytest.raises(ArityError):
            program("p(X) :- q(X).\np(X, Y) :- q(X) & q(Y).")

    def test_rules_for(self):
        p = program(EX11)
        assert len(p.rules_for("buys")) == 3
        assert p.rules_for("friend") == ()


class TestDefinition:
    def test_recursive_exit_split(self):
        d = program(EX11).definition("buys")
        assert len(d.recursive_rules) == 2
        assert len(d.exit_rules) == 1
        assert d.is_recursive

    def test_rules_property_order(self):
        d = program(EX11).definition("buys")
        assert d.rules == d.recursive_rules + d.exit_rules

    def test_non_idb_raises(self):
        with pytest.raises(KeyError):
            program(EX11).definition("friend")

    def test_linearity(self):
        d = program(EX11).definition("buys")
        assert d.is_linear()
        d.check_linear()

    def test_nonlinear_detected(self):
        d = program(
            "t(X, Y) :- t(X, W) & t(W, Y).\nt(X, Y) :- e(X, Y)."
        ).definition("t")
        assert not d.is_linear()
        with pytest.raises(NotLinearError):
            d.check_linear()

    def test_base_predicates(self):
        d = program(EX11).definition("buys")
        assert d.base_predicates() == {"friend", "idol", "perfectFor"}

    def test_nonrecursive_definition(self):
        d = program("p(X) :- q(X).").definition("p")
        assert not d.is_recursive
        assert d.is_linear()


class TestDependencies:
    LAYERED = """
    top(X, Y) :- mid(X, W) & top(W, Y).
    top(X, Y) :- base(X, Y).
    mid(X, Y) :- raw(X, Y).
    mid(X, Y) :- raw(Y, X).
    """

    def test_depends_on(self):
        p = program(self.LAYERED)
        assert p.depends_on("top") == {"top", "mid", "base", "raw"}
        assert p.depends_on("mid") == {"raw"}

    def test_is_recursive_predicate(self):
        p = program(self.LAYERED)
        assert p.is_recursive_predicate("top")
        assert not p.is_recursive_predicate("mid")

    def test_no_mutual_recursion(self):
        p = program(self.LAYERED)
        assert p.mutually_recursive_with("top") == frozenset()

    def test_mutual_recursion_detected(self):
        p = program(
            """
            p(X) :- q(X).
            q(X) :- p(X).
            p(X) :- e(X).
            """
        )
        assert p.mutually_recursive_with("p") == {"q"}

    def test_evaluation_order_bottom_up(self):
        p = program(self.LAYERED)
        order = p.evaluation_order
        flat = [pred for scc in order for pred in scc]
        assert flat.index("mid") < flat.index("top")

    def test_evaluation_order_groups_sccs(self):
        p = program(
            """
            p(X) :- q(X).
            q(X) :- p(X).
            q(X) :- e(X).
            r(X) :- p(X).
            """
        )
        order = p.evaluation_order
        assert frozenset({"p", "q"}) in order
        flat = [pred for scc in order for pred in scc]
        assert flat.index("p") < flat.index("r")


class TestConvenience:
    def test_restricted_to(self):
        p = program(EX11 + "other(X) :- friend(X, X).")
        restricted = p.restricted_to(["buys"])
        assert restricted.idb_predicates == {"buys"}
        assert len(restricted) == 3

    def test_extended(self):
        p = program(EX11)
        from repro.datalog.parser import parse_rule

        bigger = p.extended([parse_rule("other(X) :- friend(X, X).")])
        assert len(bigger) == 4
        assert len(p) == 3  # original untouched

    def test_equality_and_hash(self):
        assert program(EX11) == program(EX11)
        assert hash(program(EX11)) == hash(program(EX11))

    def test_str_is_parseable(self):
        p = program(EX11)
        assert program(str(p)) == p
