"""Unit tests for conjunctive queries and containment mappings [CM77]."""

from repro.datalog.atoms import atom
from repro.datalog.conjunctive import (
    ConjunctiveQuery,
    containment_mapping,
    equivalent,
    is_contained_in,
)
from repro.datalog.database import Database
from repro.datalog.terms import Constant, Variable


def cq(head_names, body):
    head = tuple(
        Variable(n) if n[0].isupper() else Constant(n) for n in head_names
    )
    return ConjunctiveQuery(head, tuple(body))


class TestEvaluate:
    DB = Database.from_facts(
        {
            "e": [("a", "b"), ("b", "c"), ("c", "d")],
            "lbl": [("b", "x")],
        }
    )

    def test_path_query(self):
        q = cq(["X", "Z"], [atom("e", "X", "Y"), atom("e", "Y", "Z")])
        assert q.evaluate(self.DB) == {("a", "c"), ("b", "d")}

    def test_constant_in_head(self):
        q = cq(["a", "Y"], [atom("e", "a", "Y")])
        assert q.evaluate(self.DB) == {("a", "b")}

    def test_existential_variable(self):
        q = cq(["X"], [atom("e", "X", "Y"), atom("lbl", "Y", "Z")])
        assert q.evaluate(self.DB) == {("a",)}

    def test_substitute(self):
        q = cq(["X", "Y"], [atom("e", "X", "Y")])
        grounded = q.substitute({Variable("X"): Constant("a")})
        assert grounded.head[0] == Constant("a")
        assert grounded.evaluate(self.DB) == {("a", "b")}

    def test_variable_classification(self):
        q = cq(["X"], [atom("e", "X", "Y")])
        assert q.distinguished == (Variable("X"),)
        assert q.nondistinguished() == {Variable("Y")}


class TestContainmentMappings:
    def test_identity(self):
        q = cq(["X", "Y"], [atom("e", "X", "Y")])
        m = containment_mapping(q, q)
        assert m is not None

    def test_longer_path_maps_into_shorter_with_collapse(self):
        # e(X,Z0) e(Z0,Y) maps onto e(X,X') ... classic: the 2-path query
        # maps into the query with a self-loop atom.
        two_path = cq(
            ["X"], [atom("e", "X", "Z0"), atom("e", "Z0", "Z1")]
        )
        loop = cq(["X"], [atom("e", "X", "X")])
        # mapping two_path -> loop: Z0 -> X, Z1 -> X.
        assert containment_mapping(two_path, loop) is not None
        # but not the other way: loop needs an atom e(V, V) in two_path.
        assert containment_mapping(loop, two_path) is None

    def test_distinguished_variables_fixed(self):
        q1 = cq(["X"], [atom("e", "X", "Y")])
        q2 = cq(["Y"], [atom("e", "Y", "X")])
        # heads are both one distinguished variable; mapping must align
        # position-wise, so this works (X -> Y).
        assert containment_mapping(q1, q2) is not None

    def test_head_constant_must_match(self):
        q1 = cq(["a"], [atom("e", "a", "Y")])
        q2 = cq(["b"], [atom("e", "b", "Y")])
        assert containment_mapping(q1, q2) is None

    def test_predicate_mismatch(self):
        q1 = cq(["X"], [atom("e", "X", "Y")])
        q2 = cq(["X"], [atom("f", "X", "Y")])
        assert containment_mapping(q1, q2) is None

    def test_repeated_variables_constrain(self):
        q_loop = cq(["X"], [atom("e", "X", "X")])
        q_edge = cq(["X"], [atom("e", "X", "Y")])
        # q_edge -> q_loop: Y -> X works.
        assert containment_mapping(q_edge, q_loop) is not None
        # q_loop -> q_edge: needs e(m(X), m(X)) in q_edge with m(X)=X: no.
        assert containment_mapping(q_loop, q_edge) is None


class TestContainmentSemantics:
    """Containment direction sanity-checked against evaluation."""

    DB = Database.from_facts(
        {"e": [("a", "b"), ("b", "c"), ("b", "b")]}
    )

    def test_contained_query_has_subset_answers(self):
        one_step = cq(["X", "Y"], [atom("e", "X", "Y")])
        through_loop = cq(
            ["X", "Y"], [atom("e", "X", "Y"), atom("e", "Y", "Y")]
        )
        assert is_contained_in(through_loop, one_step)
        assert through_loop.evaluate(self.DB) <= one_step.evaluate(self.DB)

    def test_equivalent_queries_same_answers(self):
        q1 = cq(["X", "Y"], [atom("e", "X", "Y"), atom("e", "X", "Z")])
        q2 = cq(["X", "Y"], [atom("e", "X", "Y")])
        # The extra atom e(X,Z) is implied by e(X,Y) (map Z -> Y).
        assert equivalent(q1, q2)
        assert q1.evaluate(self.DB) == q2.evaluate(self.DB)

    def test_non_equivalent(self):
        q1 = cq(["X"], [atom("e", "X", "Y")])
        q2 = cq(["X"], [atom("e", "X", "Y"), atom("e", "Y", "Z")])
        assert is_contained_in(q2, q1)
        assert not equivalent(q1, q2)
